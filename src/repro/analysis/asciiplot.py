"""Terminal plotting: CDF curves and bar charts without matplotlib.

The examples and benchmarks run in environments without plotting
libraries; these renderers draw the paper's figure *shapes* directly in the
terminal — a log-x CDF panel for Figs. 3/11/12 and horizontal bar charts
for the resource-cost panels of Figs. 13/14.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.common.cdf import EmpiricalCdf
from repro.common.errors import ReproError

#: Characters used to distinguish up to six series in one panel.
SERIES_MARKS = "*o+x#@"


def _log_position(value: float, lo: float, hi: float, width: int) -> int:
    """Map *value* onto a log-scaled column in [0, width-1]."""
    if value <= lo:
        return 0
    if value >= hi:
        return width - 1
    fraction = (math.log10(value) - math.log10(lo)) / \
        (math.log10(hi) - math.log10(lo))
    return min(width - 1, max(0, int(round(fraction * (width - 1)))))


def render_cdf_plot(cdfs: Dict[str, EmpiricalCdf],
                    width: int = 72,
                    height: int = 18,
                    unit: str = "ms",
                    title: str = "") -> str:
    """Draw CDFs on a log-x / linear-y character grid.

    Each series is one mark character; the legend maps marks to names.
    Values <= 0 are clamped to the smallest positive sample.
    """
    if not cdfs:
        raise ReproError("no CDFs to plot")
    if len(cdfs) > len(SERIES_MARKS):
        raise ReproError(f"at most {len(SERIES_MARKS)} series supported")
    if width < 20 or height < 5:
        raise ReproError("plot area too small")

    positive_minimums = []
    maximums = []
    for cdf in cdfs.values():
        samples = [s for s in cdf.samples() if s > 0]
        positive_minimums.append(min(samples) if samples else 1e-3)
        maximums.append(max(cdf.maximum, 1e-3))
    lo = max(min(positive_minimums), 1e-3)
    hi = max(maximums)
    if hi <= lo:
        hi = lo * 10.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, cdf) in enumerate(cdfs.items()):
        mark = SERIES_MARKS[index]
        for row in range(height):
            p = 1.0 - row / (height - 1)  # top row = P 1.0
            p = min(max(p, 1.0 / len(cdf)), 1.0)
            x = max(cdf.quantile(p), lo)
            column = _log_position(x, lo, hi, width)
            if grid[row][column] == " ":
                grid[row][column] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        p = 1.0 - row / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(grid[row]))
    lines.append("     +" + "-" * width)
    decades = []
    decade = math.floor(math.log10(lo))
    while 10.0 ** decade <= hi * 1.001:
        decades.append(10.0 ** decade)
        decade += 1
    axis = [" "] * width
    for tick in decades:
        column = _log_position(tick, lo, hi, width)
        label = f"{tick:g}"
        for offset, char in enumerate(label):
            if column + offset < width:
                axis[column + offset] = char
    lines.append("      " + "".join(axis) + f" ({unit}, log scale)")
    legend = "   ".join(f"{SERIES_MARKS[i]} {name}"
                        for i, name in enumerate(cdfs))
    lines.append("     legend: " + legend)
    return "\n".join(lines) + "\n"


def render_bar_chart(rows: Sequence[Tuple[str, float]],
                     width: int = 50,
                     unit: str = "",
                     title: str = "") -> str:
    """Horizontal bars, scaled to the largest value."""
    if not rows:
        raise ReproError("no bars to draw")
    peak = max(value for _label, value in rows)
    if peak <= 0:
        raise ReproError("all values non-positive")
    label_width = max(len(label) for label, _value in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        bar = "#" * max(1, int(round(value / peak * width))) \
            if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} |{bar} "
                     f"{value:g}{unit}")
    return "\n".join(lines) + "\n"
