"""Latency breakdown analysis: where each policy's time goes.

The paper narrates its CDFs component by component; this helper reduces an
experiment result to a per-component summary (mean and tail of scheduling,
cold-start, queuing, execution) so tables can show at a glance *why* one
policy beats another — e.g. Vanilla losing on scheduling+cold start while
Kraken loses on queuing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.stats import SampleStats
from repro.platformsim.results import ExperimentResult

COMPONENTS = ("scheduling", "cold_start", "queuing", "execution")


@dataclass(frozen=True)
class ComponentSummary:
    """Mean / p50 / p98 of one latency component (milliseconds)."""

    component: str
    mean_ms: float
    p50_ms: float
    p98_ms: float
    share_of_total: float  # fraction of the summed mean latency


def summarize_components(result: ExperimentResult) -> List[ComponentSummary]:
    """Reduce a result to per-component summaries (successful only)."""
    invocations = result.successful_invocations()
    if not invocations:
        raise ValueError("no successful invocations to summarise")
    stats = {
        "scheduling": SampleStats(i.latency.scheduling_ms
                                  for i in invocations),
        "cold_start": SampleStats(i.latency.cold_start_ms
                                  for i in invocations),
        "queuing": SampleStats(i.latency.queuing_ms for i in invocations),
        "execution": SampleStats(i.latency.execution_ms
                                 for i in invocations),
    }
    total_mean = sum(s.mean for s in stats.values())
    summaries = []
    for component in COMPONENTS:
        component_stats = stats[component]
        summaries.append(ComponentSummary(
            component=component,
            mean_ms=component_stats.mean,
            p50_ms=component_stats.median,
            p98_ms=component_stats.percentile(98.0),
            share_of_total=(component_stats.mean / total_mean
                            if total_mean > 0 else 0.0)))
    return summaries


def breakdown_table(results: Sequence[ExperimentResult]):
    """``(headers, rows)`` with one row per (scheduler, component)."""
    headers = ["scheduler", "component", "mean_ms", "p50_ms", "p98_ms",
               "share_%"]
    rows: List[List[object]] = []
    for result in results:
        for summary in summarize_components(result):
            rows.append([
                result.scheduler_name,
                summary.component,
                round(summary.mean_ms, 2),
                round(summary.p50_ms, 2),
                round(summary.p98_ms, 2),
                round(summary.share_of_total * 100.0, 1),
            ])
    return headers, rows


def dominant_component(result: ExperimentResult) -> str:
    """The component contributing the most mean latency."""
    summaries = summarize_components(result)
    return max(summaries, key=lambda s: s.mean_ms).component
