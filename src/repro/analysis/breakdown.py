"""Latency breakdown analysis: where each policy's time goes.

The paper narrates its CDFs component by component; this module reduces an
experiment result to a per-component summary (mean and tail of scheduling,
cold-start, queuing, execution) so tables can show at a glance *why* one
policy beats another — e.g. Vanilla losing on scheduling+cold start while
Kraken loses on queuing.

Since the observability layer landed, breakdowns are **derived from the
invocation trace** whenever one was recorded: every summary is computed
from the typed stage spans (queued / cold-start / dispatched / executing),
after checking the trace invariants — each timeline must be gap-free,
monotone, and its stage durations must sum to the invocation's end-to-end
latency within :data:`~repro.obs.trace.TIME_TOLERANCE_MS`.  Runs without
tracing fall back to the per-invocation latency stamps, which the
integration tests pin to be span-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.stats import SampleStats
from repro.obs.trace import (
    STAGE_ORDER,
    STAGE_TO_COMPONENT,
    InvocationTimeline,
    InvocationTracer,
)
from repro.platformsim.results import ExperimentResult

COMPONENTS = ("scheduling", "cold_start", "queuing", "execution")


@dataclass(frozen=True)
class ComponentSummary:
    """Mean / p50 / p98 of one latency component (milliseconds)."""

    component: str
    mean_ms: float
    p50_ms: float
    p98_ms: float
    share_of_total: float  # fraction of the summed mean latency


class TraceInvariantError(ValueError):
    """A recorded trace violates the span invariants (a platform bug)."""

    def __init__(self, problems: Sequence[str]) -> None:
        preview = "; ".join(problems[:3])
        more = f" (+{len(problems) - 3} more)" if len(problems) > 3 else ""
        super().__init__(f"trace invariants violated: {preview}{more}")
        self.problems = list(problems)


def check_trace_invariants(tracer: InvocationTracer,
                           tolerance_ms: Optional[float] = None) -> None:
    """Raise :class:`TraceInvariantError` on any invalid timeline.

    ``tolerance_ms`` defaults to the simulator's exact-replay tolerance;
    pass :data:`repro.obs.trace.WALL_TIME_TOLERANCE_MS` for traces
    stamped from a real clock (the live gateway) — see the unit contract
    on :class:`repro.obs.trace.Span`.
    """
    if tolerance_ms is None:
        problems = tracer.validate_all()
    else:
        problems = tracer.validate_all(tolerance_ms)
    if problems:
        raise TraceInvariantError(problems)


def _summaries_from_stats(stats: Dict[str, SampleStats]
                          ) -> List[ComponentSummary]:
    total_mean = sum(s.mean for s in stats.values())
    summaries = []
    for component in COMPONENTS:
        component_stats = stats[component]
        summaries.append(ComponentSummary(
            component=component,
            mean_ms=component_stats.mean,
            p50_ms=component_stats.median,
            p98_ms=component_stats.percentile(98.0),
            share_of_total=(component_stats.mean / total_mean
                            if total_mean > 0 else 0.0)))
    return summaries


def summarize_timelines(timelines: Iterable[InvocationTimeline]
                        ) -> List[ComponentSummary]:
    """Per-component summaries derived from span timelines (successful only)."""
    stats: Dict[str, SampleStats] = {c: SampleStats() for c in COMPONENTS}
    count = 0
    for timeline in timelines:
        if timeline.failed:
            continue
        count += 1
        for stage in STAGE_ORDER[:-1]:  # RESPONDING is not a §IV component
            stats[STAGE_TO_COMPONENT[stage]].add(timeline.duration_of(stage))
    if count == 0:
        raise ValueError("no successful timelines to summarise")
    return _summaries_from_stats(stats)


def summarize_components(result: ExperimentResult) -> List[ComponentSummary]:
    """Reduce a result to per-component summaries (successful only).

    Prefers the recorded span trace (validating its invariants first);
    falls back to the invocation latency stamps when tracing was off.
    """
    if result.trace is not None and len(result.trace):
        check_trace_invariants(result.trace)
        return summarize_timelines(result.trace.timelines())
    invocations = result.successful_invocations()
    if not invocations:
        raise ValueError("no successful invocations to summarise")
    stats = {
        "scheduling": SampleStats(i.latency.scheduling_ms
                                  for i in invocations),
        "cold_start": SampleStats(i.latency.cold_start_ms
                                  for i in invocations),
        "queuing": SampleStats(i.latency.queuing_ms for i in invocations),
        "execution": SampleStats(i.latency.execution_ms
                                 for i in invocations),
    }
    return _summaries_from_stats(stats)


def breakdown_table(results: Sequence[ExperimentResult]):
    """``(headers, rows)`` with one row per (scheduler, component)."""
    headers = ["scheduler", "component", "mean_ms", "p50_ms", "p98_ms",
               "share_%"]
    rows: List[List[object]] = []
    for result in results:
        for summary in summarize_components(result):
            rows.append([
                result.scheduler_name,
                summary.component,
                round(summary.mean_ms, 2),
                round(summary.p50_ms, 2),
                round(summary.p98_ms, 2),
                round(summary.share_of_total * 100.0, 1),
            ])
    return headers, rows


def dominant_component(result: ExperimentResult) -> str:
    """The component contributing the most mean latency."""
    summaries = summarize_components(result)
    return max(summaries, key=lambda s: s.mean_ms).component


# -- resilience view (runs with retries enabled) --------------------------------


def attempt_latency_table(results: Sequence[ExperimentResult]):
    """``(headers, rows)`` contrasting first-attempt and final latencies.

    Under retries an invocation has two stories: what its *first* attempt
    cost (None-safe: a first attempt that died before dispatch has no
    end-to-end latency) and what the caller ultimately experienced
    (first-arrival to final response, backoffs included).  Both are
    reported so retry policies can't silently overwrite the failure's
    latency cost — the final column quantifies the retry tax.
    """
    headers = ["scheduler", "invocations", "goodput_%", "retried",
               "attempts_per_inv", "hedged",
               "first_attempt_p50_ms", "first_attempt_p99_ms",
               "final_p50_ms", "final_p99_ms", "total_response_p99_ms"]
    rows: List[List[object]] = []
    for result in results:
        first = SampleStats(
            latency for latency in
            (inv.first_attempt_end_to_end_ms
             for inv in result.invocations)
            if latency is not None)
        final = SampleStats(inv.end_to_end_ms
                            for inv in result.successful_invocations())
        total = result.total_response_stats()
        rows.append([
            result.scheduler_name,
            len(result.invocations),
            round(result.goodput() * 100.0, 2),
            len(result.retried_invocations()),
            round(result.retry_amplification(), 3),
            result.hedged_count(),
            round(first.median, 1) if first.count else None,
            round(first.percentile(99.0), 1) if first.count else None,
            round(final.median, 1) if final.count else None,
            round(final.percentile(99.0), 1) if final.count else None,
            round(total.percentile(99.0), 1) if total.count else None,
        ])
    return headers, rows
