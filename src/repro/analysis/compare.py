"""Cross-scheduler comparisons: the paper's reduction percentages.

The abstract and §V report results as "FaaSBatch cuts back X of Vanilla by
N%"; :func:`reduction_percent` and :class:`SchedulerComparison` compute the
same statements from :class:`~repro.platformsim.results.ExperimentResult`
pairs so the benchmark harness can print paper-style claims next to the
measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.common.errors import ReproError
from repro.platformsim.results import ExperimentResult


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage by which *improved* undercuts *baseline* (positive = better).

    ``reduction_percent(100, 8) == 92.0`` — "cuts back ... by 92%".
    """
    if baseline <= 0:
        raise ReproError(f"baseline must be > 0, got {baseline}")
    return (baseline - improved) / baseline * 100.0


@dataclass(frozen=True)
class MetricDefinition:
    """A named scalar extracted from an experiment result."""

    key: str
    label: str
    extract: Callable[[ExperimentResult], float]


#: The metrics the paper compares across schedulers.
STANDARD_METRICS: Sequence[MetricDefinition] = (
    MetricDefinition(
        "p98_latency_ms", "98th-pct invocation latency (ms)",
        lambda r: r.latency_stats().percentile(98.0)),
    MetricDefinition(
        "median_latency_ms", "median invocation latency (ms)",
        lambda r: r.latency_stats().median),
    MetricDefinition(
        "avg_memory_mb", "average system memory (MB)",
        lambda r: r.average_memory_mb()),
    MetricDefinition(
        "containers", "provisioned containers",
        lambda r: float(r.provisioned_containers)),
    MetricDefinition(
        "avg_cpu_pct", "average CPU utilisation (%)",
        lambda r: r.average_cpu_utilization() * 100.0),
)


class SchedulerComparison:
    """Holds one result per scheduler and answers reduction queries."""

    def __init__(self, results: Sequence[ExperimentResult],
                 reference: str = "FaaSBatch") -> None:
        self._results: Dict[str, ExperimentResult] = {}
        for result in results:
            if result.scheduler_name in self._results:
                raise ReproError(
                    f"duplicate result for {result.scheduler_name!r}")
            self._results[result.scheduler_name] = result
        if reference not in self._results:
            raise ReproError(
                f"reference scheduler {reference!r} missing from results "
                f"(have {sorted(self._results)})")
        self.reference = reference

    def result(self, scheduler: str) -> ExperimentResult:
        try:
            return self._results[scheduler]
        except KeyError:
            raise ReproError(f"no result for {scheduler!r}") from None

    def schedulers(self) -> List[str]:
        return list(self._results)

    def reduction(self, scheduler: str, metric: MetricDefinition) -> float:
        """Reduction (%) of *metric* by the reference vs. *scheduler*."""
        baseline = metric.extract(self.result(scheduler))
        improved = metric.extract(self.result(self.reference))
        return reduction_percent(baseline, improved)

    def reduction_table(self,
                        metrics: Sequence[MetricDefinition] = STANDARD_METRICS,
                        ) -> List[List[object]]:
        """Rows of ``[metric, baseline, base_value, ref_value, reduction%]``."""
        rows: List[List[object]] = []
        for metric in metrics:
            for scheduler in self.schedulers():
                if scheduler == self.reference:
                    continue
                rows.append([
                    metric.label,
                    scheduler,
                    round(metric.extract(self.result(scheduler)), 2),
                    round(metric.extract(self.result(self.reference)), 2),
                    round(self.reduction(scheduler, metric), 2),
                ])
        return rows

    REDUCTION_HEADERS = ["metric", "baseline", "baseline_value",
                         "faasbatch_value", "reduction_%"]
