"""Analysis: comparisons, figure renderers, report emission."""

from repro.analysis.asciiplot import render_bar_chart, render_cdf_plot
from repro.analysis.breakdown import (
    ComponentSummary,
    breakdown_table,
    dominant_component,
    summarize_components,
)
from repro.analysis.compare import (
    STANDARD_METRICS,
    MetricDefinition,
    SchedulerComparison,
    reduction_percent,
)
from repro.analysis.figures import (
    CDF_PROBABILITIES,
    cdf_comparison_table,
    client_footprint_table,
    creation_cost_table,
    duration_distribution_table,
    invocation_pattern_table,
    latency_cdf_tables,
    resource_cost_table,
    sharing_vs_monopoly_table,
)
from repro.analysis.report import DEFAULT_OUTPUT_DIR, emit, emit_lines

__all__ = [
    "CDF_PROBABILITIES",
    "ComponentSummary",
    "breakdown_table",
    "dominant_component",
    "render_bar_chart",
    "render_cdf_plot",
    "summarize_components",
    "DEFAULT_OUTPUT_DIR",
    "MetricDefinition",
    "STANDARD_METRICS",
    "SchedulerComparison",
    "cdf_comparison_table",
    "client_footprint_table",
    "creation_cost_table",
    "duration_distribution_table",
    "emit",
    "emit_lines",
    "invocation_pattern_table",
    "latency_cdf_tables",
    "reduction_percent",
    "resource_cost_table",
    "sharing_vs_monopoly_table",
]
