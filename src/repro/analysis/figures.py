"""Figure renderers: turn measured data into the paper's tables/series.

Every renderer returns ``(headers, rows)`` suitable for
:func:`repro.common.tables.render_table` — the benchmark harness prints them
and archives the CSVs.  One renderer per paper artefact keeps the mapping
experiment → code obvious (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.cdf import EmpiricalCdf
from repro.platformsim.results import ExperimentResult

Headers = List[str]
Rows = List[List[object]]

#: Probability grid used when printing CDF figures.
CDF_PROBABILITIES = (0.10, 0.25, 0.40, 0.50, 0.75, 0.90, 0.96, 0.98, 1.00)


def cdf_comparison_table(cdfs: Dict[str, EmpiricalCdf],
                         unit: str = "ms",
                         probabilities: Sequence[float] = CDF_PROBABILITIES,
                         ) -> Tuple[Headers, Rows]:
    """One row per probability, one column per scheduler (Figs. 3/11/12)."""
    names = list(cdfs)
    headers = ["P"] + [f"{name} ({unit})" for name in names]
    rows: Rows = []
    for p in probabilities:
        rows.append([f"{p:.2f}"]
                    + [round(cdfs[name].quantile(p), 2) for name in names])
    return headers, rows


def latency_cdf_tables(results: Sequence[ExperimentResult]
                       ) -> Dict[str, Tuple[Headers, Rows]]:
    """The three panels of Fig. 11 / Fig. 12 for a set of results.

    Returns tables keyed ``scheduling`` / ``cold_start`` / ``exec_queue``.
    The exec panel includes each scheduler's pure execution CDF plus the
    "Exec+Queue" series for any scheduler with non-zero queuing (the
    paper's purple Kraken curve).
    """
    scheduling = {r.scheduler_name: r.scheduling_cdf() for r in results}
    cold = {r.scheduler_name: r.cold_start_cdf() for r in results}
    execution: Dict[str, EmpiricalCdf] = {}
    for result in results:
        execution[result.scheduler_name] = result.execution_cdf()
        if result.total_queuing_ms() > 1.0:
            execution[f"{result.scheduler_name}: Exec+Queue"] = \
                result.execution_plus_queuing_cdf()
    return {
        "scheduling": cdf_comparison_table(scheduling),
        "cold_start": cdf_comparison_table(cold),
        "exec_queue": cdf_comparison_table(execution),
    }


def resource_cost_table(results_by_window: Dict[float,
                                                Sequence[ExperimentResult]],
                        ) -> Tuple[Headers, Rows]:
    """Figs. 13(a-c) / 14(a-c): resource costs per dispatch interval.

    ``results_by_window`` maps window size (ms) to the results of all
    schedulers at that interval.
    """
    headers = ["window_s", "scheduler", "avg_memory_MB", "containers",
               "avg_cpu_%", "cpu_core_seconds"]
    rows: Rows = []
    for window_ms in sorted(results_by_window):
        for result in results_by_window[window_ms]:
            rows.append([
                window_ms / 1000.0,
                result.scheduler_name,
                round(result.average_memory_mb(), 1),
                result.provisioned_containers,
                round(result.average_cpu_utilization() * 100.0, 2),
                round(result.total_cpu_core_seconds(), 1),
            ])
    return headers, rows


def client_footprint_table(results: Sequence[ExperimentResult]
                           ) -> Tuple[Headers, Rows]:
    """Fig. 14(d): per-invocation storage-client memory footprint."""
    headers = ["scheduler", "clients_created", "invocations",
               "client_MB_per_invocation"]
    rows: Rows = []
    for result in results:
        rows.append([
            result.scheduler_name,
            result.clients_created,
            len(result.invocations),
            round(result.client_memory_footprint_mb(), 3),
        ])
    return headers, rows


def duration_distribution_table(fractions: Sequence[float],
                                expected: Sequence[float],
                                labels: Sequence[str]
                                ) -> Tuple[Headers, Rows]:
    """Fig. 9: sampled vs published duration-bucket probabilities."""
    headers = ["duration_range_ms", "paper_fraction", "sampled_fraction"]
    rows: Rows = [[label, round(want, 4), round(got, 4)]
                  for label, want, got in zip(labels, expected, fractions)]
    return headers, rows


def invocation_pattern_table(per_second: Sequence[int]
                             ) -> Tuple[Headers, Rows]:
    """Fig. 10: per-second invocation counts of the replay minute."""
    headers = ["second", "invocations"]
    rows: Rows = [[i, count] for i, count in enumerate(per_second)]
    return headers, rows


def sharing_vs_monopoly_table(series: Dict[int, Dict[str, float]]
                              ) -> Tuple[Headers, Rows]:
    """Fig. 1: execution time under Sharing vs Monopoly per concurrency."""
    headers = ["concurrency", "sharing_ms", "monopoly_ms", "ratio"]
    rows: Rows = []
    for concurrency in sorted(series):
        entry = series[concurrency]
        ratio = entry["sharing_ms"] / entry["monopoly_ms"]
        rows.append([concurrency, round(entry["sharing_ms"], 1),
                     round(entry["monopoly_ms"], 1), round(ratio, 3)])
    return headers, rows


def creation_cost_table(costs: Dict[int, float],
                        unit: str = "ms") -> Tuple[Headers, Rows]:
    """Fig. 4 / Fig. 5: client-creation cost vs in-container concurrency."""
    headers = ["concurrency", f"per_creation_{unit}"]
    rows: Rows = [[c, round(costs[c], 1)] for c in sorted(costs)]
    return headers, rows
