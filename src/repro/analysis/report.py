"""Report assembly: print figure tables and persist CSV artefacts.

The benchmark files call :func:`emit` for every regenerated table/figure so
that ``pytest benchmarks/ --benchmark-only`` leaves both human-readable
output (stdout, captured by pytest) and machine-readable CSVs under
``benchmarks/out/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.common.tables import render_table, to_csv

#: Where benchmark artefacts are written (created on demand).
DEFAULT_OUTPUT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "out"


def emit(name: str,
         headers: Sequence[str],
         rows: Sequence[Sequence[object]],
         title: Optional[str] = None,
         output_dir: Optional[Path] = None) -> str:
    """Print a table and write ``<output_dir>/<name>.csv``; returns the text."""
    text = render_table(headers, rows, title=title or name)
    print()
    print(text, end="")
    directory = output_dir if output_dir is not None else DEFAULT_OUTPUT_DIR
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.csv").write_text(to_csv(headers, rows))
    return text


def emit_lines(name: str, lines: List[str],
               output_dir: Optional[Path] = None) -> None:
    """Print and persist free-form report lines (headline claims etc.)."""
    print()
    for line in lines:
        print(line)
    directory = output_dir if output_dir is not None else DEFAULT_OUTPUT_DIR
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.txt").write_text("\n".join(lines) + "\n")
