"""Structured decision log: what the platform did, and when.

Debugging a scheduling policy from aggregate CDFs alone is painful; the
decision log records every notable platform event (request arrival,
dispatch decision, cold start, batch execution, container release/expiry,
completion) as typed records that tests and users can filter and assert on.

Logging is off by default (experiments at full scale produce tens of
thousands of events); enable it per platform via
``platform.event_log.enable()`` or by passing an :class:`EventLog` you
constructed with ``enabled=True``.
"""

from __future__ import annotations

import csv
import enum
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """The platform events worth recording."""

    REQUEST_ARRIVED = "request-arrived"
    DISPATCH_DECISION = "dispatch-decision"
    LAUNCH_DECISION = "launch-decision"
    COLD_START_BEGAN = "cold-start-began"
    COLD_START_ENDED = "cold-start-ended"
    WARM_HIT = "warm-hit"
    BATCH_STARTED = "batch-started"
    INVOCATION_COMPLETED = "invocation-completed"
    INVOCATION_FAILED = "invocation-failed"
    CONTAINER_RELEASED = "container-released"
    CONTAINER_EXPIRED = "container-expired"
    FAULT_INJECTED = "fault-injected"
    CONTAINER_CRASHED = "container-crashed"
    INVOCATION_RETRIED = "invocation-retried"
    INVOCATION_HEDGED = "invocation-hedged"
    BREAKER_TRANSITION = "breaker-transition"


@dataclass(frozen=True)
class LogRecord:
    """One structured event."""

    time_ms: float
    kind: EventKind
    details: Dict[str, object] = field(default_factory=dict)

    def get(self, key: str, default: object = None) -> object:
        return self.details.get(key, default)


class EventLog:
    """An append-only, filterable event log."""

    def __init__(self, enabled: bool = False,
                 capacity: Optional[int] = None) -> None:
        """``capacity`` bounds memory: older records are dropped FIFO."""
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[LogRecord] = []
        self.dropped = 0

    def enable(self) -> "EventLog":
        self.enabled = True
        return self

    def disable(self) -> "EventLog":
        self.enabled = False
        return self

    def record(self, time_ms: float, kind: EventKind,
               **details: object) -> None:
        """Append one event (no-op while disabled)."""
        if not self.enabled:
            return
        self._records.append(LogRecord(time_ms=time_ms, kind=kind,
                                       details=details))
        if self.capacity is not None and len(self._records) > self.capacity:
            overflow = len(self._records) - self.capacity
            del self._records[:overflow]
            self.dropped += overflow

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def of_kind(self, kind: EventKind) -> List[LogRecord]:
        return [r for r in self._records if r.kind is kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for r in self._records if r.kind is kind)

    def between(self, start_ms: float, end_ms: float) -> List[LogRecord]:
        """Records with ``start_ms <= time < end_ms``."""
        if end_ms < start_ms:
            raise ValueError("end before start")
        return [r for r in self._records
                if start_ms <= r.time_ms < end_ms]

    def for_container(self, container_id: str) -> List[LogRecord]:
        return [r for r in self._records
                if r.get("container_id") == container_id]

    def for_invocation(self, invocation_id: str) -> List[LogRecord]:
        return [r for r in self._records
                if r.get("invocation_id") == invocation_id]

    # -- export ------------------------------------------------------------------

    def to_csv(self) -> str:
        """Flatten the log to CSV (time, kind, details as a JSON object).

        The details column is JSON (sorted keys, non-serialisable values
        stringified) so values containing ``;``/``=``/quotes survive the
        round trip — the old ``key=value;...`` join produced unparseable
        rows for any detail containing those characters.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time_ms", "kind", "details"])
        for record in self._records:
            detail_text = json.dumps(record.details, sort_keys=True,
                                     default=str)
            writer.writerow([record.time_ms, record.kind.value, detail_text])
        return buffer.getvalue()
