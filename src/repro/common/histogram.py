"""Fixed-bucket histograms.

Figure 9 of the paper is a histogram of function durations over irregular
buckets (``[0, 50) ms``, ``[50, 100) ms``, ..., ``[1550, inf)``).
:class:`BucketHistogram` supports exactly that: arbitrary, contiguous,
half-open buckets with an optional unbounded tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Bucket:
    """A half-open bucket ``[lower, upper)``; ``upper=None`` means unbounded."""

    lower: float
    upper: Optional[float]

    def contains(self, value: float) -> bool:
        if value < self.lower:
            return False
        return self.upper is None or value < self.upper

    def label(self) -> str:
        if self.upper is None:
            return f"[{self.lower:g}, inf)"
        return f"[{self.lower:g}, {self.upper:g})"


class BucketHistogram:
    """Counts samples in contiguous half-open buckets."""

    def __init__(self, edges: Sequence[float], unbounded_tail: bool = True) -> None:
        """Build buckets from sorted *edges*.

        ``edges = [0, 50, 100]`` with an unbounded tail yields buckets
        ``[0,50) [50,100) [100,inf)``; without it, ``[0,50) [50,100)``.
        """
        if len(edges) < 2:
            raise ValueError("need at least two edges")
        if list(edges) != sorted(set(edges)):
            raise ValueError("edges must be strictly increasing")
        buckets: List[Bucket] = []
        for lower, upper in zip(edges, edges[1:]):
            buckets.append(Bucket(lower, upper))
        if unbounded_tail:
            buckets.append(Bucket(edges[-1], None))
        self._buckets = tuple(buckets)
        self._counts = [0] * len(buckets)
        self._below = 0  # samples below the first edge
        self._total = 0

    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        return self._buckets

    @property
    def total(self) -> int:
        return self._total

    def add(self, value: float) -> None:
        """Count one sample."""
        self._total += 1
        if value < self._buckets[0].lower:
            self._below += 1
            return
        for i, bucket in enumerate(self._buckets):
            if bucket.contains(value):
                self._counts[i] += 1
                return
        # Only reachable without an unbounded tail.
        self._below += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def count(self, index: int) -> int:
        return self._counts[index]

    def fraction(self, index: int) -> float:
        """Fraction of all samples in bucket *index*."""
        if self._total == 0:
            raise ValueError("empty histogram")
        return self._counts[index] / self._total

    def fractions(self) -> List[float]:
        return [self.fraction(i) for i in range(len(self._buckets))]

    def rows(self) -> List[Tuple[str, int, float]]:
        """Return ``(label, count, fraction)`` per bucket for reporting."""
        return [(b.label(), self._counts[i], self.fraction(i))
                for i, b in enumerate(self._buckets)]
