"""Argument validation helpers.

Configuration objects across the package validate their fields with these
helpers so that error messages are uniform and tests can assert on
:class:`~repro.common.errors.ConfigurationError` regardless of which knob was
wrong.
"""

from __future__ import annotations

from typing import TypeVar

from repro.common.errors import ConfigurationError

T = TypeVar("T", int, float)


def require_positive(name: str, value: T) -> T:
    """Return *value* if strictly positive, else raise ConfigurationError."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: T) -> T:
    """Return *value* if >= 0, else raise ConfigurationError."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Return *value* if within [lo, hi], else raise ConfigurationError."""
    if not lo <= value <= hi:
        raise ConfigurationError(
            f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Return *value* if within [0, 1]."""
    return require_in_range(name, value, 0.0, 1.0)
