"""Bounded-memory result accounting for million-invocation runs.

The paper's full Azure trace carries ~1.98 M invocations; holding one
``Invocation`` record per arrival (as :class:`ExperimentResult` and the
original ``ClusterResult`` did) caps the bench near 50 k.  This module
provides the *online* alternative: experiments publish each completion
into a :class:`StreamingResultSink` and drop the record, so memory stays
flat no matter how long the replay runs.

Three mergeable primitives back the sink:

* :class:`OnlineStats` — count / total / min / max / sum-of-squares.
* :class:`LogBucketHistogram` — geometric buckets with O(1) insertion;
  merging sums integer counts, so merged percentiles are *exactly*
  order-independent.
* :class:`BoundedReservoir` — a bottom-k sketch: every sample draws a
  deterministic pseudo-random priority and the reservoir keeps the k
  smallest.  "k smallest of a union" is associative and commutative, so
  shard reservoirs merge in any order to the identical sample set.  While
  fewer than ``capacity`` samples have been seen the reservoir holds the
  *entire* population and percentile queries are exact — the property the
  figures pipeline and the CI shard-equivalence check rely on.

Merge semantics (the sharded cluster contract): for any sinks a, b, c
``merge`` is associative and commutative in every field the percentile and
count queries read.  Floating-point *totals* (means) are summed pairwise
and may differ in the last ulp across merge orders; counts, minima,
maxima, histogram counts and reservoir contents never do.
"""

from __future__ import annotations

import heapq
import math
import random
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.stats import SampleStats

#: Default cap on exact samples retained per channel.  50 k floats is
#: ~400 kB — far below one shard's working set — while keeping the exact
#: percentile path for every scenario the repo benchmarked before this
#: module existed.
DEFAULT_RESERVOIR_CAPACITY = 50_000

#: Geometric histogram defaults: first finite bucket at 0.01 ms, 5 %
#: growth, enough buckets to pass 10^7 ms (~2.8 simulated hours).
HISTOGRAM_MIN = 0.01
HISTOGRAM_GROWTH = 1.05
HISTOGRAM_BUCKETS = 426


class OnlineStats:
    """Constant-memory scalar moments; mergeable."""

    __slots__ = ("count", "total", "sum_squares", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("NaN samples are not allowed")
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_squares += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples recorded")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance (may wiggle in the last ulp across merges)."""
        if self.count == 0:
            raise ValueError("no samples recorded")
        mu = self.mean
        return max(0.0, self.sum_squares / self.count - mu * mu)

    def merge(self, other: "OnlineStats") -> None:
        self.count += other.count
        self.total += other.total
        self.sum_squares += other.sum_squares
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def to_dict(self) -> Dict[str, object]:
        return {"count": self.count, "total": self.total,
                "sum_squares": self.sum_squares,
                "min": None if self.count == 0 else self.minimum,
                "max": None if self.count == 0 else self.maximum}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "OnlineStats":
        stats = cls()
        stats.count = int(payload["count"])  # type: ignore[arg-type]
        stats.total = float(payload["total"])  # type: ignore[arg-type]
        stats.sum_squares = float(payload["sum_squares"])  # type: ignore[arg-type]
        if stats.count:
            stats.minimum = float(payload["min"])  # type: ignore[arg-type]
            stats.maximum = float(payload["max"])  # type: ignore[arg-type]
        return stats


class LogBucketHistogram:
    """Sparse geometric-bucket histogram with order-independent merge.

    Bucket ``i`` covers ``[min * growth**i, min * growth**(i+1))``; values
    below ``min`` (including 0) land in the dedicated underflow bucket and
    values beyond the last edge in the overflow bucket.  Counts are
    integers, so merged quantiles are bit-identical under any merge order.
    """

    __slots__ = ("minimum", "growth", "buckets", "_log_growth", "counts",
                 "underflow", "total")

    def __init__(self, minimum: float = HISTOGRAM_MIN,
                 growth: float = HISTOGRAM_GROWTH,
                 buckets: int = HISTOGRAM_BUCKETS) -> None:
        if minimum <= 0 or growth <= 1.0 or buckets < 1:
            raise ValueError(
                f"bad histogram shape: min={minimum} growth={growth} "
                f"buckets={buckets}")
        self.minimum = minimum
        self.growth = growth
        self.buckets = buckets
        self._log_growth = math.log(growth)
        self.counts: Dict[int, int] = {}
        self.underflow = 0
        self.total = 0

    def _index(self, value: float) -> int:
        index = int(math.log(value / self.minimum) / self._log_growth)
        if index >= self.buckets:
            return self.buckets - 1
        # Guard the floor against log rounding right at a bucket edge.
        if value < self.minimum * self.growth ** index:
            index -= 1
        return max(index, 0)

    def observe(self, value: float) -> None:
        if value < 0 or math.isnan(value):
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.total += 1
        if value < self.minimum:
            self.underflow += 1
            return
        index = self._index(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    def lower_edge(self, index: int) -> float:
        return self.minimum * self.growth ** index

    def quantile(self, q: float) -> float:
        """Approximate quantile: geometric midpoint of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("empty histogram")
        rank = q * (self.total - 1)
        seen = self.underflow
        if rank < seen:
            return 0.0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if rank < seen:
                return self.lower_edge(index) * math.sqrt(self.growth)
        return self.lower_edge(max(self.counts))  # pragma: no cover - guard

    def compatible(self, other: "LogBucketHistogram") -> bool:
        return (self.minimum == other.minimum and self.growth == other.growth
                and self.buckets == other.buckets)

    def merge(self, other: "LogBucketHistogram") -> None:
        if not self.compatible(other):
            raise ValueError("cannot merge histograms with different shapes")
        self.underflow += other.underflow
        self.total += other.total
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count

    def to_dict(self) -> Dict[str, object]:
        return {"min": self.minimum, "growth": self.growth,
                "buckets": self.buckets, "underflow": self.underflow,
                "counts": {str(k): v for k, v in sorted(self.counts.items())}}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LogBucketHistogram":
        histogram = cls(minimum=float(payload["min"]),  # type: ignore[arg-type]
                        growth=float(payload["growth"]),  # type: ignore[arg-type]
                        buckets=int(payload["buckets"]))  # type: ignore[arg-type]
        histogram.underflow = int(payload["underflow"])  # type: ignore[arg-type]
        counts = payload["counts"]
        histogram.counts = {int(k): int(v)
                            for k, v in counts.items()}  # type: ignore[union-attr]
        histogram.total = (histogram.underflow
                           + sum(histogram.counts.values()))
        return histogram


class BoundedReservoir:
    """Bottom-k sample sketch with an associative, commutative merge.

    Every sample draws a priority from a seeded RNG; the reservoir keeps
    the ``capacity`` samples with the *smallest* priorities.  The kept set
    of a union is independent of insertion or merge order, so shard
    reservoirs always merge to the identical sample multiset.  Until
    ``seen`` exceeds ``capacity`` nothing has been evicted and
    :meth:`values` is the exact population.
    """

    __slots__ = ("capacity", "seen", "_heap", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        # Max-heap on priority via negation: the root is the eviction
        # candidate (largest priority currently kept).
        self._heap: List[Tuple[float, float]] = []
        self._rng = random.Random(seed)

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every observed sample."""
        return self.seen <= self.capacity

    def observe(self, value: float) -> None:
        self.seen += 1
        self._insert(self._rng.random(), float(value))

    def _insert(self, priority: float, value: float) -> None:
        item = (-priority, value)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    def values(self) -> List[float]:
        """Kept samples, sorted by value (deterministic)."""
        return sorted(value for _neg, value in self._heap)

    def merge(self, other: "BoundedReservoir") -> None:
        if other.capacity != self.capacity:
            raise ValueError("cannot merge reservoirs of different capacity")
        self.seen += other.seen
        for neg_priority, value in other._heap:
            self._insert(-neg_priority, value)

    def to_dict(self) -> Dict[str, object]:
        return {"capacity": self.capacity, "seen": self.seen,
                "items": sorted([-neg, value]
                                for neg, value in self._heap)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  seed: int = 0) -> "BoundedReservoir":
        reservoir = cls(capacity=int(payload["capacity"]),  # type: ignore[arg-type]
                        seed=seed)
        reservoir.seen = int(payload["seen"])  # type: ignore[arg-type]
        for priority, value in payload["items"]:  # type: ignore[union-attr]
            reservoir._insert(float(priority), float(value))
        return reservoir


class ChannelStats:
    """One named metric channel: moments + histogram + exact-sample sketch."""

    __slots__ = ("stats", "histogram", "reservoir")

    def __init__(self, reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0) -> None:
        self.stats = OnlineStats()
        self.histogram = LogBucketHistogram()
        self.reservoir = BoundedReservoir(capacity=reservoir_capacity,
                                          seed=seed)

    def observe(self, value: float) -> None:
        self.stats.observe(value)
        self.histogram.observe(value)
        self.reservoir.observe(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def exact(self) -> bool:
        return self.reservoir.exact

    def percentile(self, q: float) -> float:
        """Percentile in [0, 100]: exact below the reservoir cap, else the
        histogram's order-independent approximation."""
        if self.count == 0:
            raise ValueError("no samples recorded")
        if self.exact:
            return SampleStats(self.reservoir.values()).percentile(q)
        return self.histogram.quantile(q / 100.0)

    def sample_stats(self) -> SampleStats:
        """Exact samples (the whole population while :attr:`exact` holds)."""
        return SampleStats(self.reservoir.values())

    def merge(self, other: "ChannelStats") -> None:
        self.stats.merge(other.stats)
        self.histogram.merge(other.histogram)
        self.reservoir.merge(other.reservoir)

    def to_dict(self) -> Dict[str, object]:
        return {"stats": self.stats.to_dict(),
                "histogram": self.histogram.to_dict(),
                "reservoir": self.reservoir.to_dict()}

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  seed: int = 0) -> "ChannelStats":
        channel = cls(seed=seed)
        channel.stats = OnlineStats.from_dict(
            payload["stats"])  # type: ignore[arg-type]
        channel.histogram = LogBucketHistogram.from_dict(
            payload["histogram"])  # type: ignore[arg-type]
        channel.reservoir = BoundedReservoir.from_dict(
            payload["reservoir"], seed=seed)  # type: ignore[arg-type]
        return channel


def _channel_seed(base_seed: int, name: str) -> int:
    """Deterministic per-channel reservoir seed (stable across processes)."""
    return base_seed ^ zlib.crc32(name.encode())


class StreamingResultSink:
    """Online result accounting a platform or cluster run publishes into.

    Experiments call :meth:`observe_invocation` on every completion and
    drop the record; shards serialise with :meth:`to_dict`, ship the JSON
    over a pipe, and the coordinator folds them with :meth:`merge` (any
    order — see the module docstring for the exact-identity guarantees).
    """

    #: Channel names published by :meth:`observe_invocation`.
    E2E = "e2e_ms"
    RESPONSE = "response_ms"
    SCHEDULING = "scheduling_ms"
    COLD_START = "cold_start_ms"
    QUEUING = "queuing_ms"
    EXECUTION = "execution_ms"

    def __init__(self, reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0) -> None:
        if reservoir_capacity < 1:
            raise ValueError(
                f"reservoir_capacity must be >= 1, got {reservoir_capacity}")
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self.channels: Dict[str, ChannelStats] = {}
        self.counters: Dict[str, int] = {}

    # -- accumulation -----------------------------------------------------

    def channel(self, name: str) -> ChannelStats:
        channel = self.channels.get(name)
        if channel is None:
            channel = self.channels[name] = ChannelStats(
                reservoir_capacity=self.reservoir_capacity,
                seed=_channel_seed(self.seed, name))
        return channel

    def observe(self, name: str, value: float) -> None:
        self.channel(name).observe(value)

    def increment(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def observe_invocation(self, invocation) -> None:
        """Publish one completed invocation's latency breakdown and drop it."""
        failed = getattr(invocation, "error", None) is not None
        if failed:
            self.increment("failed")
            return
        self.increment("completed")
        self.observe(self.E2E, invocation.end_to_end_ms)
        self.observe(self.RESPONSE, invocation.response_latency_ms)
        latency = invocation.latency
        self.observe(self.SCHEDULING, latency.scheduling_ms)
        self.observe(self.COLD_START, latency.cold_start_ms)
        self.observe(self.QUEUING, latency.queuing_ms)
        self.observe(self.EXECUTION, latency.execution_ms)

    # -- merge / serialisation -------------------------------------------

    def merge(self, other: "StreamingResultSink") -> None:
        if other.reservoir_capacity != self.reservoir_capacity:
            raise ValueError("cannot merge sinks with different reservoir "
                             "capacities")
        for name, channel in other.channels.items():
            mine = self.channels.get(name)
            if mine is None:
                # Fresh channel adopting the other's state keeps merge
                # commutative: seed only matters for future observations.
                mine = self.channels[name] = ChannelStats(
                    reservoir_capacity=self.reservoir_capacity,
                    seed=_channel_seed(self.seed, name))
            mine.merge(channel)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    @classmethod
    def merged(cls, sinks: Iterable["StreamingResultSink"]
               ) -> "StreamingResultSink":
        result: Optional[StreamingResultSink] = None
        for sink in sinks:
            if result is None:
                result = StreamingResultSink(
                    reservoir_capacity=sink.reservoir_capacity,
                    seed=sink.seed)
            result.merge(sink)
        if result is None:
            raise ValueError("merged() needs at least one sink")
        return result

    def to_dict(self) -> Dict[str, object]:
        return {
            "reservoir_capacity": self.reservoir_capacity,
            "seed": self.seed,
            "counters": dict(sorted(self.counters.items())),
            "channels": {name: channel.to_dict()
                         for name, channel in sorted(self.channels.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StreamingResultSink":
        sink = cls(reservoir_capacity=int(
            payload["reservoir_capacity"]),  # type: ignore[arg-type]
            seed=int(payload.get("seed", 0)))  # type: ignore[arg-type]
        sink.counters = {str(k): int(v) for k, v
                         in payload["counters"].items()}  # type: ignore[union-attr]
        for name, channel in payload["channels"].items():  # type: ignore[union-attr]
            sink.channels[str(name)] = ChannelStats.from_dict(
                channel, seed=_channel_seed(sink.seed, str(name)))
        return sink

    # -- summary helpers --------------------------------------------------

    @property
    def completed(self) -> int:
        return self.counter("completed")

    @property
    def failed(self) -> int:
        return self.counter("failed")

    def latency_stats(self) -> SampleStats:
        """End-to-end latency samples (the exact population below the cap)."""
        return self.channel(self.E2E).sample_stats()

    def latency_percentile(self, q: float) -> float:
        return self.channel(self.E2E).percentile(q)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest of the end-to-end latency channel."""
        channel = self.channel(self.E2E)
        if channel.count == 0:
            return {"count": 0}
        return {
            "count": channel.count,
            "exact": channel.exact,
            "mean": round(channel.stats.mean, 3),
            "min": round(channel.stats.minimum, 3),
            "max": round(channel.stats.maximum, 3),
            "p50": round(channel.percentile(50.0), 3),
            "p95": round(channel.percentile(95.0), 3),
            "p98": round(channel.percentile(98.0), 3),
            "p99": round(channel.percentile(99.0), 3),
        }


class TelemetrySnapshot:
    """A mergeable, JSON-serialisable digest of one process's telemetry.

    Shards in the sharded cluster ship one of these alongside their
    :class:`StreamingResultSink` so the coordinator can reconstruct the
    exact single-process observability picture.  Six maps, each with its
    own merge rule chosen so that the merged snapshot is **identical for
    any shard-arrival order**:

    * ``counters`` — name → value; merged with :func:`math.fsum`
      (exactly-rounded, hence permutation-invariant even for floats;
      platform counters are integer-valued so they are also exact).
    * ``gauges`` — name → value; merged with :func:`math.fsum`.  The sum
      of per-shard instantaneous values is the natural cluster-wide
      reading, but gauges are point-in-time (some, like ``pool.idle``,
      are last-writer-wins even within one process), so *only this map*
      carries no merged-equals-single-process guarantee.  The exactness
      contract covers counters, clocks, histogram buckets and
      log-histogram counts.
    * ``clocks`` — name → value; merged with :func:`max`.  Clock gauges
      (``sim.time_ms``) read a shard-local clock; the cluster-wide value
      is the furthest-ahead shard, matching
      ``ShardedClusterResult.completion_ms``.
    * ``histograms`` — name → fixed-edge histogram dict (``edges``,
      ``counts``, ``count``, ``sum``, ``min``, ``max``).  Counts are
      integers summed elementwise; sums use :func:`math.fsum`; min/max
      fold.  Edges must match exactly or the merge raises.
    * ``log_histograms`` — name → :class:`LogBucketHistogram` dict; same
      integer-count exactness as the sink's latency channels.
    * ``series`` — name → coalesced time-series dict
      (:meth:`repro.obs.timeseries.Series.to_dict`).  Series are
      shard-local signals with no cross-shard identity, so merging
      requires *disjoint* names and raises on collision (shards suffix
      their names when sampling is on).
    """

    _FIELDS = ("counters", "gauges", "clocks", "histograms",
               "log_histograms", "series")

    def __init__(self,
                 counters: Optional[Dict[str, float]] = None,
                 gauges: Optional[Dict[str, float]] = None,
                 clocks: Optional[Dict[str, float]] = None,
                 histograms: Optional[Dict[str, dict]] = None,
                 log_histograms: Optional[Dict[str, dict]] = None,
                 series: Optional[Dict[str, dict]] = None) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.clocks = dict(clocks or {})
        self.histograms = dict(histograms or {})
        self.log_histograms = dict(log_histograms or {})
        self.series = dict(series or {})

    def to_dict(self) -> dict:
        """JSON payload with deterministic key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "clocks": {k: self.clocks[k] for k in sorted(self.clocks)},
            "histograms": {k: self.histograms[k]
                           for k in sorted(self.histograms)},
            "log_histograms": {k: self.log_histograms[k]
                               for k in sorted(self.log_histograms)},
            "series": {k: self.series[k] for k in sorted(self.series)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetrySnapshot":
        return cls(**{field: payload.get(field) for field in cls._FIELDS})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetrySnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{field}={len(getattr(self, field))}"
                          for field in self._FIELDS)
        return f"TelemetrySnapshot({sizes})"

    @staticmethod
    def _merge_histograms(dicts: List[dict]) -> dict:
        edges = dicts[0]["edges"]
        for d in dicts[1:]:
            if d["edges"] != edges:
                raise ValueError(
                    f"histogram edge mismatch: {d['edges']} != {edges}")
        counts = [sum(d["counts"][i] for d in dicts)
                  for i in range(len(dicts[0]["counts"]))]
        minima = [d["min"] for d in dicts if d["min"] is not None]
        maxima = [d["max"] for d in dicts if d["max"] is not None]
        return {
            "edges": list(edges),
            "counts": counts,
            "count": sum(d["count"] for d in dicts),
            "sum": math.fsum(d["sum"] for d in dicts),
            "min": min(minima) if minima else None,
            "max": max(maxima) if maxima else None,
        }

    @staticmethod
    def _merge_log_histograms(dicts: List[dict]) -> dict:
        first = dicts[0]
        for d in dicts[1:]:
            for key in ("min", "growth", "buckets"):
                if d[key] != first[key]:
                    raise ValueError(
                        f"log-histogram shape mismatch on {key!r}")
        counts: Dict[str, int] = {}
        for d in dicts:
            for bucket, count in d["counts"].items():
                counts[bucket] = counts.get(bucket, 0) + count
        return {
            "min": first["min"],
            "growth": first["growth"],
            "buckets": first["buckets"],
            "underflow": sum(d["underflow"] for d in dicts),
            "counts": {k: counts[k] for k in sorted(counts, key=int)},
        }

    @classmethod
    def merged(cls, snapshots: Iterable["TelemetrySnapshot"]
               ) -> "TelemetrySnapshot":
        """Order-independent merge of any number of snapshots.

        Implemented as one n-way fold (``fsum`` over all shards at once)
        rather than pairwise merges, which is what makes float sums
        exactly permutation-invariant.
        """
        snaps = list(snapshots)
        result = cls()
        for field, rule in (("counters", math.fsum),
                            ("gauges", math.fsum),
                            ("clocks", max)):
            names = sorted({name for s in snaps
                            for name in getattr(s, field)})
            getattr(result, field).update(
                (name, rule(getattr(s, field)[name] for s in snaps
                            if name in getattr(s, field)))
                for name in names)
        for name in sorted({n for s in snaps for n in s.histograms}):
            result.histograms[name] = cls._merge_histograms(
                [s.histograms[name] for s in snaps if name in s.histograms])
        for name in sorted({n for s in snaps for n in s.log_histograms}):
            result.log_histograms[name] = cls._merge_log_histograms(
                [s.log_histograms[name] for s in snaps
                 if name in s.log_histograms])
        for snap in snaps:
            for name, series in snap.series.items():
                if name in result.series:
                    raise ValueError(
                        f"series name collision on merge: {name!r}")
                result.series[name] = series
        return result


__all__ = [
    "DEFAULT_RESERVOIR_CAPACITY",
    "BoundedReservoir",
    "ChannelStats",
    "LogBucketHistogram",
    "OnlineStats",
    "StreamingResultSink",
    "TelemetrySnapshot",
]
