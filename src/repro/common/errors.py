"""Exception hierarchy for the FaaSBatch reproduction.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch one type to shield themselves from the whole package.  The
sub-hierarchy mirrors the package layout: simulation-kernel faults, model
faults (containers, functions, storage), scheduling faults and configuration
faults are distinct so that tests and users can assert on precise failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid value was supplied for a configuration knob."""


class SimulationError(ReproError):
    """Base class for faults raised by the discrete-event kernel."""


class StopSimulation(SimulationError):
    """Raised internally to abort :meth:`Environment.run` early."""


class EventAlreadyTriggered(SimulationError):
    """An event was triggered (succeeded or failed) more than once."""


class ProcessInterrupted(SimulationError):
    """A simulated process was interrupted while waiting on an event.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class SchedulingError(ReproError):
    """A scheduler produced an inconsistent decision (internal invariant)."""


class ContainerError(ReproError):
    """Base class for container-lifecycle faults."""


class ContainerStateError(ContainerError):
    """A container operation was attempted in an illegal lifecycle state."""


class ContainerNotFound(ContainerError):
    """Lookup of a container by id failed."""


class FunctionNotRegistered(ReproError):
    """An invocation referenced a function id unknown to the platform."""


class CapacityExceeded(ReproError):
    """A resource request exceeded the machine's physical capacity."""


class WorkloadError(ReproError):
    """A workload description or trace file is malformed."""


class MultiplexerError(ReproError):
    """The resource multiplexer was misused (e.g. unhashable arguments)."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    The resilience layer (:mod:`repro.faults`) retries invocations whose
    error derives from this class; application (handler) errors do not, so
    a buggy function is not retried into oblivion by default.
    """


class ContainerCrashed(TransientError):
    """The container executing the invocation crashed mid-flight."""


class OomKilled(ContainerCrashed):
    """The container was killed because machine memory crossed a threshold."""


class ColdStartError(TransientError):
    """A container could not be provisioned for this invocation."""


class ColdStartFailed(ColdStartError):
    """Provisioning ran (and its latency was paid) but the container died."""


class ColdStartRefused(ColdStartError):
    """The circuit breaker refused to provision (image quarantined)."""


class TransientDispatchError(TransientError):
    """The dispatch RPC to the container failed transiently."""


class InvocationTimeout(TransientError):
    """The invocation exceeded its per-attempt timeout and was aborted."""


class HedgeSuperseded(ReproError):
    """A hedged shadow won the race; the primary attempt is cancelled.

    Deliberately *not* transient: the invocation already succeeded via its
    hedge, so the aborted primary must not trigger a retry.
    """


class HedgeCancelled(ReproError):
    """The primary finished first; the hedged shadow is cancelled."""


class PlatformStateError(ReproError):
    """An operation hit a platform in an incompatible lifecycle state."""


class PlatformDraining(PlatformStateError):
    """Work was submitted while the platform drains toward shutdown."""


class PlatformStopped(PlatformStateError):
    """Work was submitted after the platform fully stopped."""


class GatewayOverloaded(ReproError):
    """The gateway shed this request under admission control (HTTP 429).

    ``retry_after_seconds`` is the backoff hint the HTTP layer surfaces
    as a ``Retry-After`` header.
    """

    def __init__(self, message: str,
                 retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds
