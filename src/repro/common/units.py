"""Units and conversions used across the simulation.

Conventions (documented once here, relied on everywhere):

* **Time** is measured in *milliseconds* as ``float``.  The paper reports
  latencies between ~1 ms and ~10 s, so milliseconds keep numbers readable.
* **CPU work** is measured in *core-milliseconds*: the amount of computation
  one core completes in one millisecond.  A task with 500 core-ms of work
  takes 500 ms on a dedicated core and 1000 ms when it can only get half a
  core on average.
* **Memory** is measured in *mebibytes (MB)* as ``float``.

Helper constants and converters below exist so that call-sites never contain
bare magic numbers like ``0.2 * 1000``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

MS: float = 1.0
SECOND: float = 1000.0
MINUTE: float = 60.0 * SECOND
HOUR: float = 60.0 * MINUTE
DAY: float = 24.0 * HOUR


def seconds(value: float) -> float:
    """Convert *value* seconds into the library's millisecond time unit."""
    return value * SECOND


def minutes(value: float) -> float:
    """Convert *value* minutes into milliseconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert *value* hours into milliseconds."""
    return value * HOUR


def ms_to_seconds(value_ms: float) -> float:
    """Convert milliseconds back to seconds (for reporting)."""
    return value_ms / SECOND


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

MB: float = 1.0
GB: float = 1024.0


def gigabytes(value: float) -> float:
    """Convert *value* GiB into the library's MB memory unit."""
    return value * GB


def mb_to_gb(value_mb: float) -> float:
    """Convert MB back to GiB (for reporting)."""
    return value_mb / GB


# ---------------------------------------------------------------------------
# Small numeric helpers
# ---------------------------------------------------------------------------

#: Tolerance used when comparing simulated times and work amounts.  The DES
#: kernel performs floating-point arithmetic on times; comparisons must be
#: tolerant to representation error but tight enough not to mask real bugs.
TIME_EPSILON: float = 1e-9


def approximately(a: float, b: float, eps: float = 1e-6) -> bool:
    """Return True when *a* and *b* differ by at most *eps* (absolute)."""
    return abs(a - b) <= eps


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp *value* into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty interval: [{lo}, {hi}]")
    return max(lo, min(hi, value))
