"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates each paper table/figure as an aligned ASCII
table printed to stdout (and optionally written to CSV).  No third-party
table library is used; this renderer covers exactly what the reports need:
headers, per-column alignment and float formatting.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence


def format_cell(value: object, float_format: str = "{:.2f}") -> str:
    """Render one cell: floats via *float_format*, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None,
                 float_format: str = "{:.2f}") -> str:
    """Render an aligned ASCII table.

    Numeric columns are right-aligned, text columns left-aligned.  The result
    ends with a newline so it can be printed directly.
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, float_format) for cell in row] for row in rows
    ]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}")

    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * len(headers)
    for row_index, row in enumerate(rows):
        for i, cell in enumerate(row):
            if not isinstance(cell, (int, float)):
                numeric[i] = False

    def align(cell: str, i: int) -> str:
        return cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(align(cell, i) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same data as CSV text (for machine-readable artefacts)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
