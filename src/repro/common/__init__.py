"""Shared primitives: errors, units, ids, statistics, histograms, tables."""

from repro.common.cdf import CdfPoint, EmpiricalCdf, describe_cdf
from repro.common.errors import (
    CapacityExceeded,
    ConfigurationError,
    ContainerError,
    ContainerNotFound,
    ContainerStateError,
    EventAlreadyTriggered,
    FunctionNotRegistered,
    MultiplexerError,
    ProcessInterrupted,
    ReproError,
    SchedulingError,
    SimulationError,
    StopSimulation,
    WorkloadError,
)
from repro.common.histogram import Bucket, BucketHistogram
from repro.common.ids import IdFactory
from repro.common.stats import Ewma, SampleStats, mean, percentile
from repro.common.tables import render_table, to_csv

__all__ = [
    "Bucket",
    "BucketHistogram",
    "CapacityExceeded",
    "CdfPoint",
    "ConfigurationError",
    "ContainerError",
    "ContainerNotFound",
    "ContainerStateError",
    "EmpiricalCdf",
    "EventAlreadyTriggered",
    "Ewma",
    "FunctionNotRegistered",
    "IdFactory",
    "MultiplexerError",
    "ProcessInterrupted",
    "ReproError",
    "SampleStats",
    "SchedulingError",
    "SimulationError",
    "StopSimulation",
    "WorkloadError",
    "describe_cdf",
    "mean",
    "percentile",
    "render_table",
    "to_csv",
]
