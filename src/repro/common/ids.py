"""Deterministic identifier generation.

Simulations must be exactly reproducible, so identifiers are sequential and
namespaced (``container-17``, ``inv-203``) rather than random UUIDs.  Each
:class:`IdFactory` owns an independent counter per prefix; a platform run
creates one factory so that two runs with the same inputs produce identical
identifier streams.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict


class IdFactory:
    """Produces deterministic, namespaced, sequential identifiers."""

    def __init__(self) -> None:
        self._counters: DefaultDict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next identifier for *prefix*, e.g. ``"inv-0"``."""
        value = self._counters[prefix]
        self._counters[prefix] = value + 1
        return f"{prefix}-{value}"

    def count(self, prefix: str) -> int:
        """Return how many identifiers have been issued for *prefix*."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Forget all counters (used between independent runs)."""
        self._counters.clear()
