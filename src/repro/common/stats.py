"""Statistics helpers: exact sample stats, percentiles and EWMA.

The evaluation in the paper reports percentiles (e.g. the 98th-percentile SLO
used to port Kraken), CDFs, and EWMA-based workload prediction.  These small,
dependency-free helpers back all of that.  Samples sets in this reproduction
are at most tens of thousands of points, so exact (sorting) percentiles are
both affordable and preferable to approximate sketches.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


class SampleStats:
    """Accumulates scalar samples and answers exact summary queries."""

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: List[float] = []
        self._sorted = True
        for value in values:
            self.add(value)

    # -- accumulation -----------------------------------------------------

    def add(self, value: float) -> None:
        """Record one sample."""
        if math.isnan(value):
            raise ValueError("NaN samples are not allowed")
        self._values.append(float(value))
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        self._require_samples()
        return self.total / len(self._values)

    @property
    def minimum(self) -> float:
        self._require_samples()
        return min(self._values)

    @property
    def maximum(self) -> float:
        self._require_samples()
        return max(self._values)

    @property
    def variance(self) -> float:
        """Population variance."""
        self._require_samples()
        mu = self.mean
        return sum((v - mu) ** 2 for v in self._values) / len(self._values)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Exact percentile with linear interpolation, q in [0, 100]."""
        self._require_samples()
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            # The equality case also guards interpolation between equal
            # subnormals, where a*(1-f) + a*f can underflow below a.
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def values(self) -> Sequence[float]:
        """Return the recorded samples (insertion order, read-only copy)."""
        return tuple(self._values)

    # -- internals -----------------------------------------------------------

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def _require_samples(self) -> None:
        if not self._values:
            raise ValueError("no samples recorded")


class Ewma:
    """Exponentially weighted moving average, as used by Kraken's predictor.

    ``alpha`` is the weight of the newest observation; the classic update is
    ``value = alpha * sample + (1 - alpha) * value``.
    """

    def __init__(self, alpha: float = 0.3, initial: float | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial

    @property
    def value(self) -> float:
        if self._value is None:
            raise ValueError("EWMA has no observations yet")
        return self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def observe(self, sample: float) -> float:
        """Fold one observation in and return the updated average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        return self._value


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """One-shot exact percentile of a non-empty sequence."""
    stats = SampleStats(values)
    return stats.percentile(q)
