"""Empirical cumulative distribution functions.

Figures 3, 11 and 12 of the paper are CDF plots.  :class:`EmpiricalCdf` turns
a sample set into an exact step-function CDF that can be queried pointwise,
inverted (quantiles), and rendered as ``(x, F(x))`` series for reports.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class CdfPoint:
    """One point of a rendered CDF series."""

    x: float
    probability: float


class EmpiricalCdf:
    """Exact empirical CDF of a finite sample.

    ``F(x)`` is the fraction of samples ``<= x``.  The class pre-sorts its
    samples once; queries are O(log n).
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._samples: List[float] = sorted(float(s) for s in samples)
        if not self._samples:
            raise ValueError("cannot build a CDF from zero samples")

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def minimum(self) -> float:
        return self._samples[0]

    @property
    def maximum(self) -> float:
        return self._samples[-1]

    def probability_at(self, x: float) -> float:
        """Return ``P(X <= x)``."""
        rank = bisect.bisect_right(self._samples, x)
        return rank / len(self._samples)

    def quantile(self, p: float) -> float:
        """Return the smallest sample x with ``F(x) >= p`` (p in (0, 1])."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        index = max(0, min(len(self._samples) - 1,
                           int(p * len(self._samples) + 0.5) - 1))
        # Advance until the CDF really reaches p (guards rounding near ties).
        while index < len(self._samples) - 1 and \
                (index + 1) / len(self._samples) < p:
            index += 1
        return self._samples[index]

    def series(self, points: int = 100) -> List[CdfPoint]:
        """Render the CDF as *points* evenly spaced probability steps.

        Useful for printing figure-like series without emitting one row per
        sample.  Always includes the (max, 1.0) end point.
        """
        if points < 2:
            raise ValueError("need at least 2 points")
        out: List[CdfPoint] = []
        for i in range(1, points + 1):
            p = i / points
            out.append(CdfPoint(x=self.quantile(p), probability=p))
        return out

    def fraction_within(self, lo: float, hi: float) -> float:
        """Return ``P(lo < X <= hi)``."""
        if hi < lo:
            raise ValueError("hi < lo")
        return self.probability_at(hi) - self.probability_at(lo)

    def samples(self) -> Sequence[float]:
        """Sorted samples (read-only view)."""
        return tuple(self._samples)


def describe_cdf(cdf: EmpiricalCdf,
                 quantiles: Sequence[float] = (0.5, 0.9, 0.96, 0.98, 0.99, 1.0),
                 ) -> List[Tuple[float, float]]:
    """Return ``(quantile, value)`` rows for the standard report quantiles."""
    return [(q, cdf.quantile(q)) for q in quantiles]
