"""The assembled FaaSBatch scheduler (§III).

FaaSBatch = Invoke Mapper + Inline-Parallel Producer + Resource Multiplexer:

* the mapper turns each dispatch window of requests into per-function
  groups;
* the producer maps each group onto a single container and expands the
  batched invocations in parallel inside it;
* each FaaSBatch container carries a resource multiplexer that reuses
  redundant resources (storage clients) across all invocations it serves —
  including across windows, since keep-alive containers retain their cache
  (Fig. 8's λ_A3).

The scheduling path pays one launch decision per group instead of one per
invocation, which together with the collapse in cold starts is what drives
the latency and resource wins of §V.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import CpuDiscipline, Scheduler
from repro.core.config import FaaSBatchConfig
from repro.core.mapper import FunctionGroup, InvokeMapper
from repro.core.producer import InlineParallelProducer
from repro.core.windowing import AdaptiveWindow, WindowPolicy
from repro.obs.metrics import DEFAULT_SIZE_EDGES as SIZE_EDGES

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


def build_window_policy(config: FaaSBatchConfig) -> WindowPolicy | None:
    """Window policy for *config*, or ``None`` for the paper's fixed path.

    Returning ``None`` (rather than a :class:`FixedWindow`) lets the mapper
    build its own fixed policy, keeping this helper purely about the
    adaptive variant.  The adaptive policy treats ``config.window_ms`` as
    both the maximum window and the SLO budget, with a floor of 1/20th of
    it, so bursts shrink the window but a quiet stream behaves exactly like
    the fixed policy.
    """
    if config.window_policy != "adaptive":
        return None
    return AdaptiveWindow(min_ms=config.window_ms / 20.0,
                          max_ms=config.window_ms,
                          slo_budget_ms=config.window_ms)


class FaaSBatchScheduler(Scheduler):
    """Batch, map to a single container, expand in parallel, multiplex."""

    name = "FaaSBatch"
    cpu_discipline = CpuDiscipline.FAIR_SHARE

    def __init__(self, config: FaaSBatchConfig | None = None) -> None:
        self.config = config if config is not None else FaaSBatchConfig()
        self.mapper = InvokeMapper(window_ms=self.config.window_ms,
                                   policy=build_window_policy(self.config))
        self.producer = InlineParallelProducer(
            inline_parallel=self.config.inline_parallel,
            multiplex_resources=self.config.multiplex_resources,
            early_return=self.config.early_return)

    def start(self, platform: "ServerlessPlatform") -> None:
        platform.env.process(self._serve(platform), name="faasbatch-loop")

    def _serve(self, platform: "ServerlessPlatform"):
        metrics = platform.obs.metrics
        while True:
            groups = yield from self.mapper.collect_groups(
                platform.env, platform.request_queue,
                on_open=platform.window_opened,
                on_close=platform.window_closed)
            metrics.counter("faasbatch.windows").inc()
            metrics.counter("faasbatch.groups").inc(len(groups))
            size_histogram = metrics.histogram("faasbatch.group_size",
                                               edges=SIZE_EDGES)
            for group in groups:
                size_histogram.observe(group.size)
            # Batch-arrival fast path: every group of the closed window
            # starts via one bulk append of start events (order-identical
            # to per-group ``env.process`` calls).
            platform.env.process_batch(
                [self._run_group(platform, group) for group in groups],
                names=[f"faasbatch-group:{group.function_id}"
                       for group in groups])

    def _run_group(self, platform: "ServerlessPlatform", group):
        # One dispatch/launch decision per group; the producer drives the
        # shared pipeline with its parallel-expansion plan.
        yield from self.producer.run_group(platform, group)

    # -- introspection -------------------------------------------------------------

    def describe(self) -> str:
        """One-line summary used by reports."""
        flags = []
        if self.config.window_policy != "fixed":
            flags.append(f"{self.config.window_policy}-window")
        if not self.config.inline_parallel:
            flags.append("serial")
        if not self.config.multiplex_resources:
            flags.append("no-multiplex")
        if self.config.early_return:
            flags.append("early-return")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return (f"{self.name}[window={self.config.window_ms:g}ms]{suffix}")


__all__ = ["FaaSBatchScheduler", "FunctionGroup", "build_window_policy"]
