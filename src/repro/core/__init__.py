"""FaaSBatch core: Invoke Mapper, Inline-Parallel Producer, Resource Multiplexer."""

from repro.core.config import (
    DEFAULT_WINDOW_MS,
    SWEEP_WINDOWS_MS,
    WINDOW_POLICIES,
    FaaSBatchConfig,
)
from repro.core.mapper import FunctionGroup, InvokeMapper
from repro.core.windowing import AdaptiveWindow, FixedWindow, WindowPolicy
from repro.core.multiplexer import (
    Lookup,
    LookupOutcome,
    MultiplexerStats,
    SimResourceMultiplexer,
)
from repro.core.producer import InlineParallelProducer
from repro.core.scheduler import FaaSBatchScheduler

__all__ = [
    "AdaptiveWindow",
    "DEFAULT_WINDOW_MS",
    "FaaSBatchConfig",
    "FaaSBatchScheduler",
    "FixedWindow",
    "FunctionGroup",
    "InlineParallelProducer",
    "InvokeMapper",
    "Lookup",
    "LookupOutcome",
    "MultiplexerStats",
    "SWEEP_WINDOWS_MS",
    "SimResourceMultiplexer",
    "WINDOW_POLICIES",
    "WindowPolicy",
]
