"""Invoke Mapper (§III-B): window batching and per-function grouping.

"A function group is defined as the concurrent invocations received for an
identical function over a period of time."  The mapper listens on the
platform's request queue; all requests that arrive within one dispatch
window are treated as concurrent, classified by function, and each group is
destined for a *single* container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.windowing import FixedWindow, WindowPolicy
from repro.model.function import FunctionSpec, Invocation
from repro.platformsim.windows import collect_window_policy
from repro.sim.kernel import Environment
from repro.sim.primitives import Store


@dataclass(frozen=True)
class FunctionGroup:
    """One function group: what the mapper hands the producer (Fig. 7 ①).

    Carries "the number of invocations, the function type, and resource
    limits" — the information the Inline-Parallel Producer consumes.
    """

    function: FunctionSpec
    invocations: Tuple[Invocation, ...]
    window_start_ms: float
    window_end_ms: float

    def __post_init__(self) -> None:
        if not self.invocations:
            raise ValueError("a function group cannot be empty")
        for invocation in self.invocations:
            if invocation.function.function_id != self.function.function_id:
                raise ValueError(
                    f"{invocation.invocation_id} does not belong to "
                    f"function {self.function.function_id!r}")

    @property
    def size(self) -> int:
        return len(self.invocations)

    @property
    def function_id(self) -> str:
        return self.function.function_id

    @property
    def cpu_limit(self):
        """The customer resource limit forwarded to the producer."""
        return self.function.cpu_limit


class InvokeMapper:
    """Batches a dispatch window of requests into function groups.

    Window length is delegated to a :class:`WindowPolicy`; by default a
    :class:`FixedWindow` of ``window_ms`` reproduces the paper's constant
    interval.  The mapper drains one multi-function queue, so the policy is
    consulted with ``key=None`` (a single aggregate arrival estimator).
    """

    def __init__(self, window_ms: float,
                 policy: Optional[WindowPolicy] = None) -> None:
        if window_ms < 0:
            raise ValueError(f"negative window: {window_ms}")
        self.window_ms = window_ms
        self.policy = policy if policy is not None else FixedWindow(window_ms)
        self.windows_formed = 0
        self.groups_formed = 0

    def collect_groups(self, env: Environment,
                       queue: Store[Invocation],
                       on_open=None, on_close=None):
        """Generator: wait out one dispatch window, return its groups.

        Usage: ``groups = yield from mapper.collect_groups(env, queue)``.
        Groups preserve arrival order within each function.

        The window opens at the *first arrival*, not when the mapper starts
        waiting: on sparse workloads the mapper can idle for seconds before
        a request shows up, and that idle time is not part of the window.
        ``on_open``/``on_close`` are forwarded to the window collector —
        pure observers of the window boundaries (telemetry only).
        """
        batch, window_start = yield from collect_window_policy(
            env, queue, self.policy, on_open=on_open, on_close=on_close)
        groups = self.group_invocations(batch, window_start_ms=window_start,
                                        window_end_ms=env.now)
        self.windows_formed += 1
        self.groups_formed += len(groups)
        return groups

    @staticmethod
    def group_invocations(invocations: List[Invocation],
                          window_start_ms: float,
                          window_end_ms: float) -> List[FunctionGroup]:
        """Classify *invocations* by function (pure, order-preserving)."""
        by_function: Dict[str, List[Invocation]] = {}
        for invocation in invocations:
            by_function.setdefault(invocation.function.function_id,
                                   []).append(invocation)
        return [FunctionGroup(function=members[0].function,
                              invocations=tuple(members),
                              window_start_ms=window_start_ms,
                              window_end_ms=window_end_ms)
                for members in by_function.values()]
