"""Resource Multiplexer — simulation-side model (§III-D).

The multiplexer lives *inside a container* and intercepts resource-creation
requests (storage client constructors).  It maintains the paper's
``factory -> Hash(args) -> instance`` mapping:

* **hit** — an instance for this key already exists: return it immediately
  (cost: one hash + dict lookup).
* **in flight** — another invocation is currently building this instance:
  wait for that build to finish, then share the result.  This is what makes
  FaaSBatch's I/O latency collapse into the narrow 10–100 ms band of
  Fig. 12(c): of N concurrent identical creations only the *first* pays.
* **miss** — nobody has built it: the caller builds it and commits the
  result for everyone else.

A real (threading, non-simulated) implementation with the same semantics
lives in :mod:`repro.local.multiplexer`; this one is phrased in terms of the
DES kernel's events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.common.errors import MultiplexerError
from repro.sim.kernel import Environment, Event


class LookupOutcome(enum.Enum):
    """What the multiplexer found for a creation request."""

    HIT = "hit"
    IN_FLIGHT = "in_flight"
    MISS = "miss"


@dataclass
class MultiplexerStats:
    """Counters for reporting and for the ablation benchmarks."""

    hits: int = 0
    in_flight_waits: int = 0
    misses: int = 0
    failed_builds: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.in_flight_waits + self.misses

    @property
    def reuse_ratio(self) -> float:
        """Fraction of lookups served without a fresh build."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.in_flight_waits) / self.lookups


@dataclass
class Lookup:
    """Result of :meth:`SimResourceMultiplexer.lookup`.

    Exactly one of ``instance`` (HIT), ``ready_event`` (IN_FLIGHT) or the
    obligation to call :meth:`SimResourceMultiplexer.commit`/``abort``
    (MISS) applies.
    """

    outcome: LookupOutcome
    key: Tuple[str, int]
    instance: Optional[object] = None
    ready_event: Optional[Event] = None


@dataclass
class _CacheEntry:
    instance: Optional[object] = None
    ready: Optional[Event] = None  # pending build when instance is None
    builds: int = field(default=0)


class SimResourceMultiplexer:
    """Per-container resource-args-result cache (DES flavour)."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._cache: Dict[Tuple[str, int], _CacheEntry] = {}
        self.stats = MultiplexerStats()

    # -- the §III-D protocol -----------------------------------------------------

    def lookup(self, factory: str, args_hash: Hashable) -> Lookup:
        """Intercept a creation request for ``factory(args)``.

        Mirrors Fig. 8: search the cached mappings; on a miss the caller
        *must* later call :meth:`commit` (or :meth:`abort` on failure).
        """
        key = self._key(factory, args_hash)
        entry = self._cache.get(key)
        if entry is not None and entry.instance is not None:
            self.stats.hits += 1
            return Lookup(LookupOutcome.HIT, key, instance=entry.instance)
        if entry is not None and entry.ready is not None:
            self.stats.in_flight_waits += 1
            return Lookup(LookupOutcome.IN_FLIGHT, key,
                          ready_event=entry.ready)
        # Miss: reserve the key so concurrent callers wait on our build.
        self.stats.misses += 1
        self._cache[key] = _CacheEntry(ready=self.env.event())
        return Lookup(LookupOutcome.MISS, key)

    def commit(self, key: Tuple[str, int], instance: object) -> None:
        """Publish the freshly built *instance* under *key*."""
        entry = self._entry_being_built(key)
        entry.instance = instance
        entry.builds += 1
        ready, entry.ready = entry.ready, None
        assert ready is not None
        ready.succeed(instance)

    def abort(self, key: Tuple[str, int], error: BaseException) -> None:
        """A build failed: propagate to waiters and clear the reservation."""
        entry = self._entry_being_built(key)
        self.stats.failed_builds += 1
        ready = entry.ready
        del self._cache[key]
        assert ready is not None
        # Defused: a crash that kills the builder usually kills the waiters
        # too, so the broadcast may legitimately find nobody listening.
        ready.fail(error).defuse()

    # -- introspection -------------------------------------------------------------

    def cached_instances(self) -> int:
        """Number of live cached instances (one per distinct key built)."""
        return sum(1 for e in self._cache.values() if e.instance is not None)

    def has(self, factory: str, args_hash: Hashable) -> bool:
        entry = self._cache.get(self._key(factory, args_hash))
        return entry is not None and entry.instance is not None

    def instance_for(self, factory: str, args_hash: Hashable) -> object:
        entry = self._cache.get(self._key(factory, args_hash))
        if entry is None or entry.instance is None:
            raise MultiplexerError(
                f"no cached instance for {factory}#{args_hash}")
        return entry.instance

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _key(factory: str, args_hash: Hashable) -> Tuple[str, int]:
        try:
            return (factory, hash(args_hash))
        except TypeError as exc:
            raise MultiplexerError(
                f"creation arguments are not hashable: {args_hash!r}") from exc

    def _entry_being_built(self, key: Tuple[str, int]) -> _CacheEntry:
        entry = self._cache.get(key)
        if entry is None or entry.ready is None:
            raise MultiplexerError(
                f"commit/abort without a pending build for {key!r}")
        return entry
