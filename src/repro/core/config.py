"""FaaSBatch configuration.

The knobs mirror §III/§IV: the dispatch-window interval (default 0.2 s,
swept from 0.01 s to 0.5 s in Figs. 13/14) and switches for the ablation
study (inline parallelism on/off, resource multiplexing on/off).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError

#: The paper's default dispatch interval: "we set a fixed time interval
#: (default in 0.2 second)" (§III-B).
DEFAULT_WINDOW_MS = 200.0

#: The interval sweep of the evaluation: "varying the window sizes from
#: 0.01 s to 0.5 s" (§IV).
SWEEP_WINDOWS_MS = (10.0, 100.0, 200.0, 500.0)

#: Recognised window-sizing policies (see :mod:`repro.core.windowing`).
WINDOW_POLICIES = ("fixed", "adaptive")


@dataclass(frozen=True)
class FaaSBatchConfig:
    """Configuration of the FaaSBatch scheduler."""

    #: Dispatch window: requests arriving within it are treated as
    #: concurrent and batched into one group per function.  Under the
    #: adaptive policy this is the *maximum* window (and the SLO budget);
    #: the observed arrival rate can only shrink it.
    window_ms: float = DEFAULT_WINDOW_MS
    #: Window-sizing policy: ``"fixed"`` reproduces the paper's constant
    #: interval; ``"adaptive"`` sizes each window from the observed
    #: arrival rate (see :class:`repro.core.windowing.AdaptiveWindow`).
    window_policy: str = "fixed"
    #: Expand batched invocations in parallel inside the container
    #: (§III-C).  Disabling this degrades a group to a serial queue —
    #: the Kraken-style execution used for the ablation benchmark.
    inline_parallel: bool = True
    #: Reuse redundant resources inside containers (§III-D).  Disabling
    #: makes every invocation build its own storage client — the other
    #: ablation axis.
    multiplex_resources: bool = True
    #: The paper's future-work extension (§III-C): return each completed
    #: invocation to its caller immediately instead of holding the group's
    #: HTTP response until every member has finished.  Off by default to
    #: match the published system.
    early_return: bool = False

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ConfigurationError(
                f"window_ms must be >= 0, got {self.window_ms}")
        if self.window_policy not in WINDOW_POLICIES:
            raise ConfigurationError(
                f"window_policy must be one of {WINDOW_POLICIES}, "
                f"got {self.window_policy!r}")
        if self.window_policy == "adaptive" and self.window_ms <= 0:
            raise ConfigurationError(
                "the adaptive window policy needs a positive window_ms "
                "to use as its maximum window / SLO budget")

    def with_window(self, window_ms: float) -> "FaaSBatchConfig":
        """Copy with a different dispatch interval (for the sweeps)."""
        return replace(self, window_ms=window_ms)
