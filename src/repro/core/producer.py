"""Inline-Parallel Producer (§III-C): one container per group, expanded.

The producer's three steps, straight from Fig. 7:

1. receive a function group (invocation count, function type, resource
   limits) from the Invoke Mapper;
2. obtain a container — a keep-alive hit or a cold start — and apply the
   customer's CPU limit (``cpu_count``/``cpuset_cpus``);
3. fire one request at the container that *expands* all batched invocations
   as parallel threads; the request returns only after every invocation of
   the group has completed.

With ``inline_parallel`` disabled (ablation), the group is executed as a
serial in-container queue instead — the Kraken-style behaviour the paper
contrasts against.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.common.errors import ColdStartError
from repro.common.eventlog import EventKind
from repro.core.mapper import FunctionGroup

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


class InlineParallelProducer:
    """Maps each function group onto a single container and runs it."""

    def __init__(self, inline_parallel: bool = True,
                 multiplex_resources: bool = True,
                 early_return: bool = False) -> None:
        self.inline_parallel = inline_parallel
        self.multiplex_resources = multiplex_resources
        self.early_return = early_return
        self.groups_executed = 0
        self.invocations_executed = 0

    def concurrency_limit(self, group: FunctionGroup) -> Optional[int]:
        """In-container concurrency for *group*.

        ``None`` (unbounded threads) under inline parallelism; ``1`` (a
        serial queue) in the ablation configuration.
        """
        return None if self.inline_parallel else 1

    def execute_group(self, platform: "ServerlessPlatform",
                      group: FunctionGroup, warm_container=None):
        """Generator: run one function group to completion (steps 2 + 3).

        ``warm_container`` lets the scheduler pass a container it already
        took from the keep-alive pool at decision time; otherwise one is
        obtained here (warm hit or cold start).
        """
        if warm_container is not None:
            container, cold_start_ms = warm_container, 0.0
        else:
            try:
                container, cold_start_ms = \
                    yield from platform.acquire_container(
                        group.function,
                        concurrency_limit=self.concurrency_limit(group),
                        with_multiplexer=self.multiplex_resources)
            except ColdStartError as error:
                platform.fail_undispatched(list(group.invocations), error)
                return
        now = platform.env.now
        invocations = platform.begin_dispatch(
            container, list(group.invocations), cold_start_ms)
        if not invocations:
            platform.release_container(container)
            return
        platform.event_log.record(now, EventKind.BATCH_STARTED,
                                  container_id=container.container_id,
                                  batch_size=len(invocations),
                                  function_id=group.function_id)
        platform.obs.tracer.container_event(
            container.container_id, "batch-started", now,
            batch_size=len(invocations), function_id=group.function_id)
        if self.early_return:
            # Future-work extension: each caller gets its response the
            # moment its own invocation finishes.
            processes = container.execute_invocations(invocations)
            for invocation, process in zip(invocations, processes):
                self._respond_on_completion(platform, invocation, process)
            yield platform.env.all_of(processes)
        else:
            # Step 3 as published: the HTTP request returns only after ALL
            # invocations of the function group have completed.
            yield container.execute_batch(invocations)
            now = platform.env.now
            for invocation in invocations:
                invocation.mark_responded(now)
                platform.note_completed(invocation)
        platform.release_container(container)
        self.groups_executed += 1
        self.invocations_executed += len(invocations)

    @staticmethod
    def _respond_on_completion(platform: "ServerlessPlatform",
                               invocation, process) -> None:
        """Arrange response + completion bookkeeping when *process* ends."""

        def on_done(_event) -> None:
            invocation.mark_responded(platform.env.now)
            platform.note_completed(invocation)

        assert process.callbacks is not None
        process.callbacks.append(on_done)
