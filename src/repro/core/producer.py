"""Inline-Parallel Producer (§III-C): one container per group, expanded.

The producer's three steps, straight from Fig. 7:

1. receive a function group (invocation count, function type, resource
   limits) from the Invoke Mapper;
2. obtain a container — a keep-alive hit or a cold start — and apply the
   customer's CPU limit (``cpu_count``/``cpuset_cpus``);
3. fire one request at the container that *expands* all batched invocations
   as parallel threads; the request returns only after every invocation of
   the group has completed.

With ``inline_parallel`` disabled (ablation), the group is executed as a
serial in-container queue instead — the Kraken-style behaviour the paper
contrasts against.

Execution rides the shared dispatch pipeline
(:func:`repro.baselines.base.run_dispatch_pipeline`); the producer's job is
reduced to translating a :class:`~repro.core.mapper.FunctionGroup` into a
:class:`~repro.baselines.base.DispatchPlan` (parallel expansion, resource
multiplexer, per-group BATCH_STARTED tagging) and keeping its counters.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.baselines.base import DispatchPlan, run_dispatch_pipeline
from repro.core.mapper import FunctionGroup

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


class InlineParallelProducer:
    """Maps each function group onto a single container and runs it."""

    def __init__(self, inline_parallel: bool = True,
                 multiplex_resources: bool = True,
                 early_return: bool = False) -> None:
        self.inline_parallel = inline_parallel
        self.multiplex_resources = multiplex_resources
        self.early_return = early_return
        self.groups_executed = 0
        self.invocations_executed = 0

    def concurrency_limit(self, group: FunctionGroup) -> Optional[int]:
        """In-container concurrency for *group*.

        ``None`` (unbounded threads) under inline parallelism; ``1`` (a
        serial queue) in the ablation configuration.
        """
        return None if self.inline_parallel else 1

    def dispatch_plan(self, group: FunctionGroup) -> DispatchPlan:
        """The shared-pipeline plan implementing this producer for *group*."""
        return DispatchPlan(
            concurrency_limit=self.concurrency_limit(group),
            with_multiplexer=self.multiplex_resources,
            acquire_on_miss=True,
            early_return=self.early_return,
            batch_event_function_id=group.function_id,
            record_batch_size_metric=False)

    def run_group(self, platform: "ServerlessPlatform", group: FunctionGroup):
        """Generator: one dispatch/launch decision + execution for *group*.

        The platform handled every request of the window (HTTP receive +
        enqueue) but pays only ONE dispatch/launch decision per group —
        the collapse that drives Fig. 11/12's scheduling-latency wins.
        """
        count = yield from run_dispatch_pipeline(
            platform, list(group.invocations), self.dispatch_plan(group),
            function=group.function)
        self._account(count)

    def execute_group(self, platform: "ServerlessPlatform",
                      group: FunctionGroup, warm_container=None):
        """Generator: run one function group to completion (steps 2 + 3).

        ``warm_container`` lets the scheduler pass a container it already
        took from the keep-alive pool at decision time; otherwise one is
        obtained here (warm hit or cold start).  The decision CPU work is
        assumed already paid by the caller.
        """
        count = yield from run_dispatch_pipeline(
            platform, list(group.invocations), self.dispatch_plan(group),
            function=group.function, warm_container=warm_container,
            decision_work=False)
        self._account(count)

    def _account(self, count: int) -> None:
        if count:
            self.groups_executed += 1
            self.invocations_executed += count
