"""Window-sizing policies shared by the simulator and the live gateway.

The paper's Invoke Mapper holds every batch window open for a fixed 0.2 s
(`§IV-B`).  That constant used to be duplicated: once in the simulator's
window collector (:mod:`repro.platformsim.windows`) and once, independently,
on the gateway event loop (:mod:`repro.gateway.batching`).  This module is
the single owner of the decision "how long should the window that just
opened stay open?", so both execution surfaces consume the exact same
policy object.

Two policies ship:

* :class:`FixedWindow` — the paper's constant window.  The simulator's
  fixed path is routed through it and is bit-identical to the historical
  implementation (pinned by ``tests/integration/test_engine_equivalence.py``
  against the committed goldens).
* :class:`AdaptiveWindow` — sizes each window from the observed arrival
  rate and an SLO budget.  It keeps an EWMA of inter-arrival gaps per key
  (the simulator uses one aggregate estimator, the gateway one per
  function) and opens a window just long enough to collect
  ``target_batch_size`` arrivals at the current rate, capped by the SLO
  budget and clamped to ``[min_ms, max_ms]``.  Faster arrivals therefore
  shrink the window — batches fill quickly so there is no reason to hold
  requests — which is what cuts tail latency under bursts.

The contract is deliberately tiny so policies stay portable across the
simulated clock (milliseconds since sim start) and the wall clock
(milliseconds from the asyncio loop): ``observe_arrival`` is a pure
observer fed every arrival, and ``window_ms`` is read once per window at
open time.  Policies must not schedule events or otherwise interact with
either clock.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import Ewma

__all__ = [
    "AdaptiveWindow",
    "FixedWindow",
    "WindowPolicy",
]


class WindowPolicy(abc.ABC):
    """Decides how long a freshly opened batch window stays open.

    ``key`` identifies the arrival stream: the simulator's Invoke Mapper
    collects all functions from one queue and passes ``None`` (one
    aggregate estimator), while the gateway keeps one batcher per function
    and passes the function name.
    """

    @abc.abstractmethod
    def window_ms(self, key: Optional[str] = None) -> float:
        """Length, in milliseconds, of the window opening now for ``key``."""

    def observe_arrival(self, key: Optional[str], now_ms: float) -> None:
        """Record an arrival at ``now_ms`` for ``key``.

        Called for every arrival (including ones that land inside an open
        window).  Must be side-effect free with respect to the clock; the
        default is a no-op so stateless policies pay nothing.
        """


class FixedWindow(WindowPolicy):
    """The paper's constant dispatch window (0.2 s in §IV-B)."""

    __slots__ = ("_window_ms",)

    def __init__(self, window_ms: float) -> None:
        if window_ms < 0:
            raise ValueError(f"negative window: {window_ms}")
        self._window_ms = float(window_ms)

    def window_ms(self, key: Optional[str] = None) -> float:
        return self._window_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedWindow({self._window_ms:g}ms)"


class AdaptiveWindow(WindowPolicy):
    """Arrival-rate/SLO driven window sizing.

    The window opening now is sized to collect ``target_batch_size``
    arrivals at the current estimated rate::

        desired = target_batch_size * ewma(inter-arrival gap)
        window  = clamp(min(desired, slo_budget_ms), min_ms, max_ms)

    which is monotone non-increasing in the arrival rate and always inside
    ``[min_ms, max_ms]`` (both properties are pinned by the hypothesis
    tests in ``tests/core/test_windowing.py``).  A key with no gap
    estimate yet gets the full ``max_ms`` — identical to the fixed policy
    until evidence arrives.
    """

    __slots__ = (
        "alpha",
        "max_ms",
        "min_ms",
        "slo_budget_ms",
        "target_batch_size",
        "_gaps",
        "_last_arrival_ms",
    )

    def __init__(
        self,
        *,
        min_ms: float = 10.0,
        max_ms: float = 200.0,
        target_batch_size: int = 8,
        slo_budget_ms: Optional[float] = None,
        alpha: float = 0.2,
    ) -> None:
        if min_ms <= 0:
            raise ConfigurationError(f"min_ms must be positive, got {min_ms}")
        if max_ms < min_ms:
            raise ConfigurationError(
                f"max_ms ({max_ms}) must be >= min_ms ({min_ms})")
        if target_batch_size < 1:
            raise ConfigurationError(
                f"target_batch_size must be >= 1, got {target_batch_size}")
        if slo_budget_ms is None:
            slo_budget_ms = max_ms
        if slo_budget_ms <= 0:
            raise ConfigurationError(
                f"slo_budget_ms must be positive, got {slo_budget_ms}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}")
        self.min_ms = float(min_ms)
        self.max_ms = float(max_ms)
        self.target_batch_size = int(target_batch_size)
        self.slo_budget_ms = float(slo_budget_ms)
        self.alpha = float(alpha)
        self._gaps: Dict[Optional[str], Ewma] = {}
        self._last_arrival_ms: Dict[Optional[str], float] = {}

    def observe_arrival(self, key: Optional[str], now_ms: float) -> None:
        last = self._last_arrival_ms.get(key)
        self._last_arrival_ms[key] = now_ms
        if last is None:
            return
        gap = now_ms - last
        if gap < 0:
            raise ValueError(
                f"arrival clock went backwards for {key!r}: "
                f"{last} -> {now_ms}")
        estimator = self._gaps.get(key)
        if estimator is None:
            estimator = self._gaps[key] = Ewma(alpha=self.alpha)
        estimator.observe(gap)

    def window_for_gap(self, gap_ms: float) -> float:
        """Pure sizing rule for a given estimated inter-arrival gap."""
        desired = min(self.target_batch_size * gap_ms, self.slo_budget_ms)
        return min(max(desired, self.min_ms), self.max_ms)

    def estimated_gap_ms(self, key: Optional[str] = None) -> Optional[float]:
        """Current EWMA inter-arrival gap for ``key``, or None if unseen."""
        estimator = self._gaps.get(key)
        if estimator is None or not estimator.initialized:
            return None
        return estimator.value

    def window_ms(self, key: Optional[str] = None) -> float:
        gap = self.estimated_gap_ms(key)
        if gap is None:
            return self.max_ms
        return self.window_for_gap(gap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveWindow(min={self.min_ms:g}ms, max={self.max_ms:g}ms, "
            f"target_batch={self.target_batch_size}, "
            f"slo={self.slo_budget_ms:g}ms)")
