"""Critical-path attribution over recorded invocation spans.

Answers the question the paper's latency-breakdown figures (Figs. 11/12)
answer visually: *which stage dominates each invocation's latency, and
which stage do the tail invocations spend their time in?*

Per invocation, the five stage durations are summed from the span records
and the **dominant stage** is the one with the largest share (ties break
toward the earlier stage in canonical order — deterministic).  Per
scheduler, the attribution aggregates:

* how many invocations each stage dominates (count and fraction);
* mean milliseconds per stage (the data behind the report's stacked
  stage-breakdown bars — the two views are the same aggregation);
* the p99 response-latency threshold and, over the invocations at or above
  it, each stage's share of tail time — i.e. *what the p99 is made of*.

Everything operates on the plain record dicts produced by
:func:`repro.obs.trace.tracer_records` / read back by ``read_jsonl``, so it
works identically on live tracers and on trace files from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.common.stats import SampleStats
from repro.obs.trace import STAGE_ORDER

#: Stage value strings in canonical order ("queued", ..., "responding").
STAGE_KEYS: Tuple[str, ...] = tuple(s.value for s in STAGE_ORDER)


@dataclass(frozen=True)
class InvocationPath:
    """One invocation's stage durations and dominant-stage attribution."""

    scheduler: str
    invocation_id: str
    function_id: str
    stage_ms: Mapping[str, float]
    dominant_stage: str

    @property
    def total_ms(self) -> float:
        """Response latency: the sum of all five stages."""
        return sum(self.stage_ms.values())


@dataclass
class SchedulerCriticalPath:
    """Aggregated attribution for one scheduler."""

    scheduler: str
    count: int = 0
    dominant_counts: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in STAGE_KEYS})
    mean_stage_ms: Dict[str, float] = field(
        default_factory=lambda: {k: 0.0 for k in STAGE_KEYS})
    p99_ms: float = 0.0
    tail_count: int = 0
    tail_stage_share: Dict[str, float] = field(
        default_factory=lambda: {k: 0.0 for k in STAGE_KEYS})

    def dominant_fraction(self, stage: str) -> float:
        if not self.count:
            return 0.0
        return self.dominant_counts[stage] / self.count


def attribute(records: Iterable[Mapping[str, object]]) -> List[InvocationPath]:
    """Per-invocation critical-path attribution from span records.

    Invocations appear in record order (the tracer's completion order), so
    the output is deterministic for a deterministic trace.
    """
    stage_ms: Dict[Tuple[str, str], Dict[str, float]] = {}
    function_of: Dict[Tuple[str, str], str] = {}
    order: List[Tuple[str, str]] = []
    for record in records:
        if record.get("type") != "span":
            continue
        key = (str(record.get("scheduler", "-")),
               str(record["invocation_id"]))
        if key not in stage_ms:
            stage_ms[key] = {k: 0.0 for k in STAGE_KEYS}
            function_of[key] = str(record.get("function_id", "-"))
            order.append(key)
        stage = str(record["stage"])
        duration = float(record["end_ms"]) - float(record["start_ms"])
        stage_ms[key][stage] = stage_ms[key].get(stage, 0.0) + duration
    paths: List[InvocationPath] = []
    for key in order:
        durations = stage_ms[key]
        # Ties break toward the earlier canonical stage (max is stable and
        # STAGE_KEYS seeds the dict in canonical order).
        dominant = max(durations, key=durations.get)
        paths.append(InvocationPath(
            scheduler=key[0], invocation_id=key[1],
            function_id=function_of[key],
            stage_ms=durations, dominant_stage=dominant))
    return paths


def aggregate(paths: Iterable[InvocationPath]
              ) -> Dict[str, SchedulerCriticalPath]:
    """Per-scheduler aggregation, keyed and ordered by scheduler name."""
    grouped: Dict[str, List[InvocationPath]] = {}
    for path in paths:
        grouped.setdefault(path.scheduler, []).append(path)
    out: Dict[str, SchedulerCriticalPath] = {}
    for scheduler in sorted(grouped):
        scheduler_paths = grouped[scheduler]
        summary = SchedulerCriticalPath(scheduler=scheduler,
                                        count=len(scheduler_paths))
        latencies = SampleStats()
        for path in scheduler_paths:
            summary.dominant_counts[path.dominant_stage] = \
                summary.dominant_counts.get(path.dominant_stage, 0) + 1
            for stage, duration in path.stage_ms.items():
                summary.mean_stage_ms[stage] = \
                    summary.mean_stage_ms.get(stage, 0.0) + duration
            latencies.add(path.total_ms)
        for stage in summary.mean_stage_ms:
            summary.mean_stage_ms[stage] /= summary.count
        summary.p99_ms = latencies.percentile(99.0)
        tail = [p for p in scheduler_paths
                if p.total_ms >= summary.p99_ms]
        summary.tail_count = len(tail)
        tail_total = sum(p.total_ms for p in tail)
        if tail_total > 0:
            for stage in summary.tail_stage_share:
                summary.tail_stage_share[stage] = sum(
                    p.stage_ms.get(stage, 0.0) for p in tail) / tail_total
        out[scheduler] = summary
    return out


def analyze(records: Iterable[Mapping[str, object]]
            ) -> Dict[str, SchedulerCriticalPath]:
    """``aggregate(attribute(records))`` in one call."""
    return aggregate(attribute(records))


def critical_path_table(summaries: Mapping[str, SchedulerCriticalPath]
                        ) -> Tuple[List[str], List[List[object]]]:
    """``(headers, rows)`` for :func:`repro.common.tables.render_table`.

    One row per (scheduler, stage) with the stage's mean duration, the
    fraction of invocations it dominates, and its share of p99-tail time.
    Rows follow scheduler name then canonical stage order.
    """
    headers = ["scheduler", "stage", "mean_ms", "dominates",
               "tail_share", "p99_ms"]
    rows: List[List[object]] = []
    for scheduler in sorted(summaries):
        summary = summaries[scheduler]
        for stage in STAGE_KEYS:
            rows.append([
                scheduler,
                stage,
                round(summary.mean_stage_ms.get(stage, 0.0), 3),
                f"{summary.dominant_fraction(stage):.1%}",
                f"{summary.tail_stage_share.get(stage, 0.0):.1%}",
                round(summary.p99_ms, 3),
            ])
    return headers, rows


__all__ = [
    "STAGE_KEYS",
    "InvocationPath",
    "SchedulerCriticalPath",
    "aggregate",
    "analyze",
    "attribute",
    "critical_path_table",
]
