"""Telemetry time-series: a deterministic, kernel-driven periodic sampler.

The paper samples host resources "at a frequency of once per second"
(§V-B); this module generalises that to *every* instrument the platform
publishes — warm/busy container counts, pending-queue depth, open dispatch
windows, CPU utilization, runnable cgroups, memory in use — so a run can be
rendered as utilization-over-time curves (Figs. 13/14) instead of a single
end-of-run scalar.

Purity
------
The sampler is driven by :meth:`~repro.sim.kernel.Environment.add_time_hook`
— it never schedules a timeout or creates an event, so enabling it cannot
perturb the event stream, the ``events_processed`` counter, or any simulated
result.  Time hooks run after the clock advances and before the events at
the new time are processed, so a boundary crossed in ``(old, new]`` records
the state that *held* through that interval (step-function semantics).

Bounding
--------
Each :class:`Series` holds at most ``max_points`` committed points.  On
overflow, adjacent point pairs are coalesced (first timestamp kept, values
averaged) and the effective interval doubles; later raw samples are averaged
in matching strides.  The procedure is deterministic, so two identical runs
produce byte-identical series snapshots at any length.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.sim.kernel import Environment

#: Default sampling cadence: 1 s of simulated time, matching the paper's
#: (and ``sim/machine.py``'s) once-per-second host sampling.
DEFAULT_INTERVAL_MS = 1000.0

#: Default committed-point bound per series (coalescing starts beyond it).
DEFAULT_MAX_POINTS = 512

#: A probe returns one instrument reading; called only at sample instants.
Probe = Callable[[], float]


class Series:
    """One fixed-interval, bounded time series of instrument readings."""

    def __init__(self, name: str,
                 interval_ms: float = DEFAULT_INTERVAL_MS,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms}")
        if max_points < 2 or max_points % 2:
            raise ValueError(
                f"max_points must be an even number >= 2, got {max_points}")
        self.name = name
        #: The sampler's raw cadence (never changes).
        self.base_interval_ms = float(interval_ms)
        #: The effective spacing of committed points (doubles on coalesce).
        self.interval_ms = float(interval_ms)
        self.max_points = max_points
        self._times: List[float] = []
        self._values: List[float] = []
        # Raw samples per committed point; doubles with every coalesce.
        self._stride = 1
        self._pending_time: Optional[float] = None
        self._pending_sum = 0.0
        self._pending_count = 0

    def __len__(self) -> int:
        return len(self._times) + (1 if self._pending_count else 0)

    def append(self, time_ms: float, value: float) -> None:
        """Record one raw sample (called once per sampler boundary)."""
        if self._pending_count == 0:
            self._pending_time = time_ms
        self._pending_sum += float(value)
        self._pending_count += 1
        if self._pending_count >= self._stride:
            self._commit()

    def _commit(self) -> None:
        assert self._pending_time is not None
        self._times.append(self._pending_time)
        self._values.append(self._pending_sum / self._pending_count)
        self._pending_time = None
        self._pending_sum = 0.0
        self._pending_count = 0
        if len(self._times) > self.max_points:
            self._coalesce()

    def _coalesce(self) -> None:
        """Halve resolution: average adjacent pairs, double the interval."""
        times: List[float] = []
        values: List[float] = []
        count = len(self._times)
        index = 0
        while index + 1 < count:
            times.append(self._times[index])
            values.append((self._values[index]
                           + self._values[index + 1]) / 2.0)
            index += 2
        if index < count:
            # Odd leftover point: re-open it as the pending accumulator so
            # the next raw sample pairs with it at the new stride.
            self._pending_time = self._times[index]
            self._pending_sum = self._values[index]
            self._pending_count = self._stride
        self._times = times
        self._values = values
        self._stride *= 2
        self.interval_ms *= 2.0

    def points(self) -> List[Tuple[float, float]]:
        """Committed ``(time_ms, value)`` points plus any partial tail."""
        out = list(zip(self._times, self._values))
        if self._pending_count:
            out.append((self._pending_time,
                        self._pending_sum / self._pending_count))
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-shaped record (the ``type: series`` JSONL record body)."""
        return {
            "type": "series",
            "name": self.name,
            "interval_ms": self.interval_ms,
            "base_interval_ms": self.base_interval_ms,
            "points": [[t, v] for t, v in self.points()],
        }


class TimeSeriesSampler:
    """Snapshots every registered probe at fixed simulated-time boundaries.

    Disabled by default (probes register cheaply either way); when enabled
    and installed on an environment, one sample per probe is taken at
    install time and then at every ``interval_ms`` boundary the clock
    crosses.  Installation uses a kernel *time hook*, never an event, so
    the sampler is a pure observer by construction.
    """

    def __init__(self, interval_ms: float = DEFAULT_INTERVAL_MS,
                 max_points: int = DEFAULT_MAX_POINTS,
                 enabled: bool = False) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms}")
        self.interval_ms = float(interval_ms)
        self.max_points = max_points
        self.enabled = enabled
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, Series] = {}
        self._env: Optional[Environment] = None
        self._origin_ms = 0.0
        self._next_tick = 1  # boundary index: origin + tick * interval

    def enable(self) -> "TimeSeriesSampler":
        self.enabled = True
        return self

    # -- registration ------------------------------------------------------------

    def register_probe(self, name: str, probe: Probe) -> None:
        """Register (or replace) the instrument read at every boundary.

        Re-registering a name replaces its probe but keeps the recorded
        series: a fresh platform bound to a reused bundle re-points the
        probes at its own live objects.
        """
        self._probes[name] = probe
        if name not in self._series:
            self._series[name] = Series(name, self.interval_ms,
                                        self.max_points)

    def register_gauge(self, name: str, gauge) -> None:
        """Convenience: sample a :class:`~repro.obs.metrics.Gauge`."""
        self.register_probe(name, lambda: float(gauge.value))

    # -- installation ------------------------------------------------------------

    def install(self, env: Environment) -> None:
        """Install the sampling time hook on *env* (idempotent per env).

        Installing on a *new* environment (a bundle reused across runs)
        re-anchors the boundary grid at that environment's current time and
        keeps appending to the same series — mirroring how a shared
        :class:`~repro.obs.metrics.MetricsRegistry` accumulates across runs.
        """
        if not self.enabled or self._env is env:
            return
        self._env = env
        self._origin_ms = env.now
        self._next_tick = 1
        self._sample(env.now)
        env.add_time_hook(self._on_advance)

    def _on_advance(self, _old_ms: float, new_ms: float) -> None:
        boundary = self._origin_ms + self._next_tick * self.interval_ms
        while boundary <= new_ms:
            self._sample(boundary)
            self._next_tick += 1
            boundary = self._origin_ms + self._next_tick * self.interval_ms

    def _sample(self, time_ms: float) -> None:
        for name, probe in self._probes.items():
            self._series[name].append(time_ms, float(probe()))

    # -- access ------------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(f"no series named {name!r}") from None

    def snapshot(self) -> Dict[str, object]:
        """Deterministic dump of every series, ordered by name."""
        return {name: self._series[name].to_dict()
                for name in self.names()}


def series_records(sampler: Optional[TimeSeriesSampler],
                   extra: Optional[Mapping[str, object]] = None
                   ) -> List[Dict[str, object]]:
    """``type: series`` JSONL records for every non-empty sampled series."""
    if sampler is None:
        return []
    decoration = dict(extra) if extra else {}
    out: List[Dict[str, object]] = []
    for name in sampler.names():
        series = sampler.series(name)
        if not len(series):
            continue
        record = series.to_dict()
        record.update(decoration)
        out.append(record)
    return out


def write_series_jsonl(handle, sampler: Optional[TimeSeriesSampler],
                       extra: Optional[Mapping[str, object]] = None) -> int:
    """Append one line per sampled series to an open JSONL handle."""
    written = 0
    for record in series_records(sampler, extra=extra):
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    return written


def series_from_records(records) -> List[Dict[str, object]]:
    """Filter a JSONL record stream down to the series records."""
    return [r for r in records if r.get("type") == "series"]


__all__ = [
    "DEFAULT_INTERVAL_MS",
    "DEFAULT_MAX_POINTS",
    "Series",
    "TimeSeriesSampler",
    "series_from_records",
    "series_records",
    "write_series_jsonl",
]
