"""Per-invocation span tracer: typed stages with exact start/end times.

The paper's §V analysis is built on latency *breakdowns* — scheduling vs.
cold start vs. queueing vs. execution (Figs. 11/12).  The tracer records
each invocation's journey as a contiguous sequence of typed spans:

``QUEUED → COLD_START → DISPATCHED → EXECUTING → RESPONDING``

* ``QUEUED``      arrival → scheduling complete (window wait + the
                  platform's dispatch/launch decision work; the paper's
                  *scheduling latency*, cold start already subtracted);
* ``COLD_START``  container provisioning attributed to this invocation
                  (zero-length on a warm hit);
* ``DISPATCHED``  handed to the container → execution slot granted (the
                  paper's *queuing latency*, Kraken's serial-queue penalty);
* ``EXECUTING``   handler running → completion (*execution latency*);
* ``RESPONDING``  completion → response returned to the caller (the group
                  barrier of §III-C; zero-length under early return).

Invariants (checked by :meth:`InvocationTimeline.validate`): spans are
monotone and gap-free, the first four stages sum to the invocation's
end-to-end latency and all five to its response latency, within 1e-6 ms.

The tracer also records **container events** (cold-start begin/end, batch
start, release, expiry, stale eviction) so a per-container timeline can be
reconstructed with :meth:`InvocationTracer.container_timeline`.

Tracing is purely observational: recording never creates simulation events,
so a run with tracing enabled is byte-identical to one without.
"""

from __future__ import annotations

import enum
import json
import os
import threading
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import SimulationError

#: Tolerance for the sum/contiguity invariants, in milliseconds — sized
#: for *simulated* timestamps, which replay exact event times.
TIME_TOLERANCE_MS = 1e-6

#: Tolerance for spans stamped from a real clock (the live gateway).
#: Wall timestamps are float milliseconds since the platform epoch taken
#: from a monotonic clock on multiple threads; the stage boundaries reuse
#: the same floats so timelines are still contiguous, but sums of large
#: magnitudes accumulate rounding far beyond the simulator's 1e-6 ms.
#: One microsecond absorbs that while still catching real gaps.
WALL_TIME_TOLERANCE_MS = 1e-3

#: Shared immutable empty attrs — most spans/events carry none, so a
#: per-instance dict would be pure allocation churn on the hot path.
_EMPTY_ATTRS: Mapping[str, object] = MappingProxyType({})


def _empty_attrs() -> Mapping[str, object]:
    """Default factory returning the shared proxy (no dict per instance)."""
    return _EMPTY_ATTRS


class Stage(enum.Enum):
    """Typed stages of one invocation, in canonical order."""

    QUEUED = "queued"
    COLD_START = "cold-start"
    DISPATCHED = "dispatched"
    EXECUTING = "executing"
    RESPONDING = "responding"


#: Canonical stage order; timelines must follow it without gaps.
STAGE_ORDER: Tuple[Stage, ...] = (
    Stage.QUEUED, Stage.COLD_START, Stage.DISPATCHED,
    Stage.EXECUTING, Stage.RESPONDING,
)

#: Stage → the paper's §IV latency component (RESPONDING is the group
#: barrier on top of the paper's four-way split).
STAGE_TO_COMPONENT: Dict[Stage, str] = {
    Stage.QUEUED: "scheduling",
    Stage.COLD_START: "cold_start",
    Stage.DISPATCHED: "queuing",
    Stage.EXECUTING: "execution",
    Stage.RESPONDING: "response_wait",
}


@dataclass(frozen=True, slots=True)
class Span:
    """One typed stage of one invocation, ``[start_ms, end_ms]``.

    Unit contract: ``start_ms``/``end_ms`` are float milliseconds on the
    *emitting platform's clock* — simulated time for the DES tiers
    (:mod:`repro.platformsim`, :mod:`repro.cluster`), wall-clock time
    since the platform epoch for the live gateway
    (:mod:`repro.local`).  The two are indistinguishable on the wire;
    consumers validating invariants must pick the matching tolerance
    (:data:`TIME_TOLERANCE_MS` vs :data:`WALL_TIME_TOLERANCE_MS`).
    """

    invocation_id: str
    stage: Stage
    start_ms: float
    end_ms: float
    container_id: Optional[str] = None
    attrs: Mapping[str, object] = field(default_factory=_empty_attrs)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "span",
            "invocation_id": self.invocation_id,
            "stage": self.stage.value,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
        }
        if self.container_id is not None:
            out["container_id"] = self.container_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass(frozen=True, slots=True)
class ContainerEvent:
    """One point event in a container's life (start, batch, release, ...)."""

    container_id: str
    kind: str
    time_ms: float
    attrs: Mapping[str, object] = field(default_factory=_empty_attrs)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "container-event",
            "container_id": self.container_id,
            "kind": self.kind,
            "time_ms": self.time_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass(frozen=True, slots=True)
class Annotation:
    """One free-form point event (fault injections, recovery actions).

    Faults and resilience decisions don't belong to a single invocation
    span (a crash kills many; a breaker transition belongs to a function),
    so they are recorded as typed annotations alongside the span stream.
    """

    kind: str
    time_ms: float
    attrs: Mapping[str, object] = field(default_factory=_empty_attrs)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "annotation",
            "kind": self.kind,
            "time_ms": self.time_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass(frozen=True, slots=True)
class InvocationTimeline:
    """The complete, ordered span sequence of one invocation."""

    invocation_id: str
    function_id: str
    arrival_ms: float
    spans: Tuple[Span, ...]
    failed: bool = False

    def duration_of(self, stage: Stage) -> float:
        return sum(s.duration_ms for s in self.spans if s.stage is stage)

    @property
    def responded_ms(self) -> float:
        return self.spans[-1].end_ms

    @property
    def completed_ms(self) -> float:
        """End of the EXECUTING span (start of the response wait)."""
        for span in reversed(self.spans):
            if span.stage is Stage.EXECUTING:
                return span.end_ms
        raise SimulationError(
            f"{self.invocation_id} has no EXECUTING span")

    @property
    def end_to_end_ms(self) -> float:
        """Arrival → completion (the paper's invocation latency)."""
        return self.completed_ms - self.arrival_ms

    @property
    def response_latency_ms(self) -> float:
        """Arrival → response (what the caller experiences)."""
        return self.responded_ms - self.arrival_ms

    @property
    def container_id(self) -> Optional[str]:
        for span in self.spans:
            if span.container_id is not None:
                return span.container_id
        return None

    def validate(self, tolerance_ms: float = TIME_TOLERANCE_MS) -> List[str]:
        """Return human-readable invariant violations (empty = valid)."""
        problems: List[str] = []
        if tuple(s.stage for s in self.spans) != STAGE_ORDER:
            problems.append(
                f"{self.invocation_id}: stages "
                f"{[s.stage.value for s in self.spans]} != canonical order")
            return problems
        if abs(self.spans[0].start_ms - self.arrival_ms) > tolerance_ms:
            problems.append(
                f"{self.invocation_id}: first span starts at "
                f"{self.spans[0].start_ms}, arrival was {self.arrival_ms}")
        for span in self.spans:
            if span.end_ms + tolerance_ms < span.start_ms:
                problems.append(
                    f"{self.invocation_id}: {span.stage.value} ends "
                    f"({span.end_ms}) before it starts ({span.start_ms})")
        for previous, current in zip(self.spans, self.spans[1:]):
            if abs(current.start_ms - previous.end_ms) > tolerance_ms:
                problems.append(
                    f"{self.invocation_id}: gap between "
                    f"{previous.stage.value} (ends {previous.end_ms}) and "
                    f"{current.stage.value} (starts {current.start_ms})")
        component_sum = sum(self.duration_of(stage)
                            for stage in STAGE_ORDER[:-1])
        if abs(component_sum - self.end_to_end_ms) > tolerance_ms:
            problems.append(
                f"{self.invocation_id}: stage durations sum to "
                f"{component_sum}, end-to-end latency is "
                f"{self.end_to_end_ms}")
        full_sum = component_sum + self.duration_of(Stage.RESPONDING)
        if abs(full_sum - self.response_latency_ms) > tolerance_ms:
            problems.append(
                f"{self.invocation_id}: all stages sum to {full_sum}, "
                f"response latency is {self.response_latency_ms}")
        return problems


class _OpenTrace:
    """Mutable per-invocation state while the invocation is in flight."""

    __slots__ = ("function_id", "arrival_ms", "spans", "dispatched_ms",
                 "execution_start_ms", "completed_ms", "container_id",
                 "failed")

    def __init__(self, function_id: str, arrival_ms: float) -> None:
        self.function_id = function_id
        self.arrival_ms = arrival_ms
        self.spans: List[Span] = []
        self.dispatched_ms: Optional[float] = None
        self.execution_start_ms: Optional[float] = None
        self.completed_ms: Optional[float] = None
        self.container_id: Optional[str] = None
        self.failed = False


class InvocationTracer:
    """Records typed stage transitions for every traced invocation.

    Disabled by default: every recording method returns immediately, so the
    platform can call into the tracer unconditionally.  Recording is pure
    observation — it never touches the simulation environment.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._open: Dict[str, _OpenTrace] = {}
        self._timelines: Dict[str, InvocationTimeline] = {}
        self._order: List[str] = []  # completion order, deterministic
        self.container_events: List[ContainerEvent] = []
        self.annotations: List[Annotation] = []

    def enable(self) -> "InvocationTracer":
        self.enabled = True
        return self

    def disable(self) -> "InvocationTracer":
        self.enabled = False
        return self

    # -- recording (called by platform / container / pool) ----------------------

    def invocation_arrived(self, invocation_id: str, function_id: str,
                           time_ms: float) -> None:
        """The request hit the platform; opens the QUEUED stage."""
        if not self.enabled:
            return
        if invocation_id in self._open or invocation_id in self._timelines:
            raise SimulationError(
                f"{invocation_id} arrived twice in the tracer")
        self._open[invocation_id] = _OpenTrace(function_id, time_ms)

    def invocation_dispatched(self, invocation_id: str, time_ms: float,
                              cold_start_ms: float,
                              container_id: str) -> None:
        """Handed to its container; splits QUEUED/COLD_START retroactively.

        The platform stamps dispatch *after* any cold start completes (§IV
        subtracts cold start from scheduling latency), so the boundary
        between the two spans is ``time_ms - cold_start_ms``.
        """
        if not self.enabled:
            return
        trace = self._open.get(invocation_id)
        if trace is None or trace.dispatched_ms is not None:
            return
        scheduling_end = time_ms - cold_start_ms
        trace.spans.append(Span(invocation_id, Stage.QUEUED,
                                trace.arrival_ms, scheduling_end))
        trace.spans.append(Span(invocation_id, Stage.COLD_START,
                                scheduling_end, time_ms,
                                container_id=container_id))
        trace.dispatched_ms = time_ms
        trace.container_id = container_id

    def execution_started(self, invocation_id: str, time_ms: float,
                          container_id: str) -> None:
        """The container granted an execution slot; closes DISPATCHED."""
        if not self.enabled:
            return
        trace = self._open.get(invocation_id)
        if trace is None or trace.dispatched_ms is None:
            return
        trace.spans.append(Span(invocation_id, Stage.DISPATCHED,
                                trace.dispatched_ms, time_ms,
                                container_id=container_id))
        trace.execution_start_ms = time_ms
        trace.container_id = container_id

    def execution_completed(self, invocation_id: str, time_ms: float) -> None:
        self._close_execution(invocation_id, time_ms, error=None)

    def execution_failed(self, invocation_id: str, time_ms: float,
                         error: BaseException) -> None:
        self._close_execution(invocation_id, time_ms, error=error)

    def _close_execution(self, invocation_id: str, time_ms: float,
                         error: Optional[BaseException]) -> None:
        if not self.enabled:
            return
        trace = self._open.get(invocation_id)
        if trace is None or trace.execution_start_ms is None:
            return
        attrs = _EMPTY_ATTRS if error is None \
            else {"error": type(error).__name__}
        trace.spans.append(Span(invocation_id, Stage.EXECUTING,
                                trace.execution_start_ms, time_ms,
                                container_id=trace.container_id,
                                attrs=attrs))
        trace.completed_ms = time_ms
        trace.failed = error is not None

    def invocation_responded(self, invocation_id: str,
                             time_ms: float) -> None:
        """The caller got its response; closes RESPONDING and the timeline."""
        if not self.enabled:
            return
        trace = self._open.pop(invocation_id, None)
        if trace is None or trace.completed_ms is None:
            return
        trace.spans.append(Span(invocation_id, Stage.RESPONDING,
                                trace.completed_ms, time_ms,
                                container_id=trace.container_id))
        timeline = InvocationTimeline(
            invocation_id=invocation_id,
            function_id=trace.function_id,
            arrival_ms=trace.arrival_ms,
            spans=tuple(trace.spans),
            failed=trace.failed)
        self._timelines[invocation_id] = timeline
        self._order.append(invocation_id)

    def container_event(self, container_id: str, kind: str, time_ms: float,
                        **attrs: object) -> None:
        if not self.enabled:
            return
        self.container_events.append(
            ContainerEvent(container_id, kind, time_ms, attrs))

    def annotation(self, kind: str, time_ms: float,
                   **attrs: object) -> None:
        """Record a point event outside any single invocation's timeline."""
        if not self.enabled:
            return
        self.annotations.append(Annotation(kind, time_ms, attrs))

    # -- reconstruction ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._timelines)

    @property
    def open_count(self) -> int:
        """Invocations arrived but not yet responded (0 after a clean run)."""
        return len(self._open)

    def timeline(self, invocation_id: str) -> InvocationTimeline:
        timeline = self._timelines.get(invocation_id)
        if timeline is None:
            raise KeyError(f"no completed timeline for {invocation_id!r}")
        return timeline

    def timelines(self) -> List[InvocationTimeline]:
        """All completed timelines, in completion order (deterministic)."""
        return [self._timelines[i] for i in self._order]

    def spans(self) -> List[Span]:
        return [span for timeline in self.timelines()
                for span in timeline.spans]

    def container_timeline(self, container_id: str
                           ) -> List[Tuple[float, str, object]]:
        """Merged ``(time_ms, kind, payload)`` view of one container's life.

        Interleaves the container's point events with the execution spans it
        served, ordered by time (events before spans at equal times, then
        insertion order — deterministic).
        """
        entries: List[Tuple[float, int, int, str, object]] = []
        for index, event in enumerate(self.container_events):
            if event.container_id == container_id:
                entries.append((event.time_ms, 0, index, event.kind, event))
        for index, span in enumerate(self.spans()):
            if span.container_id == container_id \
                    and span.stage is Stage.EXECUTING:
                entries.append((span.start_ms, 1, index,
                                f"span:{span.stage.value}", span))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return [(time_ms, kind, payload)
                for time_ms, _group, _index, kind, payload in entries]

    def validate_all(self,
                     tolerance_ms: float = TIME_TOLERANCE_MS) -> List[str]:
        """Invariant violations across every completed, successful timeline."""
        problems: List[str] = []
        for timeline in self.timelines():
            if timeline.failed:
                continue
            problems.extend(timeline.validate(tolerance_ms))
        return problems

    # -- export ------------------------------------------------------------------

    def to_jsonl(self, path, extra: Optional[Mapping[str, object]] = None
                 ) -> int:
        """Write spans + container events as JSON Lines; returns line count."""
        written = 0
        with open(path, "w") as handle:
            written += write_jsonl(handle, self, extra=extra)
        return written


def tracer_records(tracer: InvocationTracer,
                   extra: Optional[Mapping[str, object]] = None
                   ) -> List[Dict[str, object]]:
    """*tracer*'s span/event/annotation records as plain dicts.

    Spans carry their timeline's ``function_id``; every record is decorated
    with *extra* (e.g. ``{"scheduler": name}``).  This is the in-memory
    form that :func:`write_jsonl` serialises and the export/report layers
    consume directly.
    """
    decoration = dict(extra) if extra else {}
    records: List[Dict[str, object]] = []
    for timeline in tracer.timelines():
        for span in timeline.spans:
            record = span.to_dict()
            record["function_id"] = timeline.function_id
            record.update(decoration)
            records.append(record)
    for event in tracer.container_events:
        record = event.to_dict()
        record.update(decoration)
        records.append(record)
    for annotation in tracer.annotations:
        record = annotation.to_dict()
        record.update(decoration)
        records.append(record)
    return records


def write_jsonl(handle, tracer: InvocationTracer,
                extra: Optional[Mapping[str, object]] = None) -> int:
    """Append *tracer*'s records to an open file handle (one JSON per line)."""
    written = 0
    for record in tracer_records(tracer, extra=extra):
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    return written


def load_jsonl(path) -> Tuple[List[Dict[str, object]], int]:
    """Load JSONL records, tolerating a truncated *trailing* line.

    A run killed mid-write leaves a partial final line; provided at least
    one record parsed before it, that tail is skipped and counted in the
    returned ``(records, skipped)`` pair.  A malformed line anywhere else —
    or a file whose only content is unparseable — raises ``ValueError``
    with the offending line number.
    """
    lines: List[Tuple[int, str]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((number, line))
    records: List[Dict[str, object]] = []
    for index, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as error:
            if index == len(lines) - 1 and records:
                return records, 1
            raise ValueError(
                f"{path}:{number}: malformed JSONL record: {error}"
            ) from None
    return records, 0


def read_jsonl(path) -> List[Dict[str, object]]:
    """Load every record written by :func:`write_jsonl` (blank lines skipped).

    Truncated trailing lines are tolerated (see :func:`load_jsonl`); use
    :func:`load_jsonl` directly to learn whether a tail was dropped.
    """
    return load_jsonl(path)[0]


def span_records(records: Iterable[Mapping[str, object]]
                 ) -> List[Mapping[str, object]]:
    """Filter a JSONL record stream down to the span records."""
    return [r for r in records if r.get("type") == "span"]


def annotation_records(records: Iterable[Mapping[str, object]]
                       ) -> List[Mapping[str, object]]:
    """Filter a JSONL record stream down to fault/recovery annotations."""
    return [r for r in records if r.get("type") == "annotation"]


#: Default rotation threshold for live trace files (bytes).
DEFAULT_TRACE_MAX_BYTES = 32 * 1024 * 1024

#: Rotated generations kept next to the live file (`.1` newest).
DEFAULT_TRACE_BACKUPS = 3


class RotatingJsonlWriter:
    """Size-rotated JSON Lines writer for live trace streaming.

    Records append to *path*; when the file would exceed ``max_bytes``
    it is rotated to ``path.1`` (existing generations shift up, the
    oldest beyond ``backups`` is dropped) and a fresh file is opened.
    Each generation is a self-contained JSONL file, so
    :func:`load_jsonl` / ``repro trace summarize`` work on any of them.
    Lines are flushed as written — a crash loses at most the partial
    trailing line :func:`load_jsonl` already tolerates.
    """

    def __init__(self, path,
                 max_bytes: int = DEFAULT_TRACE_MAX_BYTES,
                 backups: int = DEFAULT_TRACE_BACKUPS) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.lines_written = 0
        self.rotations = 0
        self._handle = open(self.path, "w")
        self._size = 0

    def write(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        encoded = len(line.encode("utf-8"))
        if self._size and self._size + encoded > self.max_bytes:
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._size += encoded
        self.lines_written += 1

    def _rotate(self) -> None:
        self._handle.close()
        if self.backups == 0:
            pass  # the live file is simply truncated on reopen
        else:
            for index in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "w")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class TraceStreamer:
    """Incrementally drains a live tracer into a JSONL writer.

    The tracer's completed-timeline list, container-event list and
    annotation list are append-only, so each :meth:`poll` writes exactly
    the records that appeared since the previous poll.  The gateway's
    platform publishes timelines from worker threads under its obs lock;
    pass that lock so polls snapshot a consistent prefix.
    """

    def __init__(self, tracer: InvocationTracer, writer: RotatingJsonlWriter,
                 extra: Optional[Mapping[str, object]] = None,
                 lock: Optional[threading.Lock] = None) -> None:
        self.tracer = tracer
        self.writer = writer
        self._extra = dict(extra) if extra else {}
        self._lock = lock if lock is not None else threading.Lock()
        self._timelines_seen = 0
        self._events_seen = 0
        self._annotations_seen = 0

    def poll(self) -> int:
        """Stream everything newly completed; returns records written."""
        with self._lock:
            timelines = self.tracer.timelines()[self._timelines_seen:]
            events = self.tracer.container_events[self._events_seen:]
            annotations = self.tracer.annotations[self._annotations_seen:]
            self._timelines_seen += len(timelines)
            self._events_seen += len(events)
            self._annotations_seen += len(annotations)
        written = 0
        for timeline in timelines:
            for span in timeline.spans:
                record = span.to_dict()
                record["function_id"] = timeline.function_id
                record.update(self._extra)
                self.writer.write(record)
                written += 1
        for event in events:
            record = event.to_dict()
            record.update(self._extra)
            self.writer.write(record)
            written += 1
        for annotation in annotations:
            record = annotation.to_dict()
            record.update(self._extra)
            self.writer.write(record)
            written += 1
        return written

    def close(self) -> int:
        """Final drain, then close the underlying writer."""
        written = self.poll()
        self.writer.close()
        return written
