"""Metrics registry: counters, gauges and deterministically-bucketed histograms.

Every layer of the platform publishes into one :class:`MetricsRegistry` —
the pool its hit/miss/expiry accounting, the docker facade its container
churn, the schedulers their window and batch shapes, the platform its
decision counts and latency distributions.  The registry is *observational*:
recording a sample never creates simulation events, so enabling metrics can
never change a simulated result.

Determinism
-----------
Histogram buckets are fixed at construction (default: a 1-2-5 decade series
in milliseconds), so two identical runs produce byte-identical snapshots and
snapshots are safe to diff in tests and pinned artefacts.  ``snapshot()``
orders everything by metric name.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.streaming import TelemetrySnapshot

#: Default histogram edges: a 1-2-5 decade ladder from 1 ms to 5 minutes.
#: Chosen once and fixed so breakdown histograms are comparable across runs.
DEFAULT_LATENCY_EDGES_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    100_000.0, 200_000.0, 300_000.0,
)

#: Small-integer edges for size-shaped metrics (batch sizes, group counts).
DEFAULT_SIZE_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0, 144.0,
)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc({amount}))")
        self.value += amount


class Gauge:
    """A value that can move in both directions (e.g. idle containers)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class ClockGauge(Gauge):
    """A gauge whose value reads a live clock instead of a stored float.

    Used for ``sim.time_ms``: ``value`` reads ``clock.now`` at snapshot
    time, which replaces the per-advance kernel time hook the registry
    used to install (a callback on every clock advance of every run).
    Writes via ``set``/``inc``/``dec`` are ignored — the clock is the
    single source of truth.
    """

    def __init__(self, name: str, clock) -> None:
        self.name = name
        #: Any object with a ``now`` attribute (duck-typed so this module
        #: needs no kernel import); rebindable when a bundle is reused.
        self.clock = clock

    @property
    def value(self) -> float:
        return self.clock.now

    @value.setter
    def value(self, _value: float) -> None:
        pass


class Histogram:
    """Fixed-bucket histogram with half-open buckets ``[edge_i, edge_i+1)``.

    Samples below the first edge land in an underflow bucket; samples at or
    above the last edge land in the unbounded tail.  Tracks count/sum/min/max
    exactly, so means are not subject to bucketing error.
    """

    def __init__(self, name: str,
                 edges: Sequence[float] = DEFAULT_LATENCY_EDGES_MS) -> None:
        if len(edges) < 2:
            raise ValueError(f"histogram {name} needs at least two edges")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name} edges must be "
                             "strictly increasing")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        #: counts[0] is the underflow bucket; counts[-1] the unbounded tail.
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile with exact and interpolated edges.

        Behaviour, in order:

        * ``q`` outside [0, 1] raises ``ValueError`` (never clamped); an
          empty histogram raises too;
        * ``q == 0.0`` returns the exact observed minimum and ``q == 1.0``
          the exact observed maximum (tracked per sample, so the extremes
          are not subject to bucketing error);
        * a quantile landing in an *interior* bucket returns that bucket's
          upper edge — deterministic and conservative (rounds up to a
          boundary);
        * a quantile landing in the **underflow** bucket (below the first
          edge) or the **unbounded tail** (at/above the last edge)
          interpolates linearly between the observed extreme and the
          adjacent finite edge, since those buckets have no finite far
          boundary to round to.

        Exact per-sample quantiles belong to :class:`~repro.common.stats`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if running + bucket_count >= target:
                fraction = (target - running) / bucket_count
                if index == 0:
                    lo = self.min
                    hi = min(self.edges[0], self.max)
                    return lo + fraction * (hi - lo)
                if index <= len(self.edges) - 1:
                    return self.edges[index]
                lo = max(self.edges[-1], self.min)
                return lo + fraction * (self.max - lo)
            running += bucket_count
        return self.max

    def bucket_rows(self) -> List[Tuple[str, int]]:
        """``(label, count)`` per non-empty bucket, for reports."""
        rows: List[Tuple[str, int]] = []
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if index == 0:
                label = f"(-inf, {self.edges[0]:g})"
            elif index <= len(self.edges) - 1:
                label = f"[{self.edges[index - 1]:g}, {self.edges[index]:g})"
            else:
                label = f"[{self.edges[-1]:g}, inf)"
            rows.append((label, bucket_count))
        return rows


Metric = Union[Counter, Gauge, Histogram]


@dataclass(frozen=True)
class MetricRow:
    """One row of the registry's tabular snapshot."""

    name: str
    kind: str
    value: float


class MetricsRegistry:
    """Create-or-get registry of named metrics.

    Names are dot-namespaced by the publishing layer (``pool.warm_hits``,
    ``docker.containers_created``, ``faasbatch.group_size``).  Re-requesting
    a name returns the existing metric; re-requesting it as a different
    *type* is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _check(self, existing: Metric, name: str, kind: type) -> None:
        if not isinstance(existing, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, requested {kind.__name__}")

    # The create-or-get accessors inline their fast path (no factory
    # closure allocated per call — these run inside the simulation loop).

    def counter(self, name: str) -> Counter:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, name, Counter)
            return existing
        metric = Counter(name)
        self._metrics[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, name, Gauge)
            return existing
        metric = Gauge(name)
        self._metrics[name] = metric
        return metric

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_LATENCY_EDGES_MS
                  ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, name, Histogram)
            return existing
        metric = Histogram(name, edges)
        self._metrics[name] = metric
        return metric

    def install(self, metric: Metric) -> Metric:
        """Register (or replace) a pre-built metric under its own name.

        The escape hatch for specialised subclasses such as
        :class:`ClockGauge`, which the create-or-get factories cannot
        build.
        """
        self._metrics[metric.name] = metric
        return metric

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-serialisable dump of every metric."""
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min,
                    "max": metric.max,
                    "buckets": metric.bucket_rows(),
                }
            else:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                out[name] = {"type": kind, "value": metric.value}
        return out

    def rows(self) -> List[MetricRow]:
        """Scalar table rows (histograms reduce to their count and mean)."""
        rows: List[MetricRow] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                rows.append(MetricRow(f"{name}.count", "histogram",
                                      float(metric.count)))
                if metric.count:
                    rows.append(MetricRow(f"{name}.mean", "histogram",
                                          metric.mean))
            else:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                rows.append(MetricRow(name, kind, metric.value))
        return rows

    def merge_rows(self) -> List[List[object]]:
        """``[name, kind, value]`` rows for :func:`repro.common.tables`."""
        return [[r.name, r.kind, round(r.value, 4)] for r in self.rows()]


def telemetry_snapshot(registry: MetricsRegistry) -> TelemetrySnapshot:
    """Reduce a live registry to a mergeable :class:`TelemetrySnapshot`.

    The three scalar kinds land in separate maps because they merge
    differently across shards: counters and plain gauges sum, while
    :class:`ClockGauge` readings take the max (each shard's clock stops
    at its own completion time).  Histogram state is copied
    bucket-for-bucket — full fidelity, not the labelled ``bucket_rows()``
    digest — so merged buckets stay integer-exact.
    """
    snap = TelemetrySnapshot()
    for name in registry.names():
        metric = registry._metrics[name]
        if isinstance(metric, Histogram):
            snap.histograms[name] = {
                "edges": list(metric.edges),
                "counts": list(metric.counts),
                "count": metric.count,
                "sum": metric.sum,
                "min": metric.min,
                "max": metric.max,
            }
        elif isinstance(metric, Counter):
            snap.counters[name] = metric.value
        elif isinstance(metric, ClockGauge):
            snap.clocks[name] = metric.value
        else:
            snap.gauges[name] = metric.value
    return snap
