"""Observability: per-invocation span tracing and a platform metrics registry.

One :class:`Observability` object travels with a platform instance and is
the single publishing point for every layer:

* :class:`~repro.obs.trace.InvocationTracer` — typed per-invocation stage
  spans (queued → cold-start → dispatched → executing → responding),
  reconstructable into per-invocation and per-container timelines;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  deterministically-bucketed histograms published by the platform, the
  warm pool, the docker facade and all four schedulers.

Both are pure observers: they never create simulation events, so enabling
them cannot change a simulated result (the determinism tests assert this).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES_MS,
    DEFAULT_SIZE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    STAGE_ORDER,
    STAGE_TO_COMPONENT,
    TIME_TOLERANCE_MS,
    ContainerEvent,
    InvocationTimeline,
    InvocationTracer,
    Span,
    Stage,
    read_jsonl,
    span_records,
    write_jsonl,
)
from repro.sim.kernel import Environment


class Observability:
    """Tracer + metrics bundle handed to a :class:`ServerlessPlatform`.

    ``tracing`` controls the span tracer (off by default — full-scale runs
    produce hundreds of thousands of spans); metrics are always on, they
    are a handful of counters per event.
    """

    def __init__(self, tracing: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[InvocationTracer] = None) -> None:
        self.tracer = tracer if tracer is not None \
            else InvocationTracer(enabled=tracing)
        if tracing:
            self.tracer.enable()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._bound_env: Optional[Environment] = None

    def bind(self, env: Environment) -> None:
        """Install the monotonic-time hook on *env* (idempotent per env).

        The hook maintains the ``sim.time_ms`` gauge so metric snapshots
        carry the simulated-time high-water mark; it performs no
        simulation work of its own.
        """
        if self._bound_env is env:
            return
        self._bound_env = env
        gauge = self.metrics.gauge("sim.time_ms")
        gauge.set(env.now)
        env.add_time_hook(lambda _old, new: gauge.set(new))


__all__ = [
    "ContainerEvent",
    "Counter",
    "DEFAULT_LATENCY_EDGES_MS",
    "DEFAULT_SIZE_EDGES",
    "Gauge",
    "Histogram",
    "InvocationTimeline",
    "InvocationTracer",
    "MetricsRegistry",
    "Observability",
    "STAGE_ORDER",
    "STAGE_TO_COMPONENT",
    "Span",
    "Stage",
    "TIME_TOLERANCE_MS",
    "read_jsonl",
    "span_records",
    "write_jsonl",
]
