"""Observability: span tracing, metrics, and telemetry time-series.

One :class:`Observability` object travels with a platform instance and is
the single publishing point for every layer:

* :class:`~repro.obs.trace.InvocationTracer` — typed per-invocation stage
  spans (queued → cold-start → dispatched → executing → responding),
  reconstructable into per-invocation and per-container timelines;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  deterministically-bucketed histograms published by the platform, the
  warm pool, the docker facade and all four schedulers;
* :class:`~repro.obs.timeseries.TimeSeriesSampler` — a kernel-driven 1 Hz
  sampler turning registered instruments (queue depth, container counts,
  CPU utilization, memory) into bounded fixed-interval series.

All three are pure observers: they never create simulation events, so
enabling them cannot change a simulated result (the determinism tests
assert this).  Downstream, the sampled/traced run feeds the export layer:
:mod:`repro.obs.export` (Perfetto/Chrome trace-event JSON),
:mod:`repro.obs.critical_path` (dominant-stage attribution) and
:mod:`repro.obs.report` (self-contained HTML comparison report).
"""

from __future__ import annotations

from typing import Optional

from repro.common.streaming import TelemetrySnapshot
from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES_MS,
    DEFAULT_SIZE_EDGES,
    ClockGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    telemetry_snapshot,
)
from repro.obs.timeseries import (
    DEFAULT_INTERVAL_MS,
    Series,
    TimeSeriesSampler,
    series_from_records,
    series_records,
    write_series_jsonl,
)
from repro.obs.prom import (
    render_gateway_stats,
    render_registry,
    render_snapshot,
)
from repro.obs.trace import (
    STAGE_ORDER,
    STAGE_TO_COMPONENT,
    TIME_TOLERANCE_MS,
    WALL_TIME_TOLERANCE_MS,
    ContainerEvent,
    InvocationTimeline,
    InvocationTracer,
    RotatingJsonlWriter,
    Span,
    Stage,
    TraceStreamer,
    load_jsonl,
    read_jsonl,
    span_records,
    tracer_records,
    write_jsonl,
)
from repro.sim.kernel import Environment


class Observability:
    """Tracer + metrics + sampler bundle handed to a platform instance.

    ``tracing`` controls the span tracer and ``sampling`` the time-series
    sampler (both off by default — full-scale runs produce hundreds of
    thousands of spans); metrics are always on, they are a handful of
    counters per event.
    """

    def __init__(self, tracing: bool = False,
                 sampling: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[InvocationTracer] = None,
                 sampler: Optional[TimeSeriesSampler] = None,
                 sample_interval_ms: float = DEFAULT_INTERVAL_MS) -> None:
        self.tracer = tracer if tracer is not None \
            else InvocationTracer(enabled=tracing)
        if tracing:
            self.tracer.enable()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sampler = sampler if sampler is not None \
            else TimeSeriesSampler(interval_ms=sample_interval_ms,
                                   enabled=sampling)
        if sampling:
            self.sampler.enable()
        self._bound_env: Optional[Environment] = None

    def bind(self, env: Environment) -> None:
        """Attach *env* as the bundle's clock source (idempotent per env).

        ``sim.time_ms`` is a :class:`ClockGauge` reading ``env.now`` live
        at snapshot time, so the metrics registry installs **no** kernel
        time hook and adds zero per-event cost (it used to hook every
        clock advance).  The sampler, when enabled, installs its own
        boundary-sampling hook; neither performs any simulation work.
        """
        if self._bound_env is env:
            return
        self._bound_env = env
        gauge = self.metrics.get("sim.time_ms")
        if isinstance(gauge, ClockGauge):
            gauge.clock = env
        else:
            self.metrics.install(ClockGauge("sim.time_ms", env))
        self.sampler.install(env)

    def telemetry(self) -> TelemetrySnapshot:
        """The bundle's mergeable telemetry digest (metrics + series).

        This is what a cluster shard ships to the coordinator: the full
        registry state via :func:`repro.obs.metrics.telemetry_snapshot`
        plus any sampled time-series.  Span traces are *not* included —
        they are unbounded, which is exactly what the bounded-accounting
        contract forbids.
        """
        snap = telemetry_snapshot(self.metrics)
        for name in self.sampler.names():
            record = self.sampler.series(name).to_dict()
            if record["points"]:  # registered-but-unsampled probes are noise
                snap.series[name] = record
        return snap


__all__ = [
    "ClockGauge",
    "ContainerEvent",
    "Counter",
    "DEFAULT_INTERVAL_MS",
    "DEFAULT_LATENCY_EDGES_MS",
    "DEFAULT_SIZE_EDGES",
    "Gauge",
    "Histogram",
    "InvocationTimeline",
    "InvocationTracer",
    "MetricsRegistry",
    "Observability",
    "RotatingJsonlWriter",
    "STAGE_ORDER",
    "STAGE_TO_COMPONENT",
    "Series",
    "Span",
    "Stage",
    "TIME_TOLERANCE_MS",
    "TelemetrySnapshot",
    "TimeSeriesSampler",
    "TraceStreamer",
    "WALL_TIME_TOLERANCE_MS",
    "telemetry_snapshot",
    "load_jsonl",
    "read_jsonl",
    "render_gateway_stats",
    "render_registry",
    "render_snapshot",
    "series_from_records",
    "series_records",
    "span_records",
    "tracer_records",
    "write_jsonl",
    "write_series_jsonl",
]
