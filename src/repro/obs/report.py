"""Self-contained HTML comparison report with inline SVG charts.

``python -m repro report`` renders one static HTML file comparing the four
schedulers on a shared workload.  Everything is inlined — hand-rolled SVG,
a small embedded stylesheet, no third-party JS/CSS, no external fetches —
so the file can be archived next to ``BENCH_sim.json`` and opened years
later.  All floats are formatted with fixed precision and every series is
iterated in sorted order, so a fixed seed produces a byte-identical report.

Charts (one ``<svg>`` element each):

1. **CPU utilization over time** per scheduler (sampled series);
2. **response-latency CDFs** (the report's version of the paper's Fig. 11);
3. **stacked mean stage-breakdown bars** — the same aggregation the
   ``trace critical-path`` table prints, rendered as Fig. 12-style bars;
4. **live-container timeline** per scheduler (sampled series).

The module consumes the plain record dicts of
:func:`repro.obs.trace.tracer_records` + :func:`repro.obs.timeseries.series_records`,
so it renders identically from a live run or a trace file on disk.
"""

from __future__ import annotations

import html
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.cdf import EmpiricalCdf
from repro.obs.critical_path import STAGE_KEYS, analyze

#: Fixed colour palette; index is the scheduler's (or stage's) sorted rank.
PALETTE: Tuple[str, ...] = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#9c755f",
)

#: Chart canvas geometry (pixels).
_WIDTH, _HEIGHT = 640, 300
_MARGIN_LEFT, _MARGIN_RIGHT = 62, 16
_MARGIN_TOP, _MARGIN_BOTTOM = 18, 46

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em auto;
       max-width: 720px; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
figure { margin: 0 0 1.5em 0; }
figcaption { font-size: 0.85em; color: #555; margin-top: 0.3em; }
table { border-collapse: collapse; font-size: 0.85em; }
td, th { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f2f2f2; } td:first-child, th:first-child { text-align: left; }
svg { background: #fff; border: 1px solid #ddd; }
"""


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def _color(index: int) -> str:
    return PALETTE[index % len(PALETTE)]


class _Scale:
    """Linear data→pixel mapping for one axis of the chart canvas."""

    def __init__(self, lo: float, hi: float, out_lo: float,
                 out_hi: float) -> None:
        self.lo, self.hi = lo, hi
        self.out_lo, self.out_hi = out_lo, out_hi
        self._span = (hi - lo) or 1.0

    def __call__(self, value: float) -> float:
        frac = (value - self.lo) / self._span
        return self.out_lo + frac * (self.out_hi - self.out_lo)

    def ticks(self, count: int = 5) -> List[float]:
        return [self.lo + i * (self.hi - self.lo) / count
                for i in range(count + 1)]


def _axes(x: _Scale, y: _Scale, x_label: str, y_label: str) -> List[str]:
    parts = [
        f'<line x1="{_fmt(x.out_lo)}" y1="{_fmt(y.out_lo)}" '
        f'x2="{_fmt(x.out_hi)}" y2="{_fmt(y.out_lo)}" stroke="#999"/>',
        f'<line x1="{_fmt(x.out_lo)}" y1="{_fmt(y.out_lo)}" '
        f'x2="{_fmt(x.out_lo)}" y2="{_fmt(y.out_hi)}" stroke="#999"/>',
    ]
    for tick in x.ticks():
        px = x(tick)
        parts.append(
            f'<line x1="{_fmt(px)}" y1="{_fmt(y.out_lo)}" x2="{_fmt(px)}" '
            f'y2="{_fmt(y.out_lo + 4)}" stroke="#999"/>')
        parts.append(
            f'<text x="{_fmt(px)}" y="{_fmt(y.out_lo + 17)}" '
            f'font-size="10" text-anchor="middle" fill="#555">'
            f'{tick:g}</text>')
    for tick in y.ticks(4):
        py = y(tick)
        parts.append(
            f'<line x1="{_fmt(x.out_lo - 4)}" y1="{_fmt(py)}" '
            f'x2="{_fmt(x.out_lo)}" y2="{_fmt(py)}" stroke="#999"/>')
        parts.append(
            f'<text x="{_fmt(x.out_lo - 7)}" y="{_fmt(py + 3)}" '
            f'font-size="10" text-anchor="end" fill="#555">{tick:g}</text>')
    parts.append(
        f'<text x="{_fmt((x.out_lo + x.out_hi) / 2)}" '
        f'y="{_fmt(y.out_lo + 34)}" font-size="11" text-anchor="middle" '
        f'fill="#333">{html.escape(x_label)}</text>')
    parts.append(
        f'<text x="14" y="{_fmt((y.out_lo + y.out_hi) / 2)}" font-size="11" '
        f'text-anchor="middle" fill="#333" transform="rotate(-90 14 '
        f'{_fmt((y.out_lo + y.out_hi) / 2)})">{html.escape(y_label)}</text>')
    return parts


def _legend(labels: Sequence[str], x: float, y: float) -> List[str]:
    parts = []
    for index, label in enumerate(labels):
        py = y + index * 14
        parts.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(py - 8)}" width="10" height="10" '
            f'fill="{_color(index)}"/>')
        parts.append(
            f'<text x="{_fmt(x + 14)}" y="{_fmt(py + 1)}" font-size="10" '
            f'fill="#333">{html.escape(label)}</text>')
    return parts


def _svg(parts: Iterable[str]) -> str:
    body = "\n".join(parts)
    return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
            f'role="img">\n{body}\n</svg>')


def line_chart(series: Mapping[str, Sequence[Tuple[float, float]]],
               x_label: str, y_label: str,
               y_floor: Optional[float] = 0.0) -> str:
    """Multi-line chart; one polyline per (sorted) series key."""
    labels = sorted(series)
    points = [p for label in labels for p in series[label]]
    if not points:
        return _svg(['<text x="320" y="150" text-anchor="middle" '
                     'font-size="12" fill="#777">no data</text>'])
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    y_lo = min(ys) if y_floor is None else min(y_floor, min(ys))
    y_hi = max(ys) if max(ys) > y_lo else y_lo + 1.0
    x = _Scale(min(xs), max(xs) if max(xs) > min(xs) else min(xs) + 1.0,
               _MARGIN_LEFT, _WIDTH - _MARGIN_RIGHT)
    y = _Scale(y_lo, y_hi, _HEIGHT - _MARGIN_BOTTOM, _MARGIN_TOP)
    parts = _axes(x, y, x_label, y_label)
    for index, label in enumerate(labels):
        coords = " ".join(f"{_fmt(x(px))},{_fmt(y(py))}"
                          for px, py in series[label])
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{_color(index)}" stroke-width="1.5"/>')
    parts.extend(_legend(labels, _MARGIN_LEFT + 8, _MARGIN_TOP + 10))
    return _svg(parts)


def stacked_bar_chart(bars: Mapping[str, Mapping[str, float]],
                      segment_order: Sequence[str],
                      y_label: str) -> str:
    """One stacked bar per (sorted) key, segments in *segment_order*."""
    labels = sorted(bars)
    if not labels:
        return _svg(['<text x="320" y="150" text-anchor="middle" '
                     'font-size="12" fill="#777">no data</text>'])
    totals = [sum(bars[label].values()) for label in labels]
    y = _Scale(0.0, max(totals) or 1.0, _HEIGHT - _MARGIN_BOTTOM,
               _MARGIN_TOP)
    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT - 110
    slot = plot_width / len(labels)
    bar_width = slot * 0.6
    parts = _axes(
        _Scale(0.0, float(len(labels)), _MARGIN_LEFT,
               _MARGIN_LEFT + plot_width),
        y, "", y_label)
    for bar_index, label in enumerate(labels):
        px = _MARGIN_LEFT + bar_index * slot + (slot - bar_width) / 2
        base = 0.0
        for segment_index, segment in enumerate(segment_order):
            value = bars[label].get(segment, 0.0)
            if value <= 0:
                continue
            top = y(base + value)
            height = y(base) - top
            parts.append(
                f'<rect x="{_fmt(px)}" y="{_fmt(top)}" '
                f'width="{_fmt(bar_width)}" height="{_fmt(height)}" '
                f'fill="{_color(segment_index)}">'
                f'<title>{html.escape(f"{label} {segment}: {value:.3f}")}'
                f'</title></rect>')
            base += value
        parts.append(
            f'<text x="{_fmt(px + bar_width / 2)}" '
            f'y="{_fmt(_HEIGHT - _MARGIN_BOTTOM + 17)}" font-size="10" '
            f'text-anchor="middle" fill="#333">{html.escape(label)}</text>')
    parts.extend(_legend(list(segment_order),
                         _WIDTH - _MARGIN_RIGHT - 96, _MARGIN_TOP + 10))
    return _svg(parts)


# -- record plumbing -------------------------------------------------------------


def _series_points(records: Iterable[Mapping[str, object]], name: str
                   ) -> Dict[str, List[Tuple[float, float]]]:
    """``scheduler -> [(seconds, value), ...]`` for one series name."""
    out: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        if record.get("type") != "series" or record.get("name") != name:
            continue
        scheduler = str(record.get("scheduler", "-"))
        out[scheduler] = [(float(t) / 1000.0, float(v))
                          for t, v in record.get("points", [])]
    return out


def _latency_cdfs(records: Iterable[Mapping[str, object]]
                  ) -> Dict[str, List[Tuple[float, float]]]:
    """Response-latency CDF step series per scheduler, from span records."""
    latencies: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        scheduler = str(record.get("scheduler", "-"))
        invocation = str(record["invocation_id"])
        per = latencies.setdefault(scheduler, {})
        per.setdefault(invocation, []).append(
            float(record["end_ms"]) - float(record["start_ms"]))
    out: Dict[str, List[Tuple[float, float]]] = {}
    for scheduler, per_invocation in latencies.items():
        totals = [sum(stages) for stages in per_invocation.values()]
        cdf = EmpiricalCdf(totals)
        out[scheduler] = [(point.x, point.probability)
                          for point in cdf.series(min(100, len(totals)))
                          ] if len(totals) >= 2 else [(totals[0], 1.0)]
    return out


def _gateway_cdfs(records: Iterable[Mapping[str, object]]
                  ) -> Dict[str, List[Tuple[float, float]]]:
    """Per-policy latency CDFs from ``gateway-cdf`` records."""
    out: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        if record.get("type") != "gateway-cdf":
            continue
        policy = str(record.get("policy", "-"))
        out[policy] = [(float(ms), float(frac))
                       for ms, frac in record.get("points", [])]
    return out


def _gateway_series(records: Iterable[Mapping[str, object]], name: str
                    ) -> Dict[str, List[Tuple[float, float]]]:
    """``policy -> [(seconds, value), ...]`` for one gateway series."""
    out: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        if record.get("type") != "gateway-series" \
                or record.get("name") != name:
            continue
        policy = str(record.get("policy", "-"))
        out[policy] = [(float(t), float(v))
                       for t, v in record.get("points", [])]
    return out


def _render_gateway_section(records: Sequence[Mapping[str, object]]) -> str:
    """The live-gateway panel, or ``""`` when no gateway records exist.

    Returning the empty string keeps simulation-only reports byte-
    identical to the pre-gateway renderer.
    """
    cells = [record["cell"] for record in records
             if record.get("type") == "gateway-cell"
             and isinstance(record.get("cell"), dict)]
    flips = [record for record in records
             if record.get("type") == "gateway-flip"]
    cdfs = _gateway_cdfs(records)
    goodput = _gateway_series(records, "goodput_rps")
    if not cells and not cdfs and not goodput:
        return ""
    rows = []
    for cell in sorted(cells, key=lambda c: str(c.get("cell"))):
        latency = cell.get("latency_ms", {})
        rows.append(
            f"<tr><td>{html.escape(str(cell.get('cell')))}</td>"
            f"<td>{html.escape(str(cell.get('policy')))}</td>"
            f"<td>{html.escape(str(cell.get('transport')))}</td>"
            f"<td>{cell.get('offered_rps', 0):g}</td>"
            f"<td>{cell.get('goodput_rps', 0):g}</td>"
            f"<td>{float(cell.get('goodput_ratio', 0.0)):.1%}</td>"
            f"<td>{float(latency.get('p50', 0.0)):.1f}</td>"
            f"<td>{float(latency.get('p99', 0.0)):.1f}</td>"
            f"<td>{cell.get('shed', 0)}</td>"
            f"<td>{len(cell.get('mode_flips', []))}</td></tr>")
    table = (
        "<table><thead><tr><th>cell</th><th>policy</th><th>transport</th>"
        "<th>offered rps</th><th>goodput rps</th><th>goodput</th>"
        "<th>p50 ms</th><th>p99 ms</th><th>shed</th><th>flips</th>"
        "</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        if rows else "<p>No gateway-cell records in input.</p>")
    parts = ["<h2>Live gateway</h2>", table]
    if flips:
        flip_items = "".join(
            f"<li>{html.escape(str(flip.get('policy')))}: "
            f"{html.escape(str(flip.get('from')))} → "
            f"{html.escape(str(flip.get('to')))} "
            f"at request #{flip.get('seq')}</li>"
            for flip in flips)
        parts.append("<p>Degradation-monitor flips:</p>"
                     f"<ul>{flip_items}</ul>")
    charts: List[Tuple[str, str, str]] = []
    if cdfs:
        charts.append(
            ("chart-gateway-cdf", "Gateway response-latency CDF by policy",
             line_chart(cdfs, "latency (ms)", "P(X ≤ x)")))
    if goodput:
        charts.append(
            ("chart-gateway-goodput", "Gateway goodput over time",
             line_chart(goodput, "time (s)", "goodput (rps)")))
    shed = _gateway_series(records, "shed_rps")
    if shed and any(v for points in shed.values() for _, v in points):
        charts.append(
            ("chart-gateway-shed", "Gateway shed rate over time",
             line_chart(shed, "time (s)", "shed (rps)")))
    parts.extend(
        f'<h2>{html.escape(caption)}</h2>\n'
        f'<figure id="{chart_id}">\n{svg}\n'
        f'<figcaption>{html.escape(caption)}</figcaption>\n</figure>'
        for chart_id, caption, svg in charts)
    return "\n".join(parts)


def _render_cluster_section(records: Sequence[Mapping[str, object]]) -> str:
    """The sharded-cluster telemetry panel, or ``""`` without records.

    Consumes ``cluster-obs`` records (one per replay cell, carrying the
    shard-merged :class:`~repro.common.streaming.TelemetrySnapshot`
    payload).  Returning the empty string keeps simulation-only reports
    byte-identical to the pre-cluster renderer.
    """
    cluster = [record for record in records
               if record.get("type") == "cluster-obs"
               and isinstance(record.get("obs"), dict)]
    if not cluster:
        return ""
    parts = ["<h2>Cluster telemetry (shard-merged)</h2>"]
    for record in sorted(cluster, key=lambda r: str(r.get("cell"))):
        obs = record["obs"]
        cell = html.escape(str(record.get("cell")))
        shards = record.get("shards")
        caption = (f"{cell} — merged over {shards} shards"
                   if shards is not None else cell)
        parts.append(f"<h3>{html.escape(caption)}</h3>")
        scalar_rows = []
        for section in ("counters", "gauges", "clocks"):
            for name, value in sorted(obs.get(section, {}).items()):
                scalar_rows.append(
                    f"<tr><td>{html.escape(name)}</td>"
                    f"<td>{html.escape(section[:-1])}</td>"
                    f"<td>{float(value):g}</td></tr>")
        if scalar_rows:
            parts.append(
                "<table><thead><tr><th>metric</th><th>kind</th>"
                "<th>value</th></tr></thead>"
                f"<tbody>{''.join(scalar_rows)}</tbody></table>")
        hist_rows = []
        for name, hist in sorted(obs.get("histograms", {}).items()):
            count = int(hist.get("count", 0))
            mean = (float(hist["sum"]) / count) if count else 0.0
            hist_rows.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{count}</td>"
                f"<td>{mean:.2f}</td>"
                f"<td>{float(hist['min']):.2f}</td>"
                f"<td>{float(hist['max']):.2f}</td></tr>"
                if count else
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>0</td><td>-</td><td>-</td><td>-</td></tr>")
        if hist_rows:
            parts.append(
                "<table><thead><tr><th>histogram</th><th>count</th>"
                "<th>mean</th><th>min</th><th>max</th></tr></thead>"
                f"<tbody>{''.join(hist_rows)}</tbody></table>")
    return "\n".join(parts)


#: The paper's §V comparison matrix; anything else in a record stream came
#: from the scheduling-policy registry's extended baselines.
CLASSIC_SCHEDULERS = ("Vanilla", "SFS", "Kraken", "FaaSBatch")


def _is_classic(label: str) -> bool:
    """True for the paper's four schedulers (suffixes like "[10ms]" ok)."""
    return label.split("[", 1)[0] in CLASSIC_SCHEDULERS


def _render_extended_section(summaries: Mapping[str, object]) -> str:
    """Row group for registry baselines beyond the paper's four, or ``""``.

    Returning the empty string keeps classic four-scheduler reports
    byte-identical to the pre-registry renderer.
    """
    extended = {name: summary for name, summary in summaries.items()
                if not _is_classic(name)}
    if not extended:
        return ""
    vanilla = next((summary for name, summary in summaries.items()
                    if name.split("[", 1)[0] == "Vanilla"), None)
    rows = []
    for scheduler in sorted(extended):
        summary = extended[scheduler]
        dominant = max(summary.dominant_counts,
                       key=summary.dominant_counts.get)
        delta = ("—" if vanilla is None or vanilla.p99_ms <= 0 else
                 f"{(summary.p99_ms - vanilla.p99_ms) / vanilla.p99_ms:+.1%}")
        rows.append(
            f"<tr><td>{html.escape(scheduler)}</td>"
            f"<td>{summary.count}</td>"
            f"<td>{html.escape(dominant)}</td>"
            f"<td>{summary.dominant_fraction(dominant):.1%}</td>"
            f"<td>{summary.p99_ms:.2f}</td>"
            f"<td>{delta}</td></tr>")
    return (
        "<h2>Extended baselines</h2>\n"
        "<p>Registry policies beyond the paper's §V matrix (selected via "
        "<code>--schedulers</code>); Δp99 compares against Vanilla in the "
        "same run.</p>\n"
        "<table><thead><tr><th>scheduler</th><th>invocations</th>"
        "<th>dominant stage</th><th>share</th><th>p99 ms</th>"
        "<th>Δp99 vs Vanilla</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>")


def render_report(records: Iterable[Mapping[str, object]],
                  title: str = "FaaSBatch scheduler comparison") -> str:
    """Render the full self-contained HTML report from a record stream."""
    records = list(records)
    summaries = analyze(records)
    charts: List[Tuple[str, str, str]] = [
        ("chart-utilization", "Host CPU utilization over time",
         line_chart(_series_points(records, "cpu.utilization"),
                    "time (s)", "utilization")),
        ("chart-latency-cdf", "Response-latency CDF",
         line_chart(_latency_cdfs(records), "latency (ms)", "P(X ≤ x)")),
        ("chart-stage-breakdown", "Mean latency breakdown by stage",
         stacked_bar_chart(
             {name: summary.mean_stage_ms
              for name, summary in summaries.items()},
             STAGE_KEYS, "mean ms")),
        ("chart-containers", "Live containers over time",
         line_chart(_series_points(records, "containers.live"),
                    "time (s)", "containers")),
    ]
    table_rows = []
    for scheduler in sorted(summaries):
        summary = summaries[scheduler]
        dominant = max(summary.dominant_counts,
                       key=summary.dominant_counts.get)
        table_rows.append(
            f"<tr><td>{html.escape(scheduler)}</td>"
            f"<td>{summary.count}</td>"
            f"<td>{html.escape(dominant)}</td>"
            f"<td>{summary.dominant_fraction(dominant):.1%}</td>"
            f"<td>{summary.p99_ms:.2f}</td></tr>")
    figures = "\n".join(
        f'<h2>{html.escape(caption)}</h2>\n'
        f'<figure id="{chart_id}">\n{svg}\n'
        f'<figcaption>{html.escape(caption)}</figcaption>\n</figure>'
        for chart_id, caption, svg in charts)
    table = (
        "<table><thead><tr><th>scheduler</th><th>invocations</th>"
        "<th>dominant stage</th><th>share</th><th>p99 ms</th></tr></thead>"
        f"<tbody>{''.join(table_rows)}</tbody></table>"
        if table_rows else "<p>No span records in input.</p>")
    extended = _render_extended_section(summaries)
    if extended:
        extended = f"\n{extended}"
    gateway = _render_gateway_section(records)
    if gateway:
        gateway = f"\n{gateway}"
    cluster = _render_cluster_section(records)
    if cluster:
        gateway = f"{gateway}\n{cluster}"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<h2>Critical path</h2>
{table}{extended}
{figures}{gateway}
</body>
</html>
"""


def write_report(path, records: Iterable[Mapping[str, object]],
                 title: str = "FaaSBatch scheduler comparison") -> int:
    """Write the report to *path*; returns the byte count written."""
    document = render_report(records, title=title)
    data = document.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


__all__ = [
    "CLASSIC_SCHEDULERS",
    "PALETTE",
    "line_chart",
    "render_report",
    "stacked_bar_chart",
    "write_report",
]
