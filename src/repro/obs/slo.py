"""Declarative SLOs and the ``repro slo`` burn-rate gate.

An :class:`SloSpec` states what a run must deliver — a goodput floor, a
p99 latency ceiling, a simulator-throughput floor, an error-budget burn
ceiling — and this module evaluates a list of specs against the three
places results live:

* committed bench artifacts (``BENCH_*.json``) of **any** schema
  vintage: evaluation reads plain JSON, never the strict
  :func:`repro.bench.load_report`, so the v1 sim artifact and the v4
  gateway artifact stay first-class gate inputs;
* gateway harness record streams (the ``--records`` JSONL written by
  ``repro loadgen``), whose per-bucket ``gateway-series`` points enable
  *sliding-window* burn rates rather than whole-run averages;
* in-memory cell rows, for tests and for ``repro slo --annotate``
  (schema v6 attaches the evaluation as a per-cell ``slo`` block).

Burn rate follows the SRE convention: with error budget *b* (the allowed
failure fraction), a window whose observed error fraction is *e* burns at
``e / b`` — 1.0 consumes the budget exactly at the sustainable pace, and
a ceiling of, say, 14 is a fast-burn page.  Whole-artifact evaluation
treats the run as one window; record streams slide a ``window_s`` window
across the goodput series and take the worst window.

``repro slo --check`` exits nonzero on any violated spec, which is what
the CI ``slo-gate`` job runs against the committed artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Sections of a bench artifact a spec can target.
SLO_SECTIONS = ("gateway_cells", "cluster_cells", "window_cells", "runs")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over one artifact section.

    Thresholds are all optional; only the ones set produce checks.
    ``match`` is an equality filter on cell fields (e.g.
    ``{"policy": "faasbatch"}``) so a spec can target the paper system's
    serving arm while leaving the deliberately-overloaded vanilla
    control cell ungated.
    """

    name: str
    applies_to: str = "gateway_cells"
    match: Dict[str, object] = field(default_factory=dict)
    #: Minimum acceptable goodput fraction in [0, 1].
    goodput_floor: Optional[float] = None
    #: Maximum acceptable p99 end-to-end latency (milliseconds).
    p99_ceiling_ms: Optional[float] = None
    #: Minimum simulator throughput (``runs`` rows only).
    events_per_sec_floor: Optional[float] = None
    #: Allowed failure fraction (1 - availability target); enables burn
    #: checks when set together with ``burn_rate_ceiling``.
    error_budget: Optional[float] = None
    #: Maximum burn rate (error fraction / budget) in any window.
    burn_rate_ceiling: Optional[float] = None
    #: Sliding-window width in seconds for record-stream burn checks;
    #: whole-artifact evaluation always uses the full run as one window.
    window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.applies_to not in SLO_SECTIONS:
            raise ConfigurationError(
                f"applies_to must be one of {SLO_SECTIONS}, "
                f"got {self.applies_to!r}")
        if self.goodput_floor is not None \
                and not 0.0 <= self.goodput_floor <= 1.0:
            raise ConfigurationError(
                f"goodput_floor must be in [0, 1], got {self.goodput_floor}")
        if self.error_budget is not None \
                and not 0.0 < self.error_budget <= 1.0:
            raise ConfigurationError(
                f"error_budget must be in (0, 1], got {self.error_budget}")
        if self.burn_rate_ceiling is not None and self.error_budget is None:
            raise ConfigurationError(
                f"slo {self.name!r}: burn_rate_ceiling needs error_budget")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"name": self.name,
                                  "applies_to": self.applies_to}
        if self.match:
            out["match"] = dict(self.match)
        for key in ("goodput_floor", "p99_ceiling_ms",
                    "events_per_sec_floor", "error_budget",
                    "burn_rate_ceiling", "window_s"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SloSpec":
        known = {"name", "applies_to", "match", "goodput_floor",
                 "p99_ceiling_ms", "events_per_sec_floor", "error_budget",
                 "burn_rate_ceiling", "window_s"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown slo spec keys: {sorted(unknown)}")
        if "name" not in payload:
            raise ConfigurationError("slo spec needs a name")
        return cls(**payload)


@dataclass(frozen=True)
class SloCheck:
    """One threshold comparison inside an evaluation."""

    check: str
    ok: bool
    observed: Optional[float]
    threshold: float

    def to_dict(self) -> dict:
        return {"check": self.check, "ok": self.ok,
                "observed": self.observed, "threshold": self.threshold}


@dataclass(frozen=True)
class SloResult:
    """One spec evaluated against one cell (or record stream)."""

    spec: str
    target: str
    checks: Tuple[SloCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> dict:
        return {"spec": self.spec, "target": self.target, "ok": self.ok,
                "checks": [check.to_dict() for check in self.checks]}


def default_specs() -> List[SloSpec]:
    """The built-in gate the CI ``slo-gate`` job enforces.

    Floors and ceilings are set with comfortable headroom over the
    committed artifacts (gateway faasbatch: goodput 1.0 / p99 ~169 ms;
    sim incremental cells: ≥ 9.5k events/s) so the gate trips on real
    regressions, not measurement noise.  The vanilla gateway cell is the
    paper's deliberately-overloaded control arm — no spec matches it.
    """
    return [
        SloSpec(name="gateway-goodput", applies_to="gateway_cells",
                match={"policy": "faasbatch"},
                goodput_floor=0.99, p99_ceiling_ms=1_000.0,
                error_budget=0.01, burn_rate_ceiling=1.0, window_s=10.0),
        SloSpec(name="sim-throughput", applies_to="runs",
                match={"engine": "incremental"},
                events_per_sec_floor=2_000.0),
        SloSpec(name="cluster-goodput", applies_to="cluster_cells",
                goodput_floor=0.999),
        SloSpec(name="window-goodput", applies_to="window_cells",
                goodput_floor=0.999),
    ]


def load_specs(path: str) -> List[SloSpec]:
    """Read an ``{"slos": [...]}`` spec file."""
    with open(path) as handle:
        payload = json.load(handle)
    slos = payload.get("slos") if isinstance(payload, dict) else None
    if not isinstance(slos, list) or not slos:
        raise ConfigurationError(
            f"{path}: spec file needs a non-empty 'slos' list")
    return [SloSpec.from_dict(entry) for entry in slos]


# -- evaluation -------------------------------------------------------------------


def _matches(spec: SloSpec, row: dict) -> bool:
    return all(row.get(key) == value for key, value in spec.match.items())


def _cell_goodput(section: str, row: dict) -> Optional[float]:
    if section == "gateway_cells":
        value = row.get("goodput_ratio")
    elif section == "window_cells":
        value = row.get("goodput")
    elif section == "cluster_cells":
        completed = row.get("completed")
        failed = row.get("failed")
        if not isinstance(completed, (int, float)) \
                or not isinstance(failed, (int, float)) \
                or completed + failed <= 0:
            return None
        return completed / (completed + failed)
    else:
        return None
    return float(value) if isinstance(value, (int, float)) else None


def _cell_p99(row: dict) -> Optional[float]:
    latency = row.get("latency_ms")
    if isinstance(latency, dict) \
            and isinstance(latency.get("p99"), (int, float)):
        return float(latency["p99"])
    return None


def _cell_label(section: str, row: dict) -> str:
    if section == "runs":
        return f"runs[{row.get('scheduler')}/{row.get('engine')}]"
    return f"{section}[{row.get('cell')}]"


def evaluate_cell(spec: SloSpec, section: str, row: dict,
                  target_prefix: str = "") -> Optional[SloResult]:
    """Evaluate one spec against one cell row; None when out of scope."""
    if spec.applies_to != section or not _matches(spec, row):
        return None
    checks: List[SloCheck] = []
    goodput = _cell_goodput(section, row)
    if spec.goodput_floor is not None:
        checks.append(SloCheck(
            check="goodput_floor",
            ok=goodput is not None and goodput >= spec.goodput_floor,
            observed=goodput, threshold=spec.goodput_floor))
    if spec.p99_ceiling_ms is not None:
        p99 = _cell_p99(row)
        checks.append(SloCheck(
            check="p99_ceiling_ms",
            ok=p99 is not None and p99 <= spec.p99_ceiling_ms,
            observed=p99, threshold=spec.p99_ceiling_ms))
    if spec.events_per_sec_floor is not None:
        events = row.get("events_per_sec")
        observed = (float(events)
                    if isinstance(events, (int, float)) else None)
        checks.append(SloCheck(
            check="events_per_sec_floor",
            ok=observed is not None
            and observed >= spec.events_per_sec_floor,
            observed=observed, threshold=spec.events_per_sec_floor))
    if spec.error_budget is not None \
            and spec.burn_rate_ceiling is not None:
        # Whole-run burn: the artifact has no time axis, so the run is
        # one window.  Record streams refine this to sliding windows.
        burn = (None if goodput is None
                else (1.0 - goodput) / spec.error_budget)
        checks.append(SloCheck(
            check="burn_rate_ceiling",
            ok=burn is not None and burn <= spec.burn_rate_ceiling,
            observed=(round(burn, 6) if burn is not None else None),
            threshold=spec.burn_rate_ceiling))
    if not checks:
        return None
    return SloResult(spec=spec.name,
                     target=target_prefix + _cell_label(section, row),
                     checks=tuple(checks))


def evaluate_artifact(report: dict, specs: Sequence[SloSpec],
                      target_prefix: str = "") -> List[SloResult]:
    """Every applicable (spec, cell) evaluation over one bench artifact.

    ``report`` is plain decoded JSON of any schema vintage; sections the
    artifact lacks are skipped, so a sim-only v1 report and a gateway-only
    v4 report both evaluate cleanly.
    """
    results: List[SloResult] = []
    for section in SLO_SECTIONS:
        rows = report.get(section)
        if not isinstance(rows, list):
            continue
        for row in rows:
            if not isinstance(row, dict):
                continue
            for spec in specs:
                result = evaluate_cell(spec, section, row,
                                       target_prefix=target_prefix)
                if result is not None:
                    results.append(result)
    return results


def max_burn_rate(offered: Sequence[Sequence[float]],
                  goodput: Sequence[Sequence[float]],
                  error_budget: float,
                  window_s: float) -> Optional[float]:
    """Worst sliding-window burn rate over a bucketed goodput series.

    ``offered`` and ``goodput`` are ``[t, rate]`` point lists sharing
    bucket timestamps (the ``gateway-series`` record format).  Windows
    slide one bucket at a time; buckets with zero offered load contribute
    nothing.  Returns None when the series is empty.
    """
    good_by_t = {point[0]: point[1] for point in goodput}
    buckets = [(t, rate, good_by_t.get(t, 0.0)) for t, rate in offered]
    if not buckets:
        return None
    if len(buckets) > 1:
        bucket_s = buckets[1][0] - buckets[0][0]
    else:
        bucket_s = window_s
    width = max(1, round(window_s / max(bucket_s, 1e-9)))
    worst: Optional[float] = None
    for start in range(max(1, len(buckets) - width + 1)):
        window = buckets[start:start + width]
        offered_total = sum(rate for _t, rate, _g in window)
        if offered_total <= 0:
            continue
        errors = sum(max(rate - good, 0.0) for _t, rate, good in window)
        burn = (errors / offered_total) / error_budget
        worst = burn if worst is None else max(worst, burn)
    return worst


def evaluate_records(records: Iterable[dict],
                     specs: Sequence[SloSpec],
                     target_prefix: str = "") -> List[SloResult]:
    """Sliding-window burn checks over a loadgen record stream.

    Consumes the ``gateway-series`` records ``repro loadgen --records``
    writes (per-policy ``offered_rps`` / ``goodput_rps`` buckets) and
    evaluates every gateway spec carrying a burn ceiling.  The stream's
    ``policy`` field holds the cell label, which the stock cells name
    after their policy — ``match`` filters apply to it directly.
    """
    series: Dict[Tuple[str, str], List[List[float]]] = {}
    for record in records:
        if record.get("type") == "gateway-series":
            series[(str(record.get("policy")),
                    str(record.get("name")))] = list(record.get("points", []))
    policies = sorted({policy for policy, _name in series})
    results: List[SloResult] = []
    for policy in policies:
        row = {"policy": policy}
        for spec in specs:
            if spec.applies_to != "gateway_cells" \
                    or not _matches(spec, row):
                continue
            if spec.error_budget is None or spec.burn_rate_ceiling is None:
                continue
            burn = max_burn_rate(
                series.get((policy, "offered_rps"), []),
                series.get((policy, "goodput_rps"), []),
                spec.error_budget,
                spec.window_s if spec.window_s is not None else 10.0)
            results.append(SloResult(
                spec=spec.name,
                target=f"{target_prefix}records[{policy}]",
                checks=(SloCheck(
                    check="burn_rate_ceiling",
                    ok=burn is not None
                    and burn <= spec.burn_rate_ceiling,
                    observed=(round(burn, 6) if burn is not None else None),
                    threshold=spec.burn_rate_ceiling),)))
    return results


def annotate_report(report: dict, specs: Sequence[SloSpec]) -> dict:
    """Attach per-cell ``slo`` blocks (schema v6) in place; returns report.

    Each evaluated cell gains ``{"ok": bool, "checks": [...]}`` merging
    every spec that matched it; untouched cells carry no block.
    """
    for section in SLO_SECTIONS:
        rows = report.get(section)
        if not isinstance(rows, list):
            continue
        for row in rows:
            if not isinstance(row, dict):
                continue
            checks: List[dict] = []
            for spec in specs:
                result = evaluate_cell(spec, section, row)
                if result is not None:
                    for check in result.checks:
                        entry = check.to_dict()
                        entry["spec"] = spec.name
                        checks.append(entry)
            if checks:
                row["slo"] = {"ok": all(c["ok"] for c in checks),
                              "checks": checks}
    return report


def slo_table(results: Sequence[SloResult]):
    """``(headers, rows)`` for the CLI's evaluation table."""
    headers = ["spec", "target", "check", "observed", "threshold", "ok"]
    rows: List[List[object]] = []
    for result in results:
        for check in result.checks:
            rows.append([result.spec, result.target, check.check,
                         check.observed, check.threshold,
                         "pass" if check.ok else "FAIL"])
    return headers, rows


__all__ = [
    "SLO_SECTIONS",
    "SloCheck",
    "SloResult",
    "SloSpec",
    "annotate_report",
    "default_specs",
    "evaluate_artifact",
    "evaluate_cell",
    "evaluate_records",
    "load_specs",
    "max_burn_rate",
    "slo_table",
]
