"""Perfetto/Chrome trace-event export of a recorded run.

Converts the JSONL record stream produced by ``--trace`` (span records,
container lifecycle events, fault/retry annotations, sampled series) into
the Chrome trace-event JSON format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* each **container** becomes a *process* (``pid``), named
  ``<scheduler>/<container-id>``; a per-scheduler pseudo-process named
  ``<scheduler>/platform`` holds everything that happens before or outside
  any container;
* each **invocation** becomes a *thread* (``tid``) inside its container's
  process, with one complete slice (``ph: "X"``) per stage — the five-stage
  timeline renders as nested-width slices on the invocation's track;
* **container events** and **annotations** become instants (``ph: "i"``);
* each sampled **series** becomes a counter track (``ph: "C"``) on the
  scheduler's platform process.

All identifier assignment is sorted and the event list is ordered by
timestamp with deterministic tie-breaks, so two identical runs produce
byte-identical ``trace.json`` files.  Times are converted from simulated
milliseconds to the format's microseconds.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: ph values this exporter emits (a subset of the trace-event format).
_PHASES = ("M", "X", "i", "C")

#: Pseudo-container key for pre-dispatch work and platform-level events.
_PLATFORM = "platform"


def _label(record: Mapping[str, object]) -> str:
    return str(record.get("scheduler", "-"))


def _microseconds(ms: object) -> float:
    return round(float(ms) * 1000.0, 3)


def _span_container(records_of_invocation: List[Mapping[str, object]]) -> str:
    for span in records_of_invocation:
        container_id = span.get("container_id")
        if container_id is not None:
            return str(container_id)
    return _PLATFORM


def chrome_trace(records: Iterable[Mapping[str, object]]
                 ) -> Dict[str, object]:
    """Build the Chrome trace-event payload from a JSONL record stream."""
    records = list(records)
    spans = [r for r in records if r.get("type") == "span"]
    container_events = [r for r in records
                        if r.get("type") == "container-event"]
    annotations = [r for r in records if r.get("type") == "annotation"]
    series = [r for r in records if r.get("type") == "series"]

    # Group spans per invocation to find each invocation's home container.
    by_invocation: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for span in spans:
        key = (_label(span), str(span["invocation_id"]))
        by_invocation.setdefault(key, []).append(span)

    # -- pid assignment: sorted (scheduler, container) keys, platform first.
    process_keys = {(_label(r), _PLATFORM)
                    for r in records}  # one platform row per scheduler
    for key, invocation_spans in by_invocation.items():
        process_keys.add((key[0], _span_container(invocation_spans)))
    for event in container_events:
        process_keys.add((_label(event), str(event["container_id"])))
    pid_of: Dict[Tuple[str, str], int] = {
        key: pid for pid, key in enumerate(sorted(process_keys), start=1)}

    # -- tid assignment: per process, invocations ordered by first span.
    tid_of: Dict[Tuple[str, str], int] = {}
    per_process: Dict[Tuple[str, str],
                      List[Tuple[float, str, Tuple[str, str]]]] = {}
    for key, invocation_spans in by_invocation.items():
        scheduler, _invocation_id = key
        process = (scheduler, _span_container(invocation_spans))
        first_start = min(float(s["start_ms"]) for s in invocation_spans)
        per_process.setdefault(process, []).append(
            (first_start, key[1], key))
    for process, entries in per_process.items():
        entries.sort(key=lambda e: (e[0], e[1]))
        for tid, (_start, _invocation_id, key) in enumerate(entries, start=1):
            tid_of[key] = tid

    events: List[Dict[str, object]] = []
    # Process/thread naming metadata, in pid then tid order.
    for key in sorted(pid_of, key=lambda k: pid_of[k]):
        scheduler, container = key
        events.append({"ph": "M", "name": "process_name",
                       "pid": pid_of[key], "tid": 0,
                       "args": {"name": f"{scheduler}/{container}"}})
    for key, tid in sorted(tid_of.items(),
                           key=lambda item: (pid_of[(item[0][0],
                                                     _span_container(
                                                         by_invocation[item[0]]))],
                                             item[1])):
        scheduler, invocation_id = key
        process = (scheduler, _span_container(by_invocation[key]))
        events.append({"ph": "M", "name": "thread_name",
                       "pid": pid_of[process], "tid": tid,
                       "args": {"name": invocation_id}})

    timed: List[Tuple[float, int, int, int, Dict[str, object]]] = []
    sequence = 0

    def add(ts: float, pid: int, tid: int, event: Dict[str, object]) -> None:
        nonlocal sequence
        timed.append((ts, pid, tid, sequence, event))
        sequence += 1

    for key, invocation_spans in sorted(by_invocation.items()):
        scheduler, invocation_id = key
        process = (scheduler, _span_container(invocation_spans))
        pid, tid = pid_of[process], tid_of[key]
        for span in invocation_spans:
            ts = _microseconds(span["start_ms"])
            duration = _microseconds(
                float(span["end_ms"]) - float(span["start_ms"]))
            args: Dict[str, object] = {
                "invocation_id": invocation_id,
                "stage": str(span["stage"]),
            }
            if span.get("function_id") is not None:
                args["function_id"] = span["function_id"]
            if span.get("attrs"):
                args.update(dict(span["attrs"]))  # type: ignore[arg-type]
            add(ts, pid, tid, {"ph": "X", "cat": "invocation",
                               "name": str(span["stage"]), "pid": pid,
                               "tid": tid, "ts": ts, "dur": duration,
                               "args": args})

    for event in container_events:
        process = (_label(event), str(event["container_id"]))
        pid = pid_of[process]
        ts = _microseconds(event["time_ms"])
        args = {"container_id": str(event["container_id"])}
        if event.get("attrs"):
            args.update(dict(event["attrs"]))  # type: ignore[arg-type]
        add(ts, pid, 0, {"ph": "i", "cat": "container",
                         "name": str(event["kind"]), "pid": pid, "tid": 0,
                         "ts": ts, "s": "p", "args": args})

    for annotation in annotations:
        pid = pid_of[(_label(annotation), _PLATFORM)]
        ts = _microseconds(annotation["time_ms"])
        args = dict(annotation.get("attrs") or {})  # type: ignore[arg-type]
        add(ts, pid, 0, {"ph": "i", "cat": "annotation",
                         "name": str(annotation["kind"]), "pid": pid,
                         "tid": 0, "ts": ts, "s": "p", "args": args})

    for record in series:
        pid = pid_of[(_label(record), _PLATFORM)]
        name = str(record["name"])
        for time_ms, value in record.get("points", []):
            ts = _microseconds(time_ms)
            add(ts, pid, 0, {"ph": "C", "name": name, "pid": pid,
                             "tid": 0, "ts": ts,
                             "args": {"value": round(float(value), 6)}})

    timed.sort(key=lambda entry: entry[:4])
    events.extend(entry[4] for entry in timed)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.export",
            "spans": len(spans),
            "counters": len(series),
        },
    }


def dump_chrome_trace(path, payload: Mapping[str, object]) -> int:
    """Serialise a built payload to *path*; returns the event count.

    Keys are sorted so identical runs produce byte-identical files (the
    golden-file tests rely on this).
    """
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return len(payload["traceEvents"])  # type: ignore[arg-type]


def write_chrome_trace(path, records: Iterable[Mapping[str, object]]) -> int:
    """Build and write the Chrome trace for *records*; returns event count."""
    return dump_chrome_trace(path, chrome_trace(records))


def validate_chrome_trace(payload: Mapping[str, object]) -> List[str]:
    """Structural trace-event checks; returns problems (empty = valid).

    Checks the shape Perfetto/chrome://tracing require: a ``traceEvents``
    list whose events carry ``ph``/``pid``/``tid`` (plus ``ts``/``dur``
    where applicable), named processes, non-decreasing timestamps across
    the timed events, and counter samples with numeric values.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    named_pids = set()
    last_ts: Optional[float] = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"event {index}: unknown ph {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"event {index}: missing {field}")
        if ph == "M":
            if last_ts is not None:
                problems.append(
                    f"event {index}: metadata after timed events")
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: ts {ts} < previous {last_ts} "
                "(not monotonic)")
        last_ts = float(ts)
        if ph == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"event {index}: bad dur {duration!r}")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                problems.append(
                    f"event {index}: counter args must be numeric")
    for index, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") != "M" \
                and event.get("pid") not in named_pids:
            problems.append(
                f"event {index}: pid {event.get('pid')!r} has no "
                "process_name metadata")
    return problems


__all__ = [
    "chrome_trace",
    "dump_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
