"""Prometheus text exposition for the metrics registry and gateway stats.

The gateway's ``GET /metrics`` serves a JSON snapshot by default (that
contract predates this module and stays byte-identical); a scraper that
sends ``Accept: text/plain`` or ``?format=prometheus`` gets the same data
rendered in the Prometheus text exposition format (version 0.0.4) instead,
so a stock Prometheus server can scrape the gateway with zero glue.

Two inputs are supported:

* a live :class:`~repro.obs.metrics.MetricsRegistry` — full fidelity:
  histogram buckets are re-emitted cumulatively (``le`` convention) from
  the raw per-bucket counts, including empty buckets;
* a *snapshot dict* (the JSON shape ``MetricsRegistry.snapshot()``
  produces, possibly after a JSON round-trip) — bucket range labels are
  parsed back into ``le`` edges; empty buckets were dropped by the
  snapshot, so only observed edges are emitted (cumulative values stay
  exact at every emitted edge).

Mapping notes
-------------
* Dot-namespaced names (``platform.cold_start_ms``) become underscore
  names (``platform_cold_start_ms``); any other invalid character is
  folded to ``_`` too.
* Our histogram buckets are half-open ``[a, b)`` while Prometheus ``le``
  is inclusive; the right edge is exposed as the ``le`` bound, so a
  sample exactly on an edge may be attributed one bucket lower than a
  native Prometheus client would.  Count/sum/min/max are exact.
* Output is deterministic: metrics sort by name, labels by key — byte
  -identical across runs, so the golden test can pin the full page.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_gateway_stats",
    "render_registry",
    "render_snapshot",
]

#: Content type of the text exposition format this module renders.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_VALID = set("abcdefghijklmnopqrstuvwxyz"
             "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _name(name: str) -> str:
    """Fold a dot-namespaced metric name into a Prometheus-valid one."""
    out = "".join(ch if ch in _VALID else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _value(value: Union[int, float, None]) -> str:
    """Render a sample value; Prometheus accepts Go-style floats."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label(value: object) -> str:
    """Escape one label value per the text-format quoting rules."""
    text = str(value)
    return (text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n"))


def _edge(edge: float) -> str:
    """``le`` label for a finite bucket edge (matches ``:g`` labels)."""
    return format(edge, "g")


def _header(name: str, kind: str, help_text: str) -> List[str]:
    return [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]


def _histogram_lines(name: str, edges: List[Optional[float]],
                     counts: List[int], total: int, total_sum: float,
                     help_text: str) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines.

    ``edges[i]`` is the inclusive upper bound of ``counts[i]`` (``None``
    means the unbounded tail, folded into ``+Inf``).
    """
    lines = _header(name, "histogram", help_text)
    running = 0
    for edge, count in zip(edges, counts):
        running += count
        if edge is None:
            continue
        lines.append(f'{name}_bucket{{le="{_edge(edge)}"}} {running}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
    lines.append(f"{name}_sum {_value(total_sum)}")
    lines.append(f"{name}_count {total}")
    return lines


# -- registry / snapshot rendering -------------------------------------------------


def render_registry(registry: MetricsRegistry) -> str:
    """Render a live registry; every bucket edge is emitted, even empty."""
    lines: List[str] = []
    for raw in registry.names():
        metric = registry.get(raw)
        name = _name(raw)
        if isinstance(metric, Histogram):
            # counts[0] is the underflow bucket: cumulative at the first
            # edge already includes it, matching le semantics.
            edges: List[Optional[float]] = list(metric.edges) + [None]
            lines.extend(_histogram_lines(
                name, edges, metric.counts, metric.count, metric.sum,
                f"histogram {raw}"))
        elif isinstance(metric, Counter):
            lines.extend(_header(name, "counter", f"counter {raw}"))
            lines.append(f"{name} {_value(metric.value)}")
        else:  # Gauge and subclasses (ClockGauge reads its clock live)
            lines.extend(_header(name, "gauge", f"gauge {raw}"))
            lines.append(f"{name} {_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_bucket_label(label: str) -> Optional[float]:
    """Upper edge of a snapshot bucket label; None for the ``inf`` tail.

    Labels come from :meth:`Histogram.bucket_rows`:
    ``(-inf, 1)`` · ``[1, 2)`` · ``[300000, inf)``.
    """
    inner = label.strip("([])")
    upper = inner.split(",")[1].strip().rstrip(")")
    if upper == "inf":
        return None
    return float(upper)


def render_snapshot(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a ``MetricsRegistry.snapshot()``-shaped dict."""
    lines: List[str] = []
    for raw in sorted(snapshot):
        data = snapshot[raw]
        name = _name(raw)
        kind = data.get("type")
        if kind == "histogram":
            buckets: List[Tuple[str, int]] = list(data.get("buckets") or [])
            edges = [_parse_bucket_label(label) for label, _ in buckets]
            counts = [int(count) for _, count in buckets]
            lines.extend(_histogram_lines(
                name, edges, counts, int(data["count"]),
                float(data["sum"]), f"histogram {raw}"))
        elif kind == "counter":
            lines.extend(_header(name, "counter", f"counter {raw}"))
            lines.append(f"{name} {_value(data['value'])}")
        else:
            lines.extend(_header(name, "gauge", f"gauge {raw}"))
            lines.append(f"{name} {_value(data['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- gateway stats rendering -------------------------------------------------------


def _scalar(lines: List[str], name: str, kind: str, help_text: str,
            value: Union[int, float, None]) -> None:
    if value is None:
        return
    lines.extend(_header(name, kind, help_text))
    lines.append(f"{name} {_value(value)}")


def render_gateway_stats(stats: Mapping[str, object]) -> str:
    """Render ``Gateway.stats()`` (admission + degradation included).

    String-valued facts (policy, window policy, platform state, dispatch
    mode) collapse into one ``gateway_info`` series with value 1, the
    standard Prometheus idiom for build/config metadata.
    """
    lines: List[str] = []
    info = {
        "mode": (stats.get("degradation") or {}).get("mode"),
        "platform_state": stats.get("platform_state"),
        "policy": stats.get("policy"),
        "window_policy": stats.get("window_policy"),
    }
    pairs = ",".join(f'{key}="{_label(value)}"'
                     for key, value in sorted(info.items())
                     if value is not None)
    lines.extend(_header("gateway_info", "gauge",
                         "gateway configuration and state"))
    lines.append(f"gateway_info{{{pairs}}} 1")

    _scalar(lines, "gateway_requests_total", "counter",
            "requests accepted by the gateway", stats.get("requests_total"))
    responses = stats.get("responses_by_status") or {}
    if responses:
        lines.extend(_header("gateway_responses_total", "counter",
                             "responses by HTTP status"))
        for status in sorted(responses):
            lines.append(f'gateway_responses_total{{status='
                         f'"{_label(status)}"}} '
                         f"{_value(responses[status])}")
    _scalar(lines, "gateway_batches_dispatched_total", "counter",
            "dispatch groups handed to the platform",
            stats.get("batches_dispatched"))
    _scalar(lines, "gateway_batched_requests_total", "counter",
            "requests that rode a batch window",
            stats.get("batched_requests"))
    _scalar(lines, "gateway_window_seconds", "gauge",
            "configured dispatch window", stats.get("window_seconds"))
    _scalar(lines, "gateway_uptime_seconds", "gauge",
            "seconds since the gateway started", stats.get("uptime_s"))

    depths = stats.get("queue_depths") or {}
    if depths:
        lines.extend(_header("gateway_queue_depth", "gauge",
                             "open-window queue depth per function"))
        for function in sorted(depths):
            lines.append(f'gateway_queue_depth{{function='
                         f'"{_label(function)}"}} '
                         f"{_value(depths[function])}")

    admission = stats.get("admission") or {}
    _scalar(lines, "gateway_inflight", "gauge",
            "requests currently admitted", admission.get("inflight"))
    _scalar(lines, "gateway_admitted_total", "counter",
            "requests admitted", admission.get("admitted"))
    shed = admission.get("shed") or {}
    if shed:
        lines.extend(_header("gateway_shed_total", "counter",
                             "requests shed by cause"))
        for cause in sorted(shed):
            lines.append(f'gateway_shed_total{{cause="{_label(cause)}"}} '
                         f"{_value(shed[cause])}")
    _scalar(lines, "gateway_max_inflight", "gauge",
            "admission inflight bound", admission.get("max_inflight"))
    _scalar(lines, "gateway_max_queue_depth", "gauge",
            "admission queue-depth bound", admission.get("max_queue_depth"))

    degradation = stats.get("degradation") or {}
    enabled = degradation.get("enabled")
    _scalar(lines, "gateway_degradation_enabled", "gauge",
            "1 when the degradation monitor is active",
            None if enabled is None else int(bool(enabled)))
    flips = degradation.get("flips")
    _scalar(lines, "gateway_mode_flips_total", "counter",
            "dispatch-mode flips recorded",
            None if flips is None else len(flips))
    _scalar(lines, "gateway_batch_p99_ms", "gauge",
            "sliding-window p99 in batch mode",
            degradation.get("batch_p99_ms"))
    _scalar(lines, "gateway_vanilla_p99_ms", "gauge",
            "sliding-window p99 in vanilla mode",
            degradation.get("vanilla_p99_ms"))
    return "\n".join(lines) + "\n"
