"""Cluster load balancing policies.

The paper scopes itself to a single worker ("This study focuses on the
performance of FaaSBatch running on a single machine, rather than the
efficiency of clustered servers", §IV); this package extends the
reproduction to a small cluster to study how routing interacts with
FaaSBatch's batching.

Three routing policies:

* :class:`RoundRobinBalancer` — classic even spreading.  *Hostile* to
  FaaSBatch: concurrent invocations of one function land on different
  workers, so each worker forms smaller groups.
* :class:`LeastLoadedBalancer` — route to the worker with the fewest
  in-flight invocations.
* :class:`FunctionAffinityBalancer` — hash the function id to a home
  worker, spilling to the least-loaded worker above a load threshold.
  *Friendly* to FaaSBatch: a function's burst stays together, maximising
  group sizes and multiplexer reuse.
* :class:`HashPartitionBalancer` — pure hash routing, never spills.  The
  only *load-independent* policy: where a request lands depends on the
  function id alone, so a run can be partitioned across shard processes
  (each owning a worker subset) and replayed with per-worker results
  identical to the single-process run (see ``repro.cluster.sharded``).

All policies tie-break deterministically: equal-load candidates resolve
to the lowest worker index, never to memory addresses (an earlier
version keyed ties on ``id(worker) % 97``, which reshuffled routing from
run to run under identical seeds).
"""

from __future__ import annotations

import abc
import hashlib
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.platformsim.platform import ServerlessPlatform


def stable_hash(text: str) -> int:
    """Deterministic cross-run string hash (Python's ``hash`` is salted)."""
    return int.from_bytes(hashlib.md5(text.encode()).digest()[:8], "big")


class Balancer(abc.ABC):
    """Chooses a worker platform for each arriving request."""

    name: str = "abstract"
    #: Whether :meth:`add_worker` keeps this policy's routing meaningful.
    #: Hash-keyed policies remap function homes when the worker count
    #: changes; they still *work* after a scale-up, but a function's burst
    #: may split across its old and new home.
    supports_scaling: bool = True

    def __init__(self, workers: Sequence[ServerlessPlatform]) -> None:
        if not workers:
            raise ConfigurationError("a cluster needs at least one worker")
        self.workers: List[ServerlessPlatform] = list(workers)

    @abc.abstractmethod
    def pick(self, function_id: str) -> ServerlessPlatform:
        """Return the worker that should serve the next request."""

    def add_worker(self, worker: ServerlessPlatform) -> None:
        """Autoscaling hook: start routing to *worker* from now on."""
        if worker in self.workers:
            raise ConfigurationError("worker already registered")
        self.workers.append(worker)

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def load_of(worker: ServerlessPlatform) -> int:
        """In-flight invocations on *worker* (dispatched, not completed)."""
        issued = worker.ids.count("inv")
        return issued - worker.completed_count

    def least_loaded(self) -> ServerlessPlatform:
        """Lowest-load worker; ties go to the lowest index (deterministic)."""
        index = min(range(len(self.workers)),
                    key=lambda i: (self.load_of(self.workers[i]), i))
        return self.workers[index]


class RoundRobinBalancer(Balancer):
    """Cycle through workers regardless of function or load."""

    name = "round-robin"

    def __init__(self, workers: Sequence[ServerlessPlatform]) -> None:
        super().__init__(workers)
        self._next = 0

    def pick(self, function_id: str) -> ServerlessPlatform:
        worker = self.workers[self._next % len(self.workers)]
        self._next += 1
        return worker


class LeastLoadedBalancer(Balancer):
    """Route to the worker with the fewest in-flight invocations."""

    name = "least-loaded"

    def pick(self, function_id: str) -> ServerlessPlatform:
        return self.least_loaded()


class FunctionAffinityBalancer(Balancer):
    """Keep each function on its home worker unless it is overloaded.

    ``spill_threshold`` is the in-flight invocation count above which a
    request spills to the least-loaded worker instead of its home.
    """

    name = "function-affinity"

    def __init__(self, workers: Sequence[ServerlessPlatform],
                 spill_threshold: int = 1_000) -> None:
        super().__init__(workers)
        if spill_threshold < 1:
            raise ConfigurationError(
                f"spill_threshold must be >= 1, got {spill_threshold}")
        self.spill_threshold = spill_threshold
        self.spills = 0

    def home_of(self, function_id: str) -> ServerlessPlatform:
        return self.workers[stable_hash(function_id) % len(self.workers)]

    def pick(self, function_id: str) -> ServerlessPlatform:
        home = self.home_of(function_id)
        if self.load_of(home) < self.spill_threshold:
            return home
        self.spills += 1
        # Spills use the same lowest-index tie-break as least-loaded; a
        # bare min() over platform objects would already be stable, but
        # routing through the helper keeps one definition of "least
        # loaded" across policies.
        return self.least_loaded()


class HashPartitionBalancer(Balancer):
    """Route purely by function-id hash; never consult load, never spill.

    Deliberately load-blind: routing is a pure function of the id and the
    worker count, which makes runs *partitionable* — worker ``w`` sees the
    same request sequence whether the other workers live in this process
    or in another shard.  The sharded cluster runner relies on this.
    """

    name = "hash-partition"

    def pick(self, function_id: str) -> ServerlessPlatform:
        return self.workers[stable_hash(function_id) % len(self.workers)]


BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastLoadedBalancer.name: LeastLoadedBalancer,
    FunctionAffinityBalancer.name: FunctionAffinityBalancer,
    HashPartitionBalancer.name: HashPartitionBalancer,
}


def make_balancer(name: str,
                  workers: Sequence[ServerlessPlatform]) -> Balancer:
    """Construct a balancer by policy name."""
    try:
        balancer_type = BALANCERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown balancer {name!r}; choose from {sorted(BALANCERS)}"
        ) from None
    return balancer_type(workers)
