"""Worker autoscaling for cluster experiments.

The paper fixes its machine count; this layer adds the knob real
platforms turn instead: watch cluster pressure, add workers when it
stays high.  The experiment runner polls the autoscaler at a fixed
interval and materialises any workers it asks for (fresh machine +
platform + scheduler, registered with the balancer via its
``add_worker`` hook).

Scaling is **additive only**.  Scale-*down* would have to drain in-
flight invocations and migrate warm containers — machinery the paper
never describes — so the policy can only request growth, bounded by
``max_workers``.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.common.errors import ConfigurationError


class Autoscaler(abc.ABC):
    """Decides, once per poll interval, how many workers to add."""

    #: How often the experiment polls (simulated milliseconds).
    check_interval_ms: float = 1_000.0

    @abc.abstractmethod
    def workers_to_add(self, loads: Sequence[int],
                       queue_depths: Sequence[int]) -> int:
        """Return how many workers to add right now (0 = hold).

        ``loads`` are per-worker in-flight invocation counts and
        ``queue_depths`` per-worker pending request-queue lengths, in
        worker-index order.  Implementations must be pure in these
        inputs so runs stay deterministic.
        """


class NullAutoscaler(Autoscaler):
    """Never scales; useful to exercise the polling path in tests."""

    def workers_to_add(self, loads: Sequence[int],
                       queue_depths: Sequence[int]) -> int:
        return 0


class ThresholdAutoscaler(Autoscaler):
    """Add one worker whenever mean in-flight load crosses a threshold.

    The classic queue-pressure rule: if the fleet-wide mean of
    (in-flight + queued) work per worker exceeds ``load_threshold`` at a
    poll, request one more worker, up to ``max_workers``.  One worker per
    poll keeps the response gradual (and deterministic) rather than
    stepping straight to the cap on the first burst.
    """

    def __init__(self, max_workers: int, load_threshold: float = 32.0,
                 check_interval_ms: float = 1_000.0) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        if load_threshold <= 0:
            raise ConfigurationError(
                f"load_threshold must be > 0, got {load_threshold}")
        if check_interval_ms <= 0:
            raise ConfigurationError(
                f"check_interval_ms must be > 0, got {check_interval_ms}")
        self.max_workers = max_workers
        self.load_threshold = load_threshold
        self.check_interval_ms = check_interval_ms
        #: Poll timestamps (sim ms → worker count) at which growth fired.
        self.scale_events = []

    def workers_to_add(self, loads: Sequence[int],
                       queue_depths: Sequence[int]) -> int:
        current = len(loads)
        if current >= self.max_workers:
            return 0
        pressure = (sum(loads) + sum(queue_depths)) / current
        return 1 if pressure > self.load_threshold else 0
