"""Sharded cluster simulation: one subprocess per worker slice.

A single simulator process replaying millions of invocations across many
workers is bounded by one interpreter's heap and one core.  This runner
splits a cluster run into ``shards`` subprocesses, each simulating a
*stripe* of the global worker set (shard ``s`` owns global worker ``w``
iff ``w % shards == s``) against the same streamed trace, and merges the
results.

Why this is exact, not approximate: the sharded mode requires the
``hash-partition`` balancer, whose routing is a pure function of
``(function_id, global worker count)`` — never of load.  Workers on a
shared simulation environment are causally independent (each owns its
machine, CPU, pool and scheduler), so simulating a subset of them with
the other stripes absent yields byte-identical per-worker results.  Each
shard streams its slice of the trace (skipping records routed to workers
it does not own), publishes completions into a
:class:`~repro.common.streaming.StreamingResultSink`, and ships the
serialised sink — mergeable in any order — plus per-worker summaries over
a pipe as JSON.  No per-invocation record ever crosses a process
boundary or outlives its completion callback.

Protocol (modeled on the perf bench's cell subprocesses): the child
(``python -m repro.cluster.sharded``) reads one JSON spec from stdin and
writes JSONL to stdout — ``{"type": "progress", ...}`` heartbeats while
replaying, then a single ``{"type": "result", ...}`` payload.
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    SchedulerBuild,
    build_scheduler,
    registered_policies,
)
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.streaming import (
    DEFAULT_RESERVOIR_CAPACITY,
    StreamingResultSink,
    TelemetrySnapshot,
)
from repro.common.units import HOUR
from repro.cluster.balancer import stable_hash
from repro.cluster.experiment import ClusterResult, WorkerSize
from repro.model.calibration import DEFAULT_CALIBRATION
from repro.obs import Observability
from repro.platformsim.gateway import ReplayInjector
from repro.platformsim.platform import ServerlessPlatform
from repro.sim.kernel import Environment
from repro.sim.machine import Machine, build_cpu
from repro.workload.generator import fib_family_specs, tiled_fib_stream

#: ``ru_maxrss`` unit: bytes on macOS, kilobytes everywhere else.
_RSS_TO_MB = (1024.0 * 1024.0) if sys.platform == "darwin" else 1024.0

#: Completions between progress heartbeats on the child's stdout.
PROGRESS_EVERY = 10_000

#: Schedulers a shard can reconstruct from its JSON spec — every registry
#: policy whose factory is self-contained.  (Kraken is excluded
#: mechanically via ``needs_vanilla_profile``: its parameters are learned
#: from a prior Vanilla run and the shard protocol deliberately has no
#: side channel for them.)
SHARD_SCHEDULERS = tuple(info.label for info in registered_policies()
                         if not info.needs_vanilla_profile)


def peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MB (honest per shard)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _RSS_TO_MB


@dataclass(frozen=True)
class ShardedClusterConfig:
    """One sharded replay scenario (JSON-serialisable both ways)."""

    invocations: int = 20_000
    functions: int = 8
    seed: int = 13
    tile_invocations: int = 4000
    workers: int = 4
    shards: int = 2
    scheduler: str = "FaaSBatch"
    window_ms: float = 200.0
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY

    def __post_init__(self) -> None:
        if self.invocations < 1:
            raise ConfigurationError(
                f"invocations must be >= 1, got {self.invocations}")
        if self.functions < 1:
            raise ConfigurationError(
                f"functions must be >= 1, got {self.functions}")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if not 1 <= self.shards <= self.workers:
            raise ConfigurationError(
                f"shards must be in [1, workers={self.workers}], "
                f"got {self.shards}")
        if self.scheduler not in SHARD_SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be one of {SHARD_SCHEDULERS}, "
                f"got {self.scheduler!r}")

    def to_dict(self) -> Dict[str, object]:
        return {"invocations": self.invocations,
                "functions": self.functions,
                "seed": self.seed,
                "tile_invocations": self.tile_invocations,
                "workers": self.workers,
                "shards": self.shards,
                "scheduler": self.scheduler,
                "window_ms": self.window_ms,
                "reservoir_capacity": self.reservoir_capacity}

    def worker_indices(self, shard_index: int) -> List[int]:
        """Global worker indices shard *shard_index* owns (striped)."""
        if not 0 <= shard_index < self.shards:
            raise ConfigurationError(
                f"shard_index must be in [0, {self.shards}), "
                f"got {shard_index}")
        return list(range(shard_index, self.workers, self.shards))

    def scheduler_factory(self) -> Callable[[], object]:
        build = SchedulerBuild(window_ms=self.window_ms)
        return lambda: build_scheduler(self.scheduler, build)


@dataclass
class ShardResult:
    """One shard's summary: mergeable stats, never invocation records."""

    shard_index: int
    worker_indices: List[int]
    per_worker_invocations: List[int]
    per_worker_containers: List[int]
    per_worker_memory_mb: List[float]
    submitted: int
    completion_ms: float
    wall_clock_s: float
    peak_rss_mb: float
    kernel_events: int
    sink: StreamingResultSink
    #: Bounded telemetry delta (counters, gauges, histogram buckets)
    #: shipped over the same JSONL protocol; ``None`` from pre-telemetry
    #: shard payloads.
    obs: Optional[TelemetrySnapshot] = None

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "shard_index": self.shard_index,
            "worker_indices": self.worker_indices,
            "per_worker_invocations": self.per_worker_invocations,
            "per_worker_containers": self.per_worker_containers,
            "per_worker_memory_mb": self.per_worker_memory_mb,
            "submitted": self.submitted,
            "completion_ms": self.completion_ms,
            "wall_clock_s": self.wall_clock_s,
            "peak_rss_mb": self.peak_rss_mb,
            "kernel_events": self.kernel_events,
            "sink": self.sink.to_dict()}
        if self.obs is not None:
            payload["obs"] = self.obs.to_dict()
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ShardResult":
        return cls(
            shard_index=int(payload["shard_index"]),  # type: ignore[arg-type]
            worker_indices=list(payload["worker_indices"]),  # type: ignore
            per_worker_invocations=list(payload["per_worker_invocations"]),  # type: ignore[arg-type]
            per_worker_containers=list(payload["per_worker_containers"]),  # type: ignore[arg-type]
            per_worker_memory_mb=list(payload["per_worker_memory_mb"]),  # type: ignore[arg-type]
            submitted=int(payload["submitted"]),  # type: ignore[arg-type]
            completion_ms=float(payload["completion_ms"]),  # type: ignore[arg-type]
            wall_clock_s=float(payload["wall_clock_s"]),  # type: ignore[arg-type]
            peak_rss_mb=float(payload["peak_rss_mb"]),  # type: ignore[arg-type]
            kernel_events=int(payload["kernel_events"]),  # type: ignore[arg-type]
            sink=StreamingResultSink.from_dict(
                payload["sink"]),  # type: ignore[arg-type]
            obs=(TelemetrySnapshot.from_dict(
                payload["obs"])  # type: ignore[arg-type]
                if payload.get("obs") is not None else None))


@dataclass
class ShardedClusterResult:
    """Merged outcome of every shard of one sharded replay."""

    config: ShardedClusterConfig
    shard_results: List[ShardResult]
    sink: StreamingResultSink
    wall_clock_s: float
    #: Order-independent merge of every shard's telemetry delta; ``None``
    #: when any shard predates the telemetry protocol.
    obs: Optional[TelemetrySnapshot] = None

    @property
    def completed(self) -> int:
        return self.sink.completed

    @property
    def completion_ms(self) -> float:
        return max(s.completion_ms for s in self.shard_results)

    @property
    def max_shard_rss_mb(self) -> float:
        return max(s.peak_rss_mb for s in self.shard_results)

    @property
    def kernel_events(self) -> int:
        return sum(s.kernel_events for s in self.shard_results)

    def per_worker_invocations(self) -> List[int]:
        """Global-worker-order completion counts (merged from all shards)."""
        counts = [0] * self.config.workers
        for shard in self.shard_results:
            for worker, count in zip(shard.worker_indices,
                                     shard.per_worker_invocations):
                counts[worker] = count
        return counts

    def to_cluster_result(self) -> ClusterResult:
        """The merged run as a plain :class:`ClusterResult` (global order)."""
        containers = [0] * self.config.workers
        memory = [0.0] * self.config.workers
        for shard in self.shard_results:
            for worker, value in zip(shard.worker_indices,
                                     shard.per_worker_containers):
                containers[worker] = value
            for worker, value in zip(shard.worker_indices,
                                     shard.per_worker_memory_mb):
                memory[worker] = value
        return ClusterResult(
            balancer_name="hash-partition",
            workers=self.config.workers,
            invocations=[],
            per_worker_invocations=self.per_worker_invocations(),
            per_worker_containers=containers,
            per_worker_memory_mb=memory,
            completion_ms=self.completion_ms,
            sink=self.sink)


def run_shard(config: ShardedClusterConfig, shard_index: int,
              progress: Optional[Callable[[int], None]] = None,
              machine_sizes: Optional[Sequence[WorkerSize]] = None,
              ) -> ShardResult:
    """Simulate shard *shard_index*'s worker stripe over the full stream.

    Every trace record is routed with the global hash partition; records
    owned by other shards are skipped without being realised.  Runs in
    the calling process — the subprocess entry point and the in-process
    test path both land here.
    """
    started = time.perf_counter()
    calibration = DEFAULT_CALIBRATION
    owned = config.worker_indices(shard_index)
    stream = tiled_fib_stream(invocations=config.invocations,
                              functions=config.functions,
                              seed=config.seed,
                              tile_invocations=config.tile_invocations)
    specs = fib_family_specs(config.functions)
    factory = config.scheduler_factory()
    sink = StreamingResultSink(reservoir_capacity=config.reservoir_capacity,
                               seed=config.seed + shard_index)
    env = Environment()
    # One shared Observability per shard: every worker platform on this
    # stripe publishes into the same registry (as a single-process run
    # would), so shard-final counter/gauge values sum exactly across
    # shards and the coordinator can reconstruct the one-process picture.
    obs = Observability()
    platforms: Dict[int, ServerlessPlatform] = {}
    for global_index in owned:
        size = (machine_sizes[global_index % len(machine_sizes)]
                if machine_sizes else
                WorkerSize(cores=calibration.worker_cores,
                           memory_gb=calibration.worker_memory_gb))
        scheduler = factory()
        cpu = build_cpu(env, scheduler.cpu_discipline, size.cores)
        machine = Machine(env, cores=size.cores, memory_gb=size.memory_gb,
                          cpu=cpu, retain_memory_series=False)
        platform = ServerlessPlatform(env, machine, calibration,
                                      obs=obs, retain_completed=False)
        for spec in specs:
            platform.register_function(spec)
        platform.result_sink = sink
        scheduler.start(platform)
        platforms[global_index] = platform

    submitted = [0]
    done_submitting = [False]
    completed = [0]
    all_done = env.event()

    def maybe_finish() -> None:
        if done_submitting[0] and completed[0] == submitted[0] \
                and not all_done.triggered:
            all_done.succeed(completed[0])

    def on_complete(_invocation) -> None:
        completed[0] += 1
        if progress is not None and completed[0] % PROGRESS_EVERY == 0:
            progress(completed[0])
        maybe_finish()

    for platform in platforms.values():
        platform.completion_listeners.append(on_complete)

    owned_set = set(owned)

    def owned_records():
        for record in stream:
            if stable_hash(record.function_id) % config.workers in owned_set:
                yield record

    def submit_owned(record) -> None:
        submitted[0] += 1
        platforms[stable_hash(record.function_id) % config.workers].submit(
            record)

    def finished_submitting() -> None:
        done_submitting[0] = True
        maybe_finish()

    ReplayInjector(env, owned_records(), submit_owned, finished_submitting)

    def waiter():
        yield all_done

    env.run_process(env.process(waiter(),
                                name=f"shard-{shard_index}-waiter"),
                    until=stream.end_ms + 2.0 * HOUR)
    if completed[0] != submitted[0]:
        raise SimulationError(
            f"shard {shard_index} timed out: {completed[0]} of "
            f"{submitted[0]} submitted invocations completed")

    return ShardResult(
        shard_index=shard_index,
        worker_indices=owned,
        per_worker_invocations=[platforms[w].completed_count for w in owned],
        per_worker_containers=[platforms[w].provisioned_containers()
                               for w in owned],
        per_worker_memory_mb=[platforms[w].machine.memory.peak_mb
                              for w in owned],
        submitted=submitted[0],
        completion_ms=env.now,
        wall_clock_s=round(time.perf_counter() - started, 3),
        peak_rss_mb=round(peak_rss_mb(), 1),
        kernel_events=env.events_processed,
        sink=sink,
        obs=obs.telemetry())


def merge_shard_results(config: ShardedClusterConfig,
                        shard_results: Sequence[ShardResult],
                        wall_clock_s: float) -> ShardedClusterResult:
    """Fold per-shard sinks and summaries into the cluster-wide result."""
    if len(shard_results) != config.shards:
        raise SimulationError(
            f"expected {config.shards} shard results, "
            f"got {len(shard_results)}")
    ordered = sorted(shard_results, key=lambda s: s.shard_index)
    if [s.shard_index for s in ordered] != list(range(config.shards)):
        raise SimulationError(
            f"shard indices {[s.shard_index for s in shard_results]} are "
            f"not a permutation of 0..{config.shards - 1}")
    total = sum(s.submitted for s in ordered)
    if total != config.invocations:
        raise SimulationError(
            f"shards submitted {total} invocations in total, trace has "
            f"{config.invocations} — worker stripes overlap or leak")
    sink = StreamingResultSink.merged([s.sink for s in ordered])
    obs = (TelemetrySnapshot.merged([s.obs for s in ordered])
           if all(s.obs is not None for s in ordered) else None)
    return ShardedClusterResult(config=config, shard_results=ordered,
                                sink=sink, wall_clock_s=wall_clock_s,
                                obs=obs)


# -- subprocess plumbing ----------------------------------------------------------


def _shard_main() -> int:
    """Child entry (``python -m repro.cluster.sharded``): spec on stdin."""
    spec = json.load(sys.stdin)
    config = ShardedClusterConfig(**spec["config"])
    shard_index = int(spec["shard_index"])

    def emit_progress(count: int) -> None:
        json.dump({"type": "progress", "shard": shard_index,
                   "completed": count, "rss_mb": round(peak_rss_mb(), 1)},
                  sys.stdout)
        sys.stdout.write("\n")
        sys.stdout.flush()

    result = run_shard(config, shard_index, progress=emit_progress)
    json.dump({"type": "result", "payload": result.to_payload()},
              sys.stdout)
    sys.stdout.write("\n")
    return 0


def _spawn_shard(config: ShardedClusterConfig,
                 shard_index: int) -> "subprocess.Popen[str]":
    import repro
    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    proc = subprocess.Popen([sys.executable, "-m", "repro.cluster.sharded"],
                            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, env=env, text=True)
    assert proc.stdin is not None
    proc.stdin.write(json.dumps({"config": config.to_dict(),
                                 "shard_index": shard_index}))
    proc.stdin.close()
    return proc


class _ShardReader(threading.Thread):
    """Drains one shard's stdout so no shard ever blocks on a full pipe."""

    def __init__(self, proc: "subprocess.Popen[str]", shard_index: int,
                 on_progress: Callable[[Dict[str, object]], None]) -> None:
        super().__init__(daemon=True)
        self.proc = proc
        self.shard_index = shard_index
        self.on_progress = on_progress
        self.result_payload: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None

    def run(self) -> None:
        assert self.proc.stdout is not None
        try:
            for line in self.proc.stdout:
                line = line.strip()
                if not line:
                    continue
                message = json.loads(line)
                if message.get("type") == "progress":
                    self.on_progress(message)
                elif message.get("type") == "result":
                    self.result_payload = message["payload"]
        except Exception as exc:  # surfaced by the coordinator
            self.error = f"{type(exc).__name__}: {exc}"


def run_sharded_cluster(config: ShardedClusterConfig,
                        isolate: bool = True,
                        log: Optional[Callable[[str], None]] = None,
                        ) -> ShardedClusterResult:
    """Run every shard (subprocesses by default) and merge the results.

    ``isolate=False`` runs the shards sequentially in this process —
    deterministic and convenient for tests, but per-shard RSS is then the
    process-wide high-water mark.
    """
    emit = log if log is not None else (lambda _msg: None)
    started = time.perf_counter()
    if not isolate:
        results = [run_shard(config, index)
                   for index in range(config.shards)]
        return merge_shard_results(
            config, results, round(time.perf_counter() - started, 3))

    def on_progress(message: Dict[str, object]) -> None:
        emit(f"shard {message['shard']}: {message['completed']} done, "
             f"rss {message['rss_mb']} MB")

    procs = [_spawn_shard(config, index) for index in range(config.shards)]
    readers = [_ShardReader(proc, index, on_progress)
               for index, proc in enumerate(procs)]
    for reader in readers:
        reader.start()
    results: List[ShardResult] = []
    failures: List[str] = []
    for index, (proc, reader) in enumerate(zip(procs, readers)):
        code = proc.wait()
        reader.join()
        assert proc.stderr is not None
        stderr = proc.stderr.read()
        if code != 0 or reader.result_payload is None:
            tail = "\n".join(stderr.strip().splitlines()[-12:])
            detail = reader.error or f"exit {code}"
            failures.append(f"shard {index} failed ({detail}):\n{tail}")
            continue
        results.append(ShardResult.from_payload(reader.result_payload))
    if failures:
        raise SimulationError("; ".join(failures))
    return merge_shard_results(
        config, results, round(time.perf_counter() - started, 3))


__all__ = [
    "PROGRESS_EVERY",
    "SHARD_SCHEDULERS",
    "ShardResult",
    "ShardedClusterConfig",
    "ShardedClusterResult",
    "merge_shard_results",
    "peak_rss_mb",
    "run_shard",
    "run_sharded_cluster",
]


if __name__ == "__main__":
    sys.exit(_shard_main())
