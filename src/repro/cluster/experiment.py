"""Cluster experiments: several workers, one arrival stream, one balancer.

Each worker is a full single-machine platform (its own CPU, memory, pool
and scheduler instance); the cluster gateway replays the trace and routes
every request through the balancer.  The headline question this answers:
how much of FaaSBatch's benefit survives routing that scatters a
function's burst across workers? (See ``benchmarks/test_cluster_routing.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import Scheduler
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import SampleStats
from repro.common.units import HOUR
from repro.cluster.balancer import Balancer, make_balancer
from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.model.function import FunctionSpec, Invocation
from repro.platformsim.platform import ServerlessPlatform
from repro.sim.kernel import Environment
from repro.sim.machine import Machine, build_cpu
from repro.workload.trace import Trace

#: Builds a fresh scheduler per worker (schedulers hold per-platform state).
SchedulerFactory = Callable[[], Scheduler]


@dataclass
class ClusterResult:
    """Aggregate and per-worker outcome of one cluster run."""

    balancer_name: str
    workers: int
    invocations: List[Invocation]
    per_worker_invocations: List[int]
    per_worker_containers: List[int]
    per_worker_memory_mb: List[float]
    completion_ms: float

    @property
    def total_containers(self) -> int:
        return sum(self.per_worker_containers)

    @property
    def total_memory_mb(self) -> float:
        return sum(self.per_worker_memory_mb)

    def latency_stats(self) -> SampleStats:
        return SampleStats(inv.end_to_end_ms for inv in self.invocations)

    def load_imbalance(self) -> float:
        """max/mean of per-worker invocation counts (1.0 = perfect)."""
        counts = self.per_worker_invocations
        mean = sum(counts) / len(counts)
        if mean == 0:
            raise SimulationError("no invocations routed")
        return max(counts) / mean

    def summary_row(self) -> List[object]:
        stats = self.latency_stats()
        return [self.balancer_name, self.workers,
                self.total_containers,
                round(self.total_memory_mb, 1),
                round(stats.median, 1),
                round(stats.percentile(98.0), 1),
                round(self.load_imbalance(), 2)]

    SUMMARY_HEADERS = ["balancer", "workers", "containers", "peak_mem_MB",
                       "p50_ms", "p98_ms", "imbalance"]


def run_cluster_experiment(scheduler_factory: SchedulerFactory,
                           trace: Trace,
                           functions: Sequence[FunctionSpec],
                           workers: int = 4,
                           balancer: str = "function-affinity",
                           calibration: Calibration = DEFAULT_CALIBRATION,
                           timeout_ms: Optional[float] = None,
                           ) -> ClusterResult:
    """Run *trace* over a cluster of *workers* identical machines."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if timeout_ms is None:
        timeout_ms = trace.end_ms + 2.0 * HOUR
    env = Environment()
    platforms: List[ServerlessPlatform] = []
    schedulers: List[Scheduler] = []
    for _ in range(workers):
        scheduler = scheduler_factory()
        cpu = build_cpu(env, scheduler.cpu_discipline,
                        calibration.worker_cores)
        machine = Machine(env, cores=calibration.worker_cores,
                          memory_gb=calibration.worker_memory_gb, cpu=cpu)
        platform = ServerlessPlatform(env, machine, calibration)
        for spec in functions:
            platform.register_function(spec)
        scheduler.start(platform)
        platforms.append(platform)
        schedulers.append(scheduler)

    router: Balancer = make_balancer(balancer, platforms)

    all_done = env.event()
    completed: List[Invocation] = []

    def on_complete(invocation: Invocation) -> None:
        completed.append(invocation)
        if len(completed) == len(trace):
            all_done.succeed(len(completed))

    for platform in platforms:
        platform.completion_listeners.append(on_complete)

    def replay():
        for record in trace:
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            router.pick(record.function_id).submit(record)

    env.process(replay(), name="cluster-gateway")

    def waiter():
        yield all_done

    env.run_process(env.process(waiter(), name="cluster-waiter"),
                    until=timeout_ms)

    return ClusterResult(
        balancer_name=router.name,
        workers=workers,
        invocations=completed,
        per_worker_invocations=[len(p.completed) for p in platforms],
        per_worker_containers=[p.provisioned_containers()
                               for p in platforms],
        per_worker_memory_mb=[p.machine.memory.peak_mb for p in platforms],
        completion_ms=env.now)


def compare_balancers(scheduler_factory: SchedulerFactory,
                      trace: Trace,
                      functions: Sequence[FunctionSpec],
                      workers: int = 4,
                      balancers: Sequence[str] = ("round-robin",
                                                  "least-loaded",
                                                  "function-affinity"),
                      calibration: Calibration = DEFAULT_CALIBRATION,
                      ) -> Dict[str, ClusterResult]:
    """Run the same workload under several routing policies."""
    return {name: run_cluster_experiment(
                scheduler_factory, trace, functions, workers=workers,
                balancer=name, calibration=calibration)
            for name in balancers}
