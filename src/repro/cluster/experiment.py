"""Cluster experiments: several workers, one arrival stream, one balancer.

Each worker is a full single-machine platform (its own CPU, memory, pool
and scheduler instance); the cluster gateway replays the trace and routes
every request through the balancer.  The headline question this answers:
how much of FaaSBatch's benefit survives routing that scatters a
function's burst across workers? (See ``benchmarks/test_cluster_routing.py``.)

Scale notes.  The runner accepts a :data:`~repro.workload.trace.TraceLike`
(materialized or streaming), publishes every completion into a
:class:`~repro.common.streaming.StreamingResultSink` and, with
``retain_invocations=False``, drops the per-invocation records — the
regime the million-invocation sharded replay (``repro.cluster.sharded``)
runs in.  Workers may be heterogeneous (``machine_sizes``) and a cluster
can grow mid-run via an :class:`~repro.cluster.autoscale.Autoscaler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import Scheduler
from repro.common.errors import ConfigurationError
from repro.common.stats import SampleStats
from repro.common.streaming import StreamingResultSink
from repro.common.units import HOUR
from repro.cluster.autoscale import Autoscaler
from repro.cluster.balancer import Balancer, make_balancer
from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.model.function import FunctionSpec, Invocation
from repro.platformsim.platform import ServerlessPlatform
from repro.sim.kernel import Environment
from repro.sim.machine import Machine, build_cpu
from repro.workload.trace import TraceLike

#: Builds a fresh scheduler per worker (schedulers hold per-platform state).
SchedulerFactory = Callable[[], Scheduler]


@dataclass(frozen=True)
class WorkerSize:
    """Machine shape of one worker (heterogeneous clusters mix these)."""

    cores: int
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.memory_gb <= 0:
            raise ConfigurationError(
                f"memory_gb must be > 0, got {self.memory_gb}")


@dataclass
class ClusterResult:
    """Aggregate and per-worker outcome of one cluster run."""

    balancer_name: str
    workers: int
    invocations: List[Invocation]
    per_worker_invocations: List[int]
    per_worker_containers: List[int]
    per_worker_memory_mb: List[float]
    completion_ms: float
    #: Online accounting (always populated by :func:`run_cluster_experiment`;
    #: the only latency record when ``retain_invocations=False``).
    sink: Optional[StreamingResultSink] = None
    #: ``(sim_ms, new_worker_count)`` for each autoscale growth step.
    scale_events: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def total_containers(self) -> int:
        return sum(self.per_worker_containers)

    @property
    def total_memory_mb(self) -> float:
        return sum(self.per_worker_memory_mb)

    def latency_stats(self) -> SampleStats:
        """End-to-end latency sample (exact while the sink's reservoir is).

        Prefers the online sink — identical to the materialized sample
        whenever the run fits the reservoir, and the only source once
        per-invocation records are dropped at scale.
        """
        if self.sink is not None:
            return self.sink.latency_stats()
        return SampleStats(inv.end_to_end_ms for inv in self.invocations)

    def load_imbalance(self) -> float:
        """max/mean of per-worker invocation counts (1.0 = perfect).

        An all-idle cluster (no invocations routed — e.g. a shard that
        owns no hot workers, or a scale-test warm-up window) is *balanced*,
        not an error: returns 0.0 rather than raising.
        """
        counts = self.per_worker_invocations
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        return max(counts) / mean

    def summary_row(self) -> List[object]:
        stats = self.latency_stats()
        return [self.balancer_name, self.workers,
                self.total_containers,
                round(self.total_memory_mb, 1),
                round(stats.median, 1),
                round(stats.percentile(98.0), 1),
                round(self.load_imbalance(), 2)]

    SUMMARY_HEADERS = ["balancer", "workers", "containers", "peak_mem_MB",
                       "p50_ms", "p98_ms", "imbalance"]


def run_cluster_experiment(scheduler_factory: SchedulerFactory,
                           trace: TraceLike,
                           functions: Sequence[FunctionSpec],
                           workers: int = 4,
                           balancer: str = "function-affinity",
                           calibration: Calibration = DEFAULT_CALIBRATION,
                           timeout_ms: Optional[float] = None,
                           machine_sizes: Optional[Sequence[WorkerSize]] = None,
                           autoscaler: Optional[Autoscaler] = None,
                           retain_invocations: bool = True,
                           sink: Optional[StreamingResultSink] = None,
                           ) -> ClusterResult:
    """Run *trace* over a cluster of *workers* machines.

    ``machine_sizes`` (cycled over worker index) makes the cluster
    heterogeneous; omitted, every worker gets the calibration shape.
    ``autoscaler`` is polled every ``check_interval_ms`` of simulated time
    and may grow the cluster mid-run (scale-up only).  With
    ``retain_invocations=False`` no per-invocation record survives the
    run: all accounting flows through *sink* (one is created when not
    supplied) and ``result.invocations`` is empty.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if timeout_ms is None:
        timeout_ms = trace.end_ms + 2.0 * HOUR
    if sink is None:
        sink = StreamingResultSink()
    env = Environment()
    platforms: List[ServerlessPlatform] = []
    schedulers: List[Scheduler] = []
    completed: List[Invocation] = []
    done_total = [0]
    all_done = env.event()
    expected = len(trace)

    def on_complete(invocation: Invocation) -> None:
        done_total[0] += 1
        if retain_invocations:
            completed.append(invocation)
        if done_total[0] == expected:
            all_done.succeed(done_total[0])

    def size_of(index: int) -> WorkerSize:
        if machine_sizes:
            return machine_sizes[index % len(machine_sizes)]
        return WorkerSize(cores=calibration.worker_cores,
                          memory_gb=calibration.worker_memory_gb)

    def spawn_worker() -> ServerlessPlatform:
        size = size_of(len(platforms))
        scheduler = scheduler_factory()
        cpu = build_cpu(env, scheduler.cpu_discipline, size.cores)
        machine = Machine(env, cores=size.cores, memory_gb=size.memory_gb,
                          cpu=cpu,
                          retain_memory_series=retain_invocations)
        platform = ServerlessPlatform(env, machine, calibration,
                                      retain_completed=retain_invocations)
        for spec in functions:
            platform.register_function(spec)
        platform.result_sink = sink
        platform.completion_listeners.append(on_complete)
        scheduler.start(platform)
        platforms.append(platform)
        schedulers.append(scheduler)
        return platform

    for _ in range(workers):
        spawn_worker()

    router: Balancer = make_balancer(balancer, platforms)
    scale_events: List[Tuple[float, int]] = []

    def replay():
        for record in trace:
            delay = record.arrival_ms - env.now
            if delay > 0:
                yield env.timeout(delay)
            router.pick(record.function_id).submit(record)

    env.process(replay(), name="cluster-gateway")

    if autoscaler is not None:
        def autoscale_loop():
            while True:
                yield env.timeout(autoscaler.check_interval_ms)
                loads = [Balancer.load_of(p) for p in platforms]
                depths = [len(p.request_queue) for p in platforms]
                grow = autoscaler.workers_to_add(loads, depths)
                for _ in range(max(0, grow)):
                    router.add_worker(spawn_worker())
                    scale_events.append((env.now, len(platforms)))

        env.process(autoscale_loop(), name="cluster-autoscaler")

    def waiter():
        yield all_done

    env.run_process(env.process(waiter(), name="cluster-waiter"),
                    until=timeout_ms)

    return ClusterResult(
        balancer_name=router.name,
        workers=len(platforms),
        invocations=completed,
        per_worker_invocations=[p.completed_count for p in platforms],
        per_worker_containers=[p.provisioned_containers()
                               for p in platforms],
        per_worker_memory_mb=[p.machine.memory.peak_mb for p in platforms],
        completion_ms=env.now,
        sink=sink,
        scale_events=scale_events)


def compare_balancers(scheduler_factory: SchedulerFactory,
                      trace: TraceLike,
                      functions: Sequence[FunctionSpec],
                      workers: int = 4,
                      balancers: Sequence[str] = ("round-robin",
                                                  "least-loaded",
                                                  "function-affinity"),
                      calibration: Calibration = DEFAULT_CALIBRATION,
                      ) -> Dict[str, ClusterResult]:
    """Run the same workload under several routing policies."""
    return {name: run_cluster_experiment(
                scheduler_factory, trace, functions, workers=workers,
                balancer=name, calibration=calibration)
            for name in balancers}
