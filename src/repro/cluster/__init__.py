"""Cluster extension: multiple workers + routing policies (beyond §IV's scope)."""

from repro.cluster.autoscale import (
    Autoscaler,
    NullAutoscaler,
    ThresholdAutoscaler,
)
from repro.cluster.balancer import (
    BALANCERS,
    Balancer,
    FunctionAffinityBalancer,
    HashPartitionBalancer,
    LeastLoadedBalancer,
    RoundRobinBalancer,
    make_balancer,
    stable_hash,
)
from repro.cluster.experiment import (
    ClusterResult,
    WorkerSize,
    compare_balancers,
    run_cluster_experiment,
)

__all__ = [
    "BALANCERS",
    "Autoscaler",
    "Balancer",
    "ClusterResult",
    "FunctionAffinityBalancer",
    "HashPartitionBalancer",
    "LeastLoadedBalancer",
    "NullAutoscaler",
    "RoundRobinBalancer",
    "ThresholdAutoscaler",
    "WorkerSize",
    "compare_balancers",
    "make_balancer",
    "run_cluster_experiment",
    "stable_hash",
]
