"""Cluster extension: multiple workers + routing policies (beyond §IV's scope)."""

from repro.cluster.balancer import (
    BALANCERS,
    Balancer,
    FunctionAffinityBalancer,
    LeastLoadedBalancer,
    RoundRobinBalancer,
    make_balancer,
    stable_hash,
)
from repro.cluster.experiment import (
    ClusterResult,
    compare_balancers,
    run_cluster_experiment,
)

__all__ = [
    "BALANCERS",
    "Balancer",
    "ClusterResult",
    "FunctionAffinityBalancer",
    "LeastLoadedBalancer",
    "RoundRobinBalancer",
    "compare_balancers",
    "make_balancer",
    "run_cluster_experiment",
    "stable_hash",
]
