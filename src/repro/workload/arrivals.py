"""Arrival processes: Poisson background plus bursts.

The Azure traces show bursty arrival with tight temporal locality (Figs. 2
and 10).  These generators produce arrival timestamp lists (milliseconds)
from seeded RNGs, composable into the paper's workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.common.errors import WorkloadError


def iter_poisson_arrivals(rate_per_second: float, duration_ms: float,
                          rng: random.Random,
                          start_ms: float = 0.0) -> Iterator[float]:
    """Homogeneous Poisson arrivals over ``[start, start + duration)``,
    yielded one at a time (O(1) memory, same RNG consumption order as the
    materialized :func:`poisson_arrivals`)."""
    if rate_per_second < 0:
        raise WorkloadError(f"negative rate: {rate_per_second}")
    if duration_ms <= 0:
        raise WorkloadError(f"duration must be > 0, got {duration_ms}")
    if rate_per_second == 0:
        return
    mean_gap_ms = 1000.0 / rate_per_second
    t = start_ms
    while True:
        t += rng.expovariate(1.0 / mean_gap_ms) * 1.0
        if t >= start_ms + duration_ms:
            return
        yield t


def poisson_arrivals(rate_per_second: float, duration_ms: float,
                     rng: random.Random, start_ms: float = 0.0) -> List[float]:
    """Homogeneous Poisson arrivals over ``[start, start + duration)``."""
    return list(iter_poisson_arrivals(rate_per_second, duration_ms, rng,
                                      start_ms=start_ms))


@dataclass(frozen=True)
class Burst:
    """A burst of *count* arrivals spread over *width_ms* from *start_ms*."""

    start_ms: float
    width_ms: float
    count: int

    def sample(self, rng: random.Random) -> List[float]:
        if self.count < 0 or self.width_ms <= 0:
            raise WorkloadError(f"invalid burst: {self}")
        return sorted(self.start_ms + rng.random() * self.width_ms
                      for _ in range(self.count))


def bursty_arrivals(duration_ms: float,
                    total: int,
                    bursts: Sequence[Burst],
                    rng: random.Random,
                    start_ms: float = 0.0) -> List[float]:
    """Bursts plus a uniform background, renormalised to exactly *total*.

    The background fills whatever the bursts do not account for; if the
    bursts already exceed *total*, a random subset of burst arrivals is
    kept so the result always has exactly *total* timestamps.
    """
    if total < 0:
        raise WorkloadError(f"negative total: {total}")
    arrivals: List[float] = []
    for burst in bursts:
        if not start_ms <= burst.start_ms < start_ms + duration_ms:
            raise WorkloadError(f"burst outside window: {burst}")
        arrivals.extend(burst.sample(rng))
    if len(arrivals) > total:
        arrivals = rng.sample(arrivals, total)
    background = total - len(arrivals)
    for _ in range(background):
        arrivals.append(start_ms + rng.random() * duration_ms)
    arrivals.sort()
    return arrivals


def iter_bursty_arrivals(duration_ms: float,
                         total: int,
                         bursts: Sequence[Burst],
                         rng: random.Random,
                         start_ms: float = 0.0) -> Iterator[float]:
    """Streaming view of :func:`bursty_arrivals`.

    A bursty window must be globally sorted before it can be replayed, so
    one window's arrivals are still realized internally — memory is
    bounded by the *window* volume (hundreds to a few thousand points),
    never by the number of windows a long replay tiles together.  Yields
    exactly the sequence :func:`bursty_arrivals` returns for the same RNG.
    """
    yield from bursty_arrivals(duration_ms=duration_ms, total=total,
                               bursts=bursts, rng=rng, start_ms=start_ms)


def per_second_counts(arrivals_ms: Sequence[float],
                      duration_ms: float,
                      start_ms: float = 0.0) -> List[int]:
    """Bucket arrivals into per-second counts (the Fig. 10 series)."""
    seconds = int(duration_ms // 1000) + (1 if duration_ms % 1000 else 0)
    counts = [0] * seconds
    for arrival in arrivals_ms:
        index = int((arrival - start_ms) // 1000)
        if not 0 <= index < seconds:
            raise WorkloadError(
                f"arrival {arrival} outside [{start_ms}, "
                f"{start_ms + duration_ms})")
        counts[index] += 1
    return counts
