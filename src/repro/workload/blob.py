"""Azure Blob access inter-arrival-time model (Fig. 3).

The paper analyses the Azure Blob trace (14 days, 33.1 M invocations,
44.3 M accesses) and reports the CDF of inter-arrival times (IaT) between
repeated accesses to the same blob: "nearly 80 % of the objects are
repeatedly accessed within 100 ms, while the remaining 10 % are revisited
ranging from 100 ms to 1000 ms" — i.e. bursty re-access, the pattern that
makes in-container client caching profitable.

We reproduce that CDF with a three-component mixture:

* ~80 % *burst* re-accesses — log-uniform in [1 ms, 100 ms);
* ~10 % *near* re-accesses — log-uniform in [100 ms, 1000 ms);
* ~10 % *far* re-accesses — log-uniform in [1 s, 10 min).

Each of the 14 "days" perturbs the mixture weights slightly (the grey
curves of Fig. 3); the combined model uses the nominal weights (the blue
curve).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.common.cdf import EmpiricalCdf
from repro.common.errors import WorkloadError
from repro.common.units import MINUTE, SECOND

#: Nominal mixture: (weight, lower_ms, upper_ms).
NOMINAL_MIXTURE = (
    (0.80, 1.0, 100.0),
    (0.10, 100.0, SECOND),
    (0.10, SECOND, 10 * MINUTE),
)
TRACE_DAYS = 14


def _log_uniform(rng: random.Random, lower: float, upper: float) -> float:
    return math.exp(rng.uniform(math.log(lower), math.log(upper)))


@dataclass(frozen=True)
class BlobIatModel:
    """One day's (or the combined) IaT mixture."""

    burst_weight: float
    near_weight: float
    far_weight: float

    def __post_init__(self) -> None:
        total = self.burst_weight + self.near_weight + self.far_weight
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"mixture weights sum to {total}, not 1")

    def sample(self, rng: random.Random) -> float:
        """Draw one inter-arrival time in milliseconds."""
        roll = rng.random()
        if roll < self.burst_weight:
            lower, upper = NOMINAL_MIXTURE[0][1], NOMINAL_MIXTURE[0][2]
        elif roll < self.burst_weight + self.near_weight:
            lower, upper = NOMINAL_MIXTURE[1][1], NOMINAL_MIXTURE[1][2]
        else:
            lower, upper = NOMINAL_MIXTURE[2][1], NOMINAL_MIXTURE[2][2]
        return _log_uniform(rng, lower, upper)

    def sample_many(self, count: int, rng: random.Random) -> List[float]:
        if count <= 0:
            raise WorkloadError(f"count must be > 0, got {count}")
        return [self.sample(rng) for _ in range(count)]


def combined_model() -> BlobIatModel:
    """The all-days model (Fig. 3's blue curve)."""
    weights = [component[0] for component in NOMINAL_MIXTURE]
    return BlobIatModel(*weights)


def day_model(day: int, seed: int = 3) -> BlobIatModel:
    """One day's model with slightly perturbed weights (grey curves)."""
    if not 1 <= day <= TRACE_DAYS:
        raise WorkloadError(f"day must be in [1, {TRACE_DAYS}], got {day}")
    rng = random.Random(f"{seed}:{day}")
    burst = min(0.88, max(0.70, NOMINAL_MIXTURE[0][0]
                          + rng.uniform(-0.06, 0.06)))
    near = min(0.2, max(0.05, NOMINAL_MIXTURE[1][0]
                        + rng.uniform(-0.03, 0.03)))
    far = 1.0 - burst - near
    return BlobIatModel(burst, near, far)


def iat_cdf(model: BlobIatModel, samples: int = 20_000,
            seed: int = 7) -> EmpiricalCdf:
    """Sample *samples* IaTs from *model* and return their empirical CDF."""
    rng = random.Random(seed)
    return EmpiricalCdf(model.sample_many(samples, rng))
