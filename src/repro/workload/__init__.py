"""Workload synthesis from the paper's published Azure-trace characteristics."""

from repro.workload.arrivals import (
    Burst,
    bursty_arrivals,
    per_second_counts,
    poisson_arrivals,
)
from repro.workload.azure import (
    IO_REPLAY_INVOCATIONS,
    REPLAY_TOTAL_INVOCATIONS,
    DailyPatternGenerator,
    replay_minute_arrivals,
)
from repro.workload.blob import (
    BlobIatModel,
    combined_model,
    day_model,
    iat_cdf,
)
from repro.workload.durations import (
    DURATION_BUCKETS,
    FIB_DURATION_MS,
    DurationSampler,
    bucket_probabilities,
    duration_bucket_index,
    empirical_bucket_fractions,
    fib_duration_ms,
)
from repro.workload.generator import (
    FIB_FUNCTION_ID,
    IO_FUNCTION_ID,
    cpu_workload_trace,
    fib_family_specs,
    fib_function_spec,
    io_function_spec,
    io_workload_trace,
    multi_function_trace,
)
from repro.workload.trace import Trace, TraceRecord

__all__ = [
    "Burst",
    "BlobIatModel",
    "DURATION_BUCKETS",
    "DailyPatternGenerator",
    "DurationSampler",
    "FIB_DURATION_MS",
    "FIB_FUNCTION_ID",
    "IO_FUNCTION_ID",
    "IO_REPLAY_INVOCATIONS",
    "REPLAY_TOTAL_INVOCATIONS",
    "Trace",
    "TraceRecord",
    "bucket_probabilities",
    "bursty_arrivals",
    "combined_model",
    "cpu_workload_trace",
    "day_model",
    "duration_bucket_index",
    "empirical_bucket_fractions",
    "fib_duration_ms",
    "fib_family_specs",
    "fib_function_spec",
    "iat_cdf",
    "io_function_spec",
    "io_workload_trace",
    "multi_function_trace",
    "per_second_counts",
    "poisson_arrivals",
    "replay_minute_arrivals",
]
