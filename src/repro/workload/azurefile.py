"""Reader for the real Azure Functions trace file format.

The paper's workloads are derived from the public Azure Functions trace
(Shahrad et al., ATC'20).  This repository ships a synthesiser for its
published marginals (:mod:`repro.workload.azure`), but users who have the
actual trace files can replay them directly through this module.  Two of
the release's CSV schemas are supported:

* ``invocations_per_function_md.anon.dXX.csv`` — per-function minute-level
  invocation counts: ``HashOwner, HashApp, HashFunction, Trigger,
  1, 2, ..., 1440``;
* ``function_durations_percentiles.anon.dXX.csv`` — per-function duration
  statistics: ``HashOwner, HashApp, HashFunction, Average, Count, Minimum,
  Maximum, percentile_Average_0, percentile_Average_1,
  percentile_Average_25, percentile_Average_50, percentile_Average_75,
  percentile_Average_99, percentile_Average_100``.

:class:`AzureTraceBuilder` joins the two, picks the hottest functions, and
emits a :class:`~repro.workload.trace.Trace` plus matching
:class:`~repro.model.function.FunctionSpec` objects whose durations are
drawn from each function's *piecewise-linear inverse CDF* fitted to the
published percentiles.

:func:`write_sample_files` writes small, well-formed sample files so the
format (and this module) is exercised end-to-end without the 100+ GB
download.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import WorkloadError
from repro.common.units import MINUTE
from repro.model.function import FunctionKind, FunctionSpec
from repro.model.workprofile import WorkProfile, cpu_profile
from repro.workload.trace import Trace, TraceRecord

MINUTES_PER_DAY = 1440

INVOCATION_HEADER_PREFIX = ["HashOwner", "HashApp", "HashFunction",
                            "Trigger"]
DURATION_HEADER = [
    "HashOwner", "HashApp", "HashFunction", "Average", "Count", "Minimum",
    "Maximum", "percentile_Average_0", "percentile_Average_1",
    "percentile_Average_25", "percentile_Average_50",
    "percentile_Average_75", "percentile_Average_99",
    "percentile_Average_100",
]
#: (cumulative probability, column) pairs of the duration percentiles.
PERCENTILE_POINTS: Tuple[Tuple[float, str], ...] = (
    (0.00, "percentile_Average_0"),
    (0.01, "percentile_Average_1"),
    (0.25, "percentile_Average_25"),
    (0.50, "percentile_Average_50"),
    (0.75, "percentile_Average_75"),
    (0.99, "percentile_Average_99"),
    (1.00, "percentile_Average_100"),
)


@dataclass(frozen=True)
class FunctionInvocations:
    """One row of the invocations-per-function file."""

    owner: str
    app: str
    function: str
    trigger: str
    minute_counts: Tuple[int, ...]

    @property
    def function_key(self) -> str:
        return f"{self.app}:{self.function}"

    @property
    def daily_total(self) -> int:
        return sum(self.minute_counts)


@dataclass(frozen=True)
class FunctionDurations:
    """One row of the duration-percentiles file (milliseconds)."""

    owner: str
    app: str
    function: str
    average_ms: float
    count: int
    percentiles: Tuple[Tuple[float, float], ...]  # (probability, ms)

    @property
    def function_key(self) -> str:
        return f"{self.app}:{self.function}"

    def sample_duration_ms(self, rng: random.Random) -> float:
        """Inverse-CDF sample from the piecewise-linear percentile fit."""
        roll = rng.random()
        points = self.percentiles
        for (p_low, v_low), (p_high, v_high) in zip(points, points[1:]):
            if roll <= p_high:
                if p_high == p_low:
                    return v_high
                frac = (roll - p_low) / (p_high - p_low)
                return v_low + frac * (v_high - v_low)
        return points[-1][1]


def read_invocations_csv(path: Path | str) -> List[FunctionInvocations]:
    """Parse an ``invocations_per_function_md`` file."""
    rows: List[FunctionInvocations] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or \
                header[:4] != INVOCATION_HEADER_PREFIX or \
                len(header) != 4 + MINUTES_PER_DAY:
            raise WorkloadError(
                f"{path}: not an invocations-per-function file "
                f"(header {header[:6] if header else None}...)")
        for line_number, row in enumerate(reader, start=2):
            if len(row) != 4 + MINUTES_PER_DAY:
                raise WorkloadError(
                    f"{path}:{line_number}: expected "
                    f"{4 + MINUTES_PER_DAY} columns, got {len(row)}")
            try:
                counts = tuple(int(cell) for cell in row[4:])
            except ValueError as exc:
                raise WorkloadError(
                    f"{path}:{line_number}: non-integer count") from exc
            rows.append(FunctionInvocations(
                owner=row[0], app=row[1], function=row[2], trigger=row[3],
                minute_counts=counts))
    return rows


def read_durations_csv(path: Path | str) -> List[FunctionDurations]:
    """Parse a ``function_durations_percentiles`` file."""
    rows: List[FunctionDurations] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != DURATION_HEADER:
            raise WorkloadError(
                f"{path}: not a duration-percentiles file "
                f"(header {reader.fieldnames})")
        for line_number, row in enumerate(reader, start=2):
            try:
                percentiles = tuple(
                    (probability, float(row[column]))
                    for probability, column in PERCENTILE_POINTS)
                record = FunctionDurations(
                    owner=row["HashOwner"], app=row["HashApp"],
                    function=row["HashFunction"],
                    average_ms=float(row["Average"]),
                    count=int(float(row["Count"])),
                    percentiles=percentiles)
            except (KeyError, ValueError) as exc:
                raise WorkloadError(
                    f"{path}:{line_number}: malformed row") from exc
            values = [v for _p, v in record.percentiles]
            if values != sorted(values):
                raise WorkloadError(
                    f"{path}:{line_number}: percentiles not monotone")
            rows.append(record)
    return rows


class AzureTraceBuilder:
    """Joins the two files and builds replayable traces."""

    def __init__(self,
                 invocations: Sequence[FunctionInvocations],
                 durations: Sequence[FunctionDurations],
                 seed: int = 0) -> None:
        if not invocations:
            raise WorkloadError("no invocation rows supplied")
        self._invocations = {row.function_key: row for row in invocations}
        self._durations = {row.function_key: row for row in durations}
        self._seed = seed

    @classmethod
    def from_files(cls, invocations_path: Path | str,
                   durations_path: Path | str,
                   seed: int = 0) -> "AzureTraceBuilder":
        return cls(read_invocations_csv(invocations_path),
                   read_durations_csv(durations_path), seed=seed)

    def hottest_functions(self, count: int) -> List[str]:
        """Function keys by descending daily invocation volume."""
        if count < 1:
            raise WorkloadError(f"count must be >= 1, got {count}")
        ordered = sorted(self._invocations.values(),
                         key=lambda row: (-row.daily_total,
                                          row.function_key))
        return [row.function_key for row in ordered[:count]]

    def build_trace(self,
                    function_keys: Optional[Sequence[str]] = None,
                    start_minute: int = 0,
                    end_minute: int = MINUTES_PER_DAY) -> Trace:
        """Expand minute counts into a timestamped trace.

        Invocations within a minute are spread uniformly (seeded), which is
        the finest granularity the released trace supports.
        """
        if not 0 <= start_minute < end_minute <= MINUTES_PER_DAY:
            raise WorkloadError(
                f"bad minute range [{start_minute}, {end_minute})")
        keys = (list(function_keys) if function_keys is not None
                else list(self._invocations))
        records: List[TraceRecord] = []
        for key in keys:
            row = self._invocations.get(key)
            if row is None:
                raise WorkloadError(f"unknown function {key!r}")
            rng = random.Random(f"{self._seed}:{key}")
            for minute in range(start_minute, end_minute):
                count = row.minute_counts[minute]
                base_ms = (minute - start_minute) * MINUTE
                for _ in range(count):
                    records.append(TraceRecord(
                        arrival_ms=base_ms + rng.random() * MINUTE,
                        function_id=key,
                        payload=None))
        if not records:
            raise WorkloadError("selected range contains no invocations")
        return Trace(records)

    def build_specs(self, function_keys: Sequence[str],
                    cpu_limit: Optional[float] = None) -> List[FunctionSpec]:
        """Function specs whose durations follow the percentile fits.

        Each spec samples a fresh duration per invocation from the
        function's inverse CDF (seeded independently per function, so runs
        stay deterministic).
        """
        specs: List[FunctionSpec] = []
        for key in function_keys:
            durations = self._durations.get(key)
            if durations is None:
                raise WorkloadError(f"no duration row for {key!r}")
            rng = random.Random(f"{self._seed}:durations:{key}")

            def profile(payload: object,
                        _durations: FunctionDurations = durations,
                        _rng: random.Random = rng) -> WorkProfile:
                return cpu_profile(max(_durations.sample_duration_ms(_rng),
                                       0.01))

            specs.append(FunctionSpec(function_id=key,
                                      kind=FunctionKind.CPU,
                                      profile_factory=profile,
                                      cpu_limit=cpu_limit))
        return specs


def write_sample_files(directory: Path | str,
                       functions: int = 5,
                       seed: int = 42) -> Tuple[Path, Path]:
    """Write small, schema-correct sample files; returns their paths.

    The sample mimics the real trace's character: a few hot, bursty
    functions and a long tail, durations skewed like Fig. 9.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    invocations_path = directory / "invocations_per_function_md.sample.csv"
    durations_path = directory / "function_durations_percentiles.sample.csv"

    names = [(f"owner{i % 2}", f"app{i}", f"fn{i}")
             for i in range(functions)]

    with open(invocations_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(INVOCATION_HEADER_PREFIX
                        + [str(m) for m in range(1, MINUTES_PER_DAY + 1)])
        for rank, (owner, app, fn) in enumerate(names):
            counts = [0] * MINUTES_PER_DAY
            episodes = rng.randint(2, 5)
            intensity = max(1.0, 20.0 / (rank + 1))
            for _ in range(episodes):
                start = rng.randrange(0, MINUTES_PER_DAY - 30)
                for minute in range(start, start + rng.randint(5, 30)):
                    counts[minute] += int(rng.expovariate(1.0 / intensity))
            writer.writerow([owner, app, fn, "http"] + counts)

    with open(durations_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(DURATION_HEADER)
        for owner, app, fn in names:
            median = rng.choice([15.0, 40.0, 120.0, 300.0, 900.0])
            spread = rng.uniform(1.5, 4.0)
            percentiles = [median / spread ** 2, median / spread,
                           median / 1.3, median, median * 1.4,
                           median * spread, median * spread ** 2]
            count = rng.randint(500, 5_000)
            writer.writerow([owner, app, fn,
                             round(median * 1.1, 2), count,
                             round(percentiles[0], 2),
                             round(percentiles[-1], 2)]
                            + [round(p, 2) for p in percentiles])
    return invocations_path, durations_path
