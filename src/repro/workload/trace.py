"""Trace records and CSV persistence.

A *trace* is the input to an experiment: a time-ordered list of invocation
requests (arrival timestamp, function id, payload).  Traces are plain data;
the generator builds them, the platform replays them, and the CSV round trip
lets benchmark inputs be inspected and pinned as artefacts.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.common.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One invocation request in a workload trace."""

    arrival_ms: float
    function_id: str
    payload: object = None

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise WorkloadError(f"negative arrival time: {self.arrival_ms}")
        if not self.function_id:
            raise WorkloadError("empty function_id")


class Trace:
    """A time-ordered, immutable sequence of :class:`TraceRecord`."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        ordered = sorted(records, key=lambda r: r.arrival_ms)
        if not ordered:
            raise WorkloadError("a trace needs at least one record")
        self._records: Sequence[TraceRecord] = tuple(ordered)

    def __iter__(self):
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def duration_ms(self) -> float:
        return self._records[-1].arrival_ms - self._records[0].arrival_ms

    @property
    def start_ms(self) -> float:
        """Absolute timestamp of the first arrival."""
        return self._records[0].arrival_ms

    @property
    def end_ms(self) -> float:
        """Absolute timestamp of the last arrival (replay runs until here)."""
        return self._records[-1].arrival_ms

    @property
    def function_ids(self) -> List[str]:
        """Distinct function ids, in first-appearance order."""
        seen: List[str] = []
        for record in self._records:
            if record.function_id not in seen:
                seen.append(record.function_id)
        return seen

    def head(self, count: int) -> "Trace":
        """The first *count* records (the paper's "first 400 invocations")."""
        if count <= 0:
            raise WorkloadError(f"count must be > 0, got {count}")
        return Trace(self._records[:count])

    def records(self) -> Sequence[TraceRecord]:
        return self._records

    # -- persistence ------------------------------------------------------------

    def to_csv(self, path: Path | str) -> None:
        """Write the trace as CSV (payloads JSON-encoded)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_ms", "function_id", "payload_json"])
            for record in self._records:
                writer.writerow([record.arrival_ms, record.function_id,
                                 json.dumps(record.payload)])

    @classmethod
    def from_csv(cls, path: Path | str) -> "Trace":
        """Read a trace previously written by :meth:`to_csv`."""
        records: List[TraceRecord] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["arrival_ms", "function_id", "payload_json"]:
                raise WorkloadError(f"unrecognised trace header: {header}")
            for row in reader:
                if len(row) != 3:
                    raise WorkloadError(f"malformed trace row: {row}")
                records.append(TraceRecord(
                    arrival_ms=float(row[0]),
                    function_id=row[1],
                    payload=json.loads(row[2])))
        return cls(records)
