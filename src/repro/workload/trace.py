"""Trace records, streaming traces and CSV persistence.

A *trace* is the input to an experiment: a time-ordered sequence of
invocation requests (arrival timestamp, function id, payload).  Two
shapes exist:

* :class:`Trace` — fully materialized, sortable, indexable; right for the
  paper-scale workloads (hundreds to tens of thousands of records).
* :class:`TraceStream` — a *generator factory* plus metadata.  Iterating
  never materializes the records, so million-invocation replays run in
  bounded memory; each ``iter()`` call invokes the factory again, which is
  the deterministic-rewind contract (same factory ⇒ byte-identical record
  sequence every pass).  Passing a raw generator instead of a factory is
  rejected loudly — a generator silently yields nothing on its second
  consumption, exactly the bug class the factory contract exists to kill.

Experiment runners only need ``len(trace)``, ``trace.end_ms`` and
iteration, which both shapes provide (:data:`TraceLike`).
"""

from __future__ import annotations

import csv
import json
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.common.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One invocation request in a workload trace."""

    arrival_ms: float
    function_id: str
    payload: object = None

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise WorkloadError(f"negative arrival time: {self.arrival_ms}")
        if not self.function_id:
            raise WorkloadError("empty function_id")


class Trace:
    """A time-ordered, immutable sequence of :class:`TraceRecord`."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        ordered = sorted(records, key=lambda r: r.arrival_ms)
        if not ordered:
            raise WorkloadError("a trace needs at least one record")
        self._records: Sequence[TraceRecord] = tuple(ordered)

    def __iter__(self):
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def duration_ms(self) -> float:
        return self._records[-1].arrival_ms - self._records[0].arrival_ms

    @property
    def start_ms(self) -> float:
        """Absolute timestamp of the first arrival."""
        return self._records[0].arrival_ms

    @property
    def end_ms(self) -> float:
        """Absolute timestamp of the last arrival (replay runs until here)."""
        return self._records[-1].arrival_ms

    @property
    def function_ids(self) -> List[str]:
        """Distinct function ids, in first-appearance order."""
        seen: List[str] = []
        for record in self._records:
            if record.function_id not in seen:
                seen.append(record.function_id)
        return seen

    def head(self, count: int) -> "Trace":
        """The first *count* records (the paper's "first 400 invocations")."""
        if count <= 0:
            raise WorkloadError(f"count must be > 0, got {count}")
        return Trace(self._records[:count])

    def records(self) -> Sequence[TraceRecord]:
        return self._records

    # -- persistence ------------------------------------------------------------

    def to_csv(self, path: Path | str) -> None:
        """Write the trace as CSV (payloads JSON-encoded)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_ms", "function_id", "payload_json"])
            for record in self._records:
                writer.writerow([record.arrival_ms, record.function_id,
                                 json.dumps(record.payload)])

    @classmethod
    def from_csv(cls, path: Path | str) -> "Trace":
        """Read a trace previously written by :meth:`to_csv`."""
        records: List[TraceRecord] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["arrival_ms", "function_id", "payload_json"]:
                raise WorkloadError(f"unrecognised trace header: {header}")
            for row in reader:
                if len(row) != 3:
                    raise WorkloadError(f"malformed trace row: {row}")
                records.append(TraceRecord(
                    arrival_ms=float(row[0]),
                    function_id=row[1],
                    payload=json.loads(row[2])))
        return cls(records)


class TraceStream:
    """A bounded-memory, deterministically re-iterable trace.

    ``factory`` is a zero-argument callable returning a *fresh* iterator of
    time-ordered :class:`TraceRecord`; ``count`` and ``end_ms`` are the
    synthesis-known totals the experiment runners need without consuming
    the stream.  Every ``iter()`` re-invokes the factory, so a stream can
    be replayed any number of times and always yields the identical
    sequence — and a factory that hands back the same exhausted iterator
    twice (the classic generator-reuse bug) raises instead of silently
    yielding nothing.
    """

    def __init__(self, factory: Callable[[], Iterator[TraceRecord]],
                 count: int, end_ms: float, start_ms: float = 0.0) -> None:
        if not callable(factory):
            raise WorkloadError(
                "TraceStream needs a generator *factory* (a callable "
                "returning a fresh iterator), not an iterator — a bare "
                "generator would silently yield nothing when consumed "
                "twice")
        if count < 1:
            raise WorkloadError(f"a trace needs at least one record, "
                                f"got count={count}")
        if end_ms < start_ms:
            raise WorkloadError(
                f"end_ms {end_ms} precedes start_ms {start_ms}")
        self._factory = factory
        self._count = count
        self._start_ms = start_ms
        self._end_ms = end_ms
        self._last_iterator: Optional[weakref.ref] = None

    def __iter__(self) -> Iterator[TraceRecord]:
        iterator = self._factory()
        if iterator is None or not hasattr(iterator, "__next__"):
            raise WorkloadError(
                "TraceStream factory must return an iterator")
        # A weakref (not id()) so a *collected* previous iterator whose id
        # got recycled is not mistaken for reuse.
        if self._last_iterator is not None and self._last_iterator() is iterator:
            raise WorkloadError(
                "TraceStream factory returned the same iterator object "
                "twice; it would be exhausted — return a fresh generator "
                "per call")
        try:
            self._last_iterator = weakref.ref(iterator)
        except TypeError:  # non-weakrefable iterators skip the guard
            self._last_iterator = None
        return self._checked(iterator)

    def _checked(self, iterator: Iterator[TraceRecord]
                 ) -> Iterator[TraceRecord]:
        """Validate ordering/count while streaming (O(1) state)."""
        yielded = 0
        previous = float("-inf")
        for record in iterator:
            if record.arrival_ms < previous:
                raise WorkloadError(
                    f"stream out of order: {record.arrival_ms} after "
                    f"{previous}")
            previous = record.arrival_ms
            yielded += 1
            if yielded > self._count:
                raise WorkloadError(
                    f"stream yielded more than its declared {self._count} "
                    "records")
            yield record
        if yielded != self._count:
            raise WorkloadError(
                f"stream yielded {yielded} records, declared {self._count}")

    def __len__(self) -> int:
        return self._count

    @property
    def start_ms(self) -> float:
        """Synthesis-declared start bound (replay begins here)."""
        return self._start_ms

    @property
    def end_ms(self) -> float:
        """Upper bound on the last arrival (drain timeouts key off this)."""
        return self._end_ms

    @property
    def duration_ms(self) -> float:
        return self._end_ms - self._start_ms

    def materialize(self) -> Trace:
        """Realize the whole stream as a :class:`Trace` (small inputs only)."""
        return Trace(self)


#: What experiment runners actually require of a trace: ``len()``,
#: ``end_ms`` and iteration over time-ordered records.
TraceLike = Union[Trace, TraceStream]
