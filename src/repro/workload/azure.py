"""Azure Functions trace synthesiser.

The paper replays "the total of 800 invocations made within 1 minute (from
22:10 to 22:11) of the Azure Day 13 trace" (Fig. 10) for the CPU workload
and the first 400 of those for the I/O workload, and motivates container
sharing with the daily invocation patterns of three hot functions (Fig. 2).

We do not ship the (multi-GB) Azure trace; instead this module synthesises
arrival streams with the same published characteristics:

* :func:`replay_minute_arrivals` — 800 arrivals in 60 s, strongly bursty
  (a few sub-second spikes carrying most of the volume over a light
  background), deterministic per seed.
* :class:`DailyPatternGenerator` — per-minute invocation counts over 24 h
  for "hot" functions: long quiet stretches punctuated by dense bursts,
  >1000 invocations/day, tight temporal locality (Fig. 2's shape).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.common.errors import WorkloadError
from repro.common.units import MINUTE, SECOND
from repro.workload.arrivals import Burst, bursty_arrivals

#: The replayed slice of the trace: 800 invocations over one minute.
REPLAY_TOTAL_INVOCATIONS = 800
REPLAY_DURATION_MS = MINUTE
#: The I/O experiments use only the first 400 invocations (§IV: the full
#: burst drove the worker VM to downtime under the baseline policies).
IO_REPLAY_INVOCATIONS = 400


def replay_minute_arrivals(seed: int = 13,
                           total: int = REPLAY_TOTAL_INVOCATIONS,
                           duration_ms: float = REPLAY_DURATION_MS,
                           ) -> List[float]:
    """Synthesise the Fig. 10 replay minute: bursty, *total* arrivals.

    Roughly 80 % of the volume arrives in a handful of sub-second to
    few-second spikes; the rest is a light background — matching the
    paper's description of the pattern as "a strong indicator of the
    burstiness of serverless functions".
    """
    if total <= 0:
        raise WorkloadError(f"total must be > 0, got {total}")
    rng = random.Random(seed)
    burst_count = 5
    burst_volume = int(total * 0.85)
    base, remainder = divmod(burst_volume, burst_count)
    starts = sorted(rng.uniform(0.02, 0.85) * duration_ms
                    for _ in range(burst_count))
    bursts = []
    for index, start in enumerate(starts):
        count = base + (1 if index < remainder else 0)
        width = rng.uniform(0.2, 1.2) * SECOND
        bursts.append(Burst(start_ms=start, width_ms=width, count=count))
    return bursty_arrivals(duration_ms=duration_ms, total=total,
                           bursts=bursts, rng=rng)


def iter_replay_minute_arrivals(seed: int = 13,
                                total: int = REPLAY_TOTAL_INVOCATIONS,
                                duration_ms: float = REPLAY_DURATION_MS,
                                ) -> Iterator[float]:
    """Streaming view of :func:`replay_minute_arrivals`.

    One minute's burst pattern needs a global sort, so memory stays
    bounded by the minute volume; the yielded sequence is byte-identical
    to the materialized list for the same seed.  NOTE the stateful-RNG
    contract shared by every synthesiser here: a generator is single-use,
    so rewindable consumers must call this factory again (fresh RNG)
    rather than re-iterate an exhausted generator.
    """
    yield from replay_minute_arrivals(seed=seed, total=total,
                                      duration_ms=duration_ms)


def iter_tiled_replay_arrivals(total: int,
                               tile_invocations: int,
                               seed: int = 13,
                               duration_ms: float = REPLAY_DURATION_MS,
                               ) -> Iterator[Tuple[int, float]]:
    """Tile bursty replay minutes end to end, streaming ``(index, arrival)``.

    Tile *t* draws a fresh bursty minute of up to ``tile_invocations``
    arrivals (seed ``seed + t``) offset by its minute boundary — exactly
    the scenario construction the perf bench materialized before the
    streaming refactor, now O(one tile) in memory.  ``index`` is the
    global 0-based arrival rank, which synthesis layers use to assign
    function ids without any look-back.  Tiles never overlap, so the
    concatenation is globally time-ordered.
    """
    if total < 1:
        raise WorkloadError(f"total must be >= 1, got {total}")
    if tile_invocations < 1:
        raise WorkloadError(
            f"tile_invocations must be >= 1, got {tile_invocations}")
    index = 0
    tile = 0
    remaining = total
    while remaining > 0:
        count = min(tile_invocations, remaining)
        offset = tile * duration_ms
        for arrival in replay_minute_arrivals(seed=seed + tile, total=count,
                                              duration_ms=duration_ms):
            yield index, offset + arrival
            index += 1
        remaining -= count
        tile += 1


def tiled_replay_tile_count(total: int, tile_invocations: int) -> int:
    """Number of minute tiles :func:`iter_tiled_replay_arrivals` spans."""
    if total < 1 or tile_invocations < 1:
        raise WorkloadError(
            f"need positive totals, got total={total} "
            f"tile_invocations={tile_invocations}")
    return -(-total // tile_invocations)


class DailyPatternGenerator:
    """Per-minute daily invocation counts for hot functions (Fig. 2).

    Each generated function has several *active episodes* during the day;
    inside an episode, minutes carry geometric bursts; outside, the function
    is almost silent.  Every function exceeds 1000 invocations/day, matching
    the paper's selection criterion.
    """

    MINUTES_PER_DAY = 24 * 60

    def __init__(self, seed: int = 2) -> None:
        self._seed = seed

    def minute_counts(self, function_rank: int) -> List[int]:
        """Return 1440 per-minute counts for the function at *function_rank*."""
        if function_rank < 0:
            raise WorkloadError(f"negative rank: {function_rank}")
        rng = random.Random(f"{self._seed}:{function_rank}")
        counts = [0] * self.MINUTES_PER_DAY
        episodes = rng.randint(3, 6)
        for _ in range(episodes):
            start = rng.randrange(0, self.MINUTES_PER_DAY - 60)
            length = rng.randint(20, 120)
            intensity = rng.uniform(3.0, 15.0)
            for minute in range(start, min(start + length,
                                           self.MINUTES_PER_DAY)):
                if rng.random() < 0.75:  # bursty: not every minute fires
                    counts[minute] += max(1, int(rng.expovariate(
                        1.0 / intensity)))
        # Light background so the daily total clears 1000 like the paper's
        # representative functions.
        while sum(counts) < 1100:
            counts[rng.randrange(self.MINUTES_PER_DAY)] += max(
                1, int(rng.expovariate(0.5)))
        return counts

    def burstiness_index(self, counts: List[int]) -> float:
        """Fraction of the day's volume carried by the top 10 % of minutes.

        A uniform pattern scores ~0.1; the paper's hot functions are far
        burstier (most volume inside episodes).
        """
        if len(counts) != self.MINUTES_PER_DAY:
            raise WorkloadError("expected 1440 per-minute counts")
        total = sum(counts)
        if total == 0:
            raise WorkloadError("empty day")
        top = sorted(counts, reverse=True)[: self.MINUTES_PER_DAY // 10]
        return sum(top) / total
