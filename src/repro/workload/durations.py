"""Function-duration model: the Fig. 9 distribution and the fib N table.

The paper generates CPU-intensive workloads by sampling function durations
from the skewed distribution of the Azure Functions trace (Fig. 9) and
mapping each duration to a Fibonacci input ``N`` such that ``fib(N)`` runs
for about that long (following TABLE I of the SFS paper, its ref. [23]):

=================  ==========  =============================
Duration range      Fraction    fib inputs mapped to it
=================  ==========  =============================
[0, 50) ms          55.13 %     N = 20 … 26
[50, 100) ms         6.96 %     N = 27
[100, 200) ms        5.61 %     N = 28, 29
[200, 400) ms       11.08 %     N = 30
[400, 1550) ms      11.09 %     N = 31, 32, 33
[1550, ∞) ms        10.14 %     N = 34, 35, 36
=================  ==========  =============================

``fib``'s cost grows by the golden ratio per increment of ``N``; the
canonical table below anchors ``N = 26`` at 45 ms ("fib with N between 20
and 26 completes in less than 45 ms", §IV) and scales by φ.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import WorkloadError

GOLDEN_RATIO = (1.0 + 5.0 ** 0.5) / 2.0

#: Duration of ``fib(N)`` in milliseconds on one dedicated core.
FIB_DURATION_MS: Dict[int, float] = {
    n: round(45.0 * GOLDEN_RATIO ** (n - 26), 2) for n in range(20, 37)
}

#: Fig. 9 buckets: (lower_ms, upper_ms or None, probability, fib Ns).
DURATION_BUCKETS: Tuple[Tuple[float, float, float, Tuple[int, ...]], ...] = (
    (0.0, 50.0, 0.5513, (20, 21, 22, 23, 24, 25, 26)),
    (50.0, 100.0, 0.0696, (27,)),
    (100.0, 200.0, 0.0561, (28, 29)),
    (200.0, 400.0, 0.1108, (30,)),
    (400.0, 1550.0, 0.1109, (31, 32, 33)),
    (1550.0, float("inf"), 0.1013, (34, 35, 36)),
)

#: Bucket edges for histogram reproduction (Fig. 9's x axis).
DURATION_EDGES: Tuple[float, ...] = (0.0, 50.0, 100.0, 200.0, 400.0, 1550.0)


def fib_duration_ms(n: int) -> float:
    """Modelled runtime of ``fib(n)`` on one dedicated core."""
    try:
        return FIB_DURATION_MS[n]
    except KeyError:
        raise WorkloadError(
            f"fib N must be in [20, 36], got {n}") from None


def bucket_probabilities() -> List[float]:
    """The Fig. 9 probabilities, normalised to sum exactly to 1."""
    raw = [b[2] for b in DURATION_BUCKETS]
    total = sum(raw)
    return [p / total for p in raw]


class DurationSampler:
    """Samples fib inputs so durations follow the Fig. 9 distribution."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._probabilities = bucket_probabilities()

    def sample_fib_n(self) -> int:
        """Draw one fib input N."""
        roll = self._rng.random()
        cumulative = 0.0
        for probability, bucket in zip(self._probabilities, DURATION_BUCKETS):
            cumulative += probability
            if roll <= cumulative:
                return self._rng.choice(bucket[3])
        return DURATION_BUCKETS[-1][3][-1]  # float guard

    def sample_duration_ms(self) -> float:
        """Draw one duration (the runtime of a sampled fib input)."""
        return fib_duration_ms(self.sample_fib_n())

    def sample_many(self, count: int) -> List[int]:
        """Draw *count* fib inputs."""
        if count < 0:
            raise WorkloadError(f"negative count: {count}")
        return [self.sample_fib_n() for _ in range(count)]


def duration_bucket_index(duration_ms: float) -> int:
    """Return the Fig. 9 bucket a duration falls into."""
    if duration_ms < 0:
        raise WorkloadError(f"negative duration: {duration_ms}")
    for index, (lower, upper, _p, _ns) in enumerate(DURATION_BUCKETS):
        if lower <= duration_ms < upper:
            return index
    return len(DURATION_BUCKETS) - 1


def empirical_bucket_fractions(durations_ms: Sequence[float]) -> List[float]:
    """Histogram a duration sample over the Fig. 9 buckets."""
    if not durations_ms:
        raise WorkloadError("no durations supplied")
    counts = [0] * len(DURATION_BUCKETS)
    for duration in durations_ms:
        counts[duration_bucket_index(duration)] += 1
    return [c / len(durations_ms) for c in counts]
