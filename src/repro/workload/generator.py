"""Workload generation: the paper's two benchmark workloads.

* **CPU-intensive workload** — the 800-invocation replay minute (Fig. 10),
  every invocation calling one ``fib`` function whose input N is sampled
  from the Fig. 9 duration distribution.
* **I/O workload** — the first 400 invocations of the same replay, each
  creating an AWS-S3-style client (Listing 1) and performing one blob
  operation.  All invocations use the same credentials, so their creation
  arguments hash identically — the multiplexer's sharing opportunity.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.model.function import FunctionKind, FunctionSpec
from repro.model.workprofile import WorkProfile, cpu_profile, io_profile
from repro.workload.azure import (
    IO_REPLAY_INVOCATIONS,
    REPLAY_DURATION_MS,
    REPLAY_TOTAL_INVOCATIONS,
    iter_tiled_replay_arrivals,
    replay_minute_arrivals,
    tiled_replay_tile_count,
)
from repro.workload.durations import DurationSampler, fib_duration_ms
from repro.workload.trace import Trace, TraceRecord, TraceStream

#: Stable creation-argument hash: every I/O invocation passes the same
#: (access key, secret, session token) tuple, like Listing 1.
S3_CREDENTIALS_HASH = hash(("ACCESS_KEY", "SECRET_KEY", "SESSION_TOKEN"))
S3_FACTORY = "boto3.client.s3"

FIB_FUNCTION_ID = "fib"
IO_FUNCTION_ID = "s3-io"


def fib_function_spec(cpu_limit: Optional[float] = None) -> FunctionSpec:
    """The CPU-intensive benchmark function: ``fib(N)``.

    The payload of each invocation is its input ``N``; the profile burns the
    calibrated duration of ``fib(N)`` as CPU work.
    """

    def profile(payload: object) -> WorkProfile:
        return cpu_profile(fib_duration_ms(int(payload)))  # type: ignore[arg-type]

    return FunctionSpec(function_id=FIB_FUNCTION_ID, kind=FunctionKind.CPU,
                        profile_factory=profile, cpu_limit=cpu_limit)


def io_function_spec(calibration: Calibration = DEFAULT_CALIBRATION,
                     cpu_limit: Optional[float] = None) -> FunctionSpec:
    """The I/O benchmark function: create an S3 client, do one blob op."""

    def profile(payload: object) -> WorkProfile:
        return io_profile(factory=S3_FACTORY,
                          args_hash=S3_CREDENTIALS_HASH,
                          blob_wait_ms=calibration.blob_operation_wait_ms)

    return FunctionSpec(function_id=IO_FUNCTION_ID, kind=FunctionKind.IO,
                        profile_factory=profile, cpu_limit=cpu_limit)


def cpu_workload_trace(seed: int = 13,
                       total: int = REPLAY_TOTAL_INVOCATIONS) -> Trace:
    """The CPU workload: *total* fib invocations over the replay minute."""
    arrivals = replay_minute_arrivals(seed=seed, total=total)
    sampler = DurationSampler(seed=seed + 1)
    return Trace(TraceRecord(arrival_ms=arrival,
                             function_id=FIB_FUNCTION_ID,
                             payload=sampler.sample_fib_n())
                 for arrival in arrivals)


def io_workload_trace(seed: int = 13,
                      total: int = IO_REPLAY_INVOCATIONS) -> Trace:
    """The I/O workload: the first *total* invocations of the replay minute.

    Matches §IV: "to evaluate the I/O functions, we make use of the first
    400 function invocations of the Azure trace".
    """
    full = replay_minute_arrivals(seed=seed, total=REPLAY_TOTAL_INVOCATIONS)
    arrivals = full[:total]
    return Trace(TraceRecord(arrival_ms=arrival,
                             function_id=IO_FUNCTION_ID,
                             payload=index)
                 for index, arrival in enumerate(arrivals))


def multi_function_trace(seed: int = 13,
                         total: int = REPLAY_TOTAL_INVOCATIONS,
                         functions: int = 4) -> Trace:
    """A variant spreading the replay across several fib-like functions.

    Used by tests and examples to exercise the Invoke Mapper's per-function
    grouping (Fig. 6's λ_A / λ_B scenario).
    """
    if functions < 1:
        raise ValueError(f"functions must be >= 1, got {functions}")
    arrivals = replay_minute_arrivals(seed=seed, total=total)
    sampler = DurationSampler(seed=seed + 1)
    records = []
    for index, arrival in enumerate(arrivals):
        function_id = f"{FIB_FUNCTION_ID}-{index % functions}"
        records.append(TraceRecord(arrival_ms=arrival,
                                   function_id=function_id,
                                   payload=sampler.sample_fib_n()))
    return Trace(records)


# -- streaming synthesis -----------------------------------------------------
#
# Each stream builds its RNG-bearing state (arrival synthesiser, duration
# sampler) *inside* the generator factory, so every iteration pass starts
# from the seed and replays the byte-identical sequence — the
# deterministic-rewind contract TraceStream enforces.  Equivalence to the
# materialized constructors above is pinned by
# ``tests/workload/test_streaming.py``.


def cpu_workload_stream(seed: int = 13,
                        total: int = REPLAY_TOTAL_INVOCATIONS
                        ) -> TraceStream:
    """Streaming equivalent of :func:`cpu_workload_trace`."""

    def records() -> Iterator[TraceRecord]:
        sampler = DurationSampler(seed=seed + 1)
        for arrival in replay_minute_arrivals(seed=seed, total=total):
            yield TraceRecord(arrival_ms=arrival,
                              function_id=FIB_FUNCTION_ID,
                              payload=sampler.sample_fib_n())

    return TraceStream(records, count=total, end_ms=REPLAY_DURATION_MS)


def io_workload_stream(seed: int = 13,
                       total: int = IO_REPLAY_INVOCATIONS) -> TraceStream:
    """Streaming equivalent of :func:`io_workload_trace`."""

    def records() -> Iterator[TraceRecord]:
        full = replay_minute_arrivals(seed=seed,
                                      total=REPLAY_TOTAL_INVOCATIONS)
        for index, arrival in enumerate(full[:total]):
            yield TraceRecord(arrival_ms=arrival,
                              function_id=IO_FUNCTION_ID,
                              payload=index)

    return TraceStream(records, count=total, end_ms=REPLAY_DURATION_MS)


def multi_function_stream(seed: int = 13,
                          total: int = REPLAY_TOTAL_INVOCATIONS,
                          functions: int = 4) -> TraceStream:
    """Streaming equivalent of :func:`multi_function_trace`."""
    if functions < 1:
        raise ValueError(f"functions must be >= 1, got {functions}")

    def records() -> Iterator[TraceRecord]:
        sampler = DurationSampler(seed=seed + 1)
        for index, arrival in enumerate(
                replay_minute_arrivals(seed=seed, total=total)):
            yield TraceRecord(arrival_ms=arrival,
                              function_id=f"{FIB_FUNCTION_ID}-"
                                          f"{index % functions}",
                              payload=sampler.sample_fib_n())

    return TraceStream(records, count=total, end_ms=REPLAY_DURATION_MS)


def tiled_fib_stream(invocations: int,
                     functions: int,
                     seed: int = 13,
                     tile_invocations: int = 4000) -> TraceStream:
    """The scale scenario: bursty replay minutes tiled to *invocations*.

    Byte-identical to the perf bench's pre-streaming ``bench_trace``
    construction (tile *t*: arrivals seeded ``seed + t``, payloads from a
    fresh ``DurationSampler(seed + 7919 * (t + 1))``, function ids round-
    robined by global arrival rank), but O(one tile) in memory — this is
    what lets the 1.98 M-invocation Azure replay stream through a shard
    without ever existing as a list.
    """
    if functions < 1:
        raise ValueError(f"functions must be >= 1, got {functions}")

    def records() -> Iterator[TraceRecord]:
        sampler: Optional[DurationSampler] = None
        for index, arrival in iter_tiled_replay_arrivals(
                total=invocations, tile_invocations=tile_invocations,
                seed=seed):
            if index % tile_invocations == 0:
                tile = index // tile_invocations
                sampler = DurationSampler(seed=seed + 7919 * (tile + 1))
            assert sampler is not None
            yield TraceRecord(
                arrival_ms=arrival,
                function_id=f"{FIB_FUNCTION_ID}-{index % functions}",
                payload=sampler.sample_fib_n())

    tiles = tiled_replay_tile_count(invocations, tile_invocations)
    return TraceStream(records, count=invocations,
                       end_ms=tiles * REPLAY_DURATION_MS)


def fib_family_specs(functions: int,
                     cpu_limit: Optional[float] = None) -> list:
    """Function specs matching :func:`multi_function_trace`."""

    def make_spec(function_id: str) -> FunctionSpec:
        def profile(payload: object) -> WorkProfile:
            return cpu_profile(fib_duration_ms(int(payload)))  # type: ignore[arg-type]
        return FunctionSpec(function_id=function_id, kind=FunctionKind.CPU,
                            profile_factory=profile, cpu_limit=cpu_limit)

    return [make_spec(f"{FIB_FUNCTION_ID}-{i}") for i in range(functions)]
