"""FaaSBatch reproduction (ICDCS 2023).

A full reimplementation of *"FaaSBatch: Enhancing the Efficiency of
Serverless Computing by Batching and Expanding Functions"*:

* :mod:`repro.core` — the paper's contribution: Invoke Mapper,
  Inline-Parallel Producer, Resource Multiplexer, and the assembled
  :class:`~repro.core.FaaSBatchScheduler`;
* :mod:`repro.baselines` — Vanilla, Kraken (SLO/slack batching), SFS
  (per-core adaptive time slices), Hiku (pull-based dispatch), DataDriven
  (runtime-estimate SPT) and the scheduling-policy registry that lets
  every surface select them by name;
* :mod:`repro.sim` / :mod:`repro.model` / :mod:`repro.platformsim` — the
  deterministic simulation substrate (DES kernel, two-level fair-share CPU,
  containers, warm pools, docker facade, experiment harness);
* :mod:`repro.workload` — Azure-trace-derived workload synthesis;
* :mod:`repro.local` — a real, threading FaaSBatch runtime with a genuine
  resource multiplexer you can embed;
* :mod:`repro.analysis` — figure/table regeneration utilities.

Quickstart::

    from repro import (FaaSBatchScheduler, VanillaScheduler,
                       run_experiment, cpu_workload_trace, fib_function_spec)

    trace = cpu_workload_trace(total=200)
    fib = fib_function_spec()
    ours = run_experiment(FaaSBatchScheduler(), trace, [fib])
    base = run_experiment(VanillaScheduler(), trace, [fib])
    print(ours.provisioned_containers, "vs", base.provisioned_containers)
"""

from repro.cluster import (
    ClusterResult,
    compare_balancers,
    run_cluster_experiment,
)
from repro.baselines import (
    DEFAULT_SCHEDULERS,
    DataDrivenScheduler,
    HikuScheduler,
    KrakenConfig,
    KrakenMode,
    KrakenParameters,
    KrakenScheduler,
    Scheduler,
    SchedulerBuild,
    SfsScheduler,
    VanillaScheduler,
    build_scheduler,
    registered_policies,
)
from repro.core import (
    FaaSBatchConfig,
    FaaSBatchScheduler,
    FunctionGroup,
    InlineParallelProducer,
    InvokeMapper,
    SimResourceMultiplexer,
)
from repro.local import (
    LocalPlatform,
    LocalPlatformConfig,
    ResourceMultiplexer,
)
from repro.model import (
    Calibration,
    DEFAULT_CALIBRATION,
    FunctionKind,
    FunctionSpec,
    Invocation,
)
from repro.common.eventlog import EventKind, EventLog
from repro.platformsim import (
    ExperimentResult,
    ServerlessPlatform,
    run_comparison,
    run_experiment,
)
from repro.workload.azurefile import AzureTraceBuilder
from repro.workload import (
    cpu_workload_trace,
    fib_function_spec,
    io_function_spec,
    io_workload_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AzureTraceBuilder",
    "Calibration",
    "ClusterResult",
    "EventKind",
    "EventLog",
    "compare_balancers",
    "run_cluster_experiment",
    "DEFAULT_CALIBRATION",
    "DEFAULT_SCHEDULERS",
    "DataDrivenScheduler",
    "ExperimentResult",
    "FaaSBatchConfig",
    "FaaSBatchScheduler",
    "FunctionGroup",
    "FunctionKind",
    "FunctionSpec",
    "HikuScheduler",
    "InlineParallelProducer",
    "Invocation",
    "InvokeMapper",
    "KrakenConfig",
    "KrakenMode",
    "KrakenParameters",
    "KrakenScheduler",
    "LocalPlatform",
    "LocalPlatformConfig",
    "ResourceMultiplexer",
    "Scheduler",
    "SchedulerBuild",
    "ServerlessPlatform",
    "SfsScheduler",
    "SimResourceMultiplexer",
    "VanillaScheduler",
    "__version__",
    "build_scheduler",
    "cpu_workload_trace",
    "fib_function_spec",
    "io_function_spec",
    "io_workload_trace",
    "registered_policies",
    "run_comparison",
    "run_experiment",
]
