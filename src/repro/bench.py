"""Perf-bench harness: the BENCH trajectory's measurement tool.

Runs a large Azure-sampled scenario through every scheduler under both
fair-share CPU engines — the incremental one (:mod:`repro.sim.fair_share`)
and the frozen pre-refactor baseline (:mod:`repro.sim.legacy_cpu`) — and
reports *simulator* performance: wall-clock seconds, kernel events/sec,
invocations/sec and peak RSS.  Simulated results are byte-identical between
the two engines (proven by ``tests/integration/test_engine_equivalence.py``),
so any wall-clock difference is pure engine overhead.

The scenario tiles a bursty Azure-shaped replay minute end to end until the
requested invocation count is reached, keeping peak concurrency at one
minute's burst level no matter how large the total grows.  The default tile
is dense (several thousand arrivals per minute): high burst concurrency is
the regime FaaSBatch targets and the regime where per-event CPU-engine cost
dominates the simulator, so it is where the engines' wall-clock behavior
actually differs.  ``--tile-invocations`` dials the density up or down.

Cell isolation (schema v3)
--------------------------
By default every (scheduler, engine) cell runs in a **fresh subprocess**
(``sys.executable -m repro.bench`` with a JSON cell spec on stdin):

* ``peak_rss_mb`` is honest — ``ru_maxrss`` is a process-wide high-water
  mark, so in the old in-process mode every cell after the first inherited
  the largest prior cell's peak;
* GC state, type caches and allocator arenas start cold per cell, so cells
  cannot bleed performance into each other;
* cells without a data dependency can run concurrently (``--parallel N``).

``isolate=False`` keeps the old in-process mode for unit tests and
debugging; its rows carry ``"rss_isolated": false`` to mark the RSS column
as a process-wide (contaminated) fallback.

Usage::

    python -m repro bench --invocations 50000 --out BENCH_sim.json
    python -m repro bench --profile            # embed cProfile hotspots
    python benchmarks/perf_harness.py          # same defaults

SFS is measured under its own CPU discipline (per-core adaptive slices);
the engine knob does not apply to it, so it appears once per report and is
excluded from the legacy-vs-incremental speedup table.
"""

from __future__ import annotations

import cProfile
import gc
import json
import os
import pstats
import resource
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import (
    DEFAULT_SCHEDULERS,
    KrakenParameters,
    SchedulerBuild,
    build_scheduler,
    parse_scheduler_names,
    policy_info,
    registered_policies,
)
from repro.obs import Observability
from repro.platformsim.experiment import run_experiment
from repro.sim.calendar_queue import DEFAULT_QUEUE, EVENT_QUEUES
from repro.workload.azure import REPLAY_DURATION_MS, replay_minute_arrivals
from repro.workload.durations import DurationSampler
from repro.workload.generator import FIB_FUNCTION_ID, fib_family_specs
from repro.workload.trace import Trace, TraceRecord

#: Report format version; bump on any structural change.
#: v2 added the obs-enabled FaaSBatch run and the ``obs_overhead`` block.
#: v3 added subprocess-per-cell isolation (honest per-cell RSS), optional
#: per-cell cProfile hotspots, and the speedup-vs-committed-baseline table.
#: v3.1 added the sharded-cluster ``cluster_cells`` section (a report may
#: carry ``runs``, ``cluster_cells`` or both), atomic report writes and a
#: loader that rejects partial artifacts.
#: v4 added the live-serving ``gateway_cells`` section (seeded open-loop
#: load cells against the asyncio gateway); a report now carries any
#: non-empty combination of ``runs``, ``cluster_cells``, ``gateway_cells``.
#: v5 made the scheduler grid registry-driven (``--schedulers`` selects a
#: subset, recorded in the top-level ``schedulers`` list; obs/speedup
#: blocks become conditional on the selection) and added the
#: ``window_cells`` section (FaaSBatch fixed-vs-adaptive window sizing).
#: v6 added shard-merged cluster telemetry (an ``obs`` block on cluster
#: cells carrying the order-independent merge of every shard's counters,
#: gauges and histogram buckets) and the optional per-cell ``slo`` block
#: (:mod:`repro.obs.slo` evaluation results, attached by ``repro slo``).
#: v7 added the ``config.queue`` knob (``repro bench --queue``): the event
#: queue the kernel ran on ("calendar" or "heap"), recorded so A/B reports
#: of the two implementations are distinguishable.  The queue is an engine
#: knob, not a scenario knob — the baseline comparison ignores it.
BENCH_SCHEMA = "faasbatch-bench/v7"

#: Scheduler label of the observability-overhead run (tracing + sampling
#: on).  Distinct from "FaaSBatch" so the (scheduler, engine) cells stay
#: unique and the speedup table is unaffected.
OBS_RUN_LABEL = "FaaSBatch+obs"

#: Default arrivals per scenario tile (one simulated minute).  5x the
#: paper's replay-minute volume: a dense burst keeps hundreds of containers
#: concurrently runnable, which is where CPU-engine cost dominates.
TILE_INVOCATIONS = 4000

#: Schedulers whose execution rides the fair-share engine under test.
FAIR_SHARE_SCHEDULERS = ("Vanilla", "Kraken", "FaaSBatch")

#: Window-sizing policies a ``window_cells`` comparison measures, in row
#: order: the paper's fixed window first, then the adaptive policy.
WINDOW_CELL_POLICIES = ("fixed", "adaptive")

#: ``ru_maxrss`` unit: bytes on macOS, kilobytes everywhere else.
_RSS_TO_MB = (1024.0 * 1024.0) if sys.platform == "darwin" else 1024.0

#: The committed ``BENCH_sim.json`` (schema v1, PR 3) this optimization
#: pass is measured against: ``(wall_clock_s, kernel_events)`` per cell on
#: the default 50k-invocation scenario.  Frozen here so every future report
#: on that scenario carries its speedup against the same yardstick.
BASELINE_V1: Dict[Tuple[str, str], Tuple[float, int]] = {
    ("Vanilla", "incremental"): (95.869, 1_286_690),
    ("SFS", "incremental"): (37.118, 5_364_365),
    ("Kraken", "incremental"): (69.707, 666_550),
    ("FaaSBatch", "incremental"): (52.609, 598_004),
    ("Vanilla", "legacy"): (503.2, 1_434_635),
    ("Kraken", "legacy"): (153.066, 769_507),
    ("FaaSBatch", "legacy"): (164.437, 660_113),
}

#: The scenario the committed baseline was measured on; the baseline table
#: is emitted only when the current config matches it exactly.
BASELINE_CONFIG = {"invocations": 50_000, "functions": 8, "seed": 13,
                   "window_ms": 200.0, "tile_invocations": TILE_INVOCATIONS}


@dataclass(frozen=True)
class BenchConfig:
    """Scenario knobs for one bench report."""

    invocations: int = 50_000
    functions: int = 8
    seed: int = 13
    window_ms: float = 200.0
    tile_invocations: int = TILE_INVOCATIONS
    #: Event-queue implementation the kernel runs on ("calendar" or
    #: "heap"); an engine knob, not a scenario knob, so the baseline
    #: comparison ignores it.
    queue: str = DEFAULT_QUEUE

    def __post_init__(self) -> None:
        if self.invocations < 1:
            raise ValueError(f"invocations must be >= 1, got "
                             f"{self.invocations}")
        if self.functions < 1:
            raise ValueError(f"functions must be >= 1, got {self.functions}")
        if self.tile_invocations < 1:
            raise ValueError(f"tile_invocations must be >= 1, got "
                             f"{self.tile_invocations}")
        if self.queue not in EVENT_QUEUES:
            raise ValueError(f"unknown event queue {self.queue!r}; choose "
                             f"from {sorted(EVENT_QUEUES)}")

    def to_dict(self) -> Dict[str, object]:
        return {"invocations": self.invocations,
                "functions": self.functions,
                "seed": self.seed,
                "window_ms": self.window_ms,
                "tile_invocations": self.tile_invocations,
                "queue": self.queue}


def bench_trace(config: BenchConfig) -> Trace:
    """Tile bursty replay minutes up to ``config.invocations`` arrivals.

    Each tile draws a fresh bursty minute of ``config.tile_invocations``
    arrivals (deterministic per seed + tile index) offset by its minute
    boundary, so total volume scales without inflating peak concurrency
    beyond one minute's burst levels.
    """
    records: List[TraceRecord] = []
    tile = 0
    remaining = config.invocations
    while remaining > 0:
        count = min(config.tile_invocations, remaining)
        arrivals = replay_minute_arrivals(seed=config.seed + tile,
                                          total=count)
        sampler = DurationSampler(seed=config.seed + 7919 * (tile + 1))
        offset = tile * REPLAY_DURATION_MS
        base = len(records)
        for index, arrival in enumerate(arrivals):
            function_id = (f"{FIB_FUNCTION_ID}-"
                           f"{(base + index) % config.functions}")
            records.append(TraceRecord(arrival_ms=offset + arrival,
                                       function_id=function_id,
                                       payload=sampler.sample_fib_n()))
        remaining -= count
        tile += 1
    return Trace(records)


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _RSS_TO_MB


def _profile_rows(profiler: cProfile.Profile,
                  top: int) -> List[Dict[str, object]]:
    """Top-*top* cumulative hotspots as JSON-friendly rows."""
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, object]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        filename, line, name = func
        _cc, ncalls, tottime, cumtime, _callers = stats.stats[func]  # type: ignore[attr-defined]
        location = (name if filename == "~"
                    else f"{os.path.basename(filename)}:{line}({name})")
        rows.append({"function": location,
                     "ncalls": ncalls,
                     "tottime_s": round(tottime, 3),
                     "cumtime_s": round(cumtime, 3)})
    return rows


def _measure(scheduler_factory: Callable[[], object], trace: Trace, specs,
             engine: str, obs: Optional["Observability"] = None,
             label: Optional[str] = None, profile_top: int = 0):
    """Run one (scheduler, engine) cell; return (result, row).

    ``obs`` turns the run into an observability-overhead measurement;
    ``label`` overrides the row's scheduler name (the obs run reports as
    :data:`OBS_RUN_LABEL` so cell keys stay unique).  ``profile_top`` > 0
    wraps the run in cProfile and embeds that many cumulative hotspots —
    the profiler inflates wall-clock substantially, so profiled rows are
    flagged and should not be compared against unprofiled ones.
    """
    gc.collect()
    profiler: Optional[cProfile.Profile] = None
    if profile_top > 0:
        profiler = cProfile.Profile()
        profiler.enable()
    started = time.perf_counter()
    result = run_experiment(scheduler_factory(), trace, specs,  # type: ignore[arg-type]
                            workload_label="bench", strict_memory=False,
                            cpu_engine=engine, obs=obs)
    wall_clock_s = time.perf_counter() - started
    if profiler is not None:
        profiler.disable()
    invocations = len(result.invocations)
    row: Dict[str, object] = {
        "scheduler": label if label is not None else result.scheduler_name,
        "engine": engine,
        "invocations": invocations,
        "wall_clock_s": round(wall_clock_s, 3),
        "sim_completion_ms": result.completion_ms,
        "kernel_events": result.kernel_events,
        "events_per_sec": round(result.kernel_events / wall_clock_s, 1),
        "invocations_per_sec": round(invocations / wall_clock_s, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if profiler is not None:
        row["profiled"] = True
        row["profile_top"] = _profile_rows(profiler, profile_top)
    return result, row


# -- subprocess-per-cell plumbing -------------------------------------------------


def _scheduler_factory(name: str, config: BenchConfig,
                       kraken_params: Optional[Dict[str, Dict[str, float]]],
                       window_policy: str = "fixed"
                       ) -> Callable[[], object]:
    """Registry-backed factory for one bench cell's scheduler.

    ``name`` is any registry key or report label; the subprocess protocol
    ships Kraken's learned parameters as plain dicts, rebuilt here into
    :class:`KrakenParameters`.
    """
    info = policy_info(name)
    params: Optional[KrakenParameters] = None
    if kraken_params is not None:
        params = KrakenParameters(
            slo_ms=dict(kraken_params["slo_ms"]),
            mean_execution_ms=dict(kraken_params["mean_execution_ms"]))
    if info.needs_vanilla_profile and params is None:
        raise ValueError("Kraken cell needs kraken_params")
    build = SchedulerBuild(window_ms=config.window_ms,
                           window_policy=window_policy,
                           kraken_parameters=params)
    return lambda: build_scheduler(info.name, build)


def _cell_spec(config: BenchConfig, scheduler: str, engine: str,
               obs: bool = False, label: Optional[str] = None,
               kraken_params: Optional[Dict] = None, profile: int = 0,
               want_kraken_params: bool = False,
               window_policy: str = "fixed",
               want_latency: bool = False) -> Dict[str, object]:
    return {"config": config.to_dict(), "scheduler": scheduler,
            "engine": engine, "obs": obs, "label": label,
            "kraken_params": kraken_params, "profile": profile,
            "want_kraken_params": want_kraken_params,
            "window_policy": window_policy,
            "want_latency": want_latency}


def _run_cell_inline(spec: Dict[str, object]) -> Dict[str, object]:
    """Execute one cell spec in this process; returns the child payload."""
    config = BenchConfig(**spec["config"])  # type: ignore[arg-type]
    trace = bench_trace(config)
    specs = fib_family_specs(config.functions)
    factory = _scheduler_factory(
        str(spec["scheduler"]), config,
        spec.get("kraken_params"),  # type: ignore[arg-type]
        window_policy=str(spec.get("window_policy") or "fixed"))
    obs = (Observability(tracing=True, sampling=True)
           if spec.get("obs") else None)
    # The queue knob reaches Environment() through the selection env var
    # rather than a constructor argument, so every Environment the cell
    # creates (platform, warm-up, nested sims) rides the same queue.
    saved_queue = os.environ.get("REPRO_SIM_QUEUE")
    os.environ["REPRO_SIM_QUEUE"] = config.queue
    try:
        result, row = _measure(factory, trace, specs, str(spec["engine"]),
                               obs=obs,
                               label=spec.get("label"),  # type: ignore[arg-type]
                               profile_top=int(spec.get("profile") or 0))
    finally:
        if saved_queue is None:
            del os.environ["REPRO_SIM_QUEUE"]
        else:
            os.environ["REPRO_SIM_QUEUE"] = saved_queue
    if spec.get("want_latency"):
        stats = result.latency_stats()
        row["latency_ms"] = {
            "count": stats.count,
            "mean": round(stats.mean, 3),
            "p50": round(stats.median, 3),
            "p95": round(stats.percentile(95), 3),
            "p99": round(stats.percentile(99), 3),
        }
        row["containers"] = result.provisioned_containers
        row["goodput"] = round(result.goodput(), 4)
    out: Dict[str, object] = {"row": row}
    if spec.get("want_kraken_params"):
        params = KrakenParameters.from_invocations(
            result.successful_invocations())
        out["kraken_params"] = {"slo_ms": params.slo_ms,
                                "mean_execution_ms": params.mean_execution_ms}
    return out


def _cell_main() -> int:
    """Entry point of a bench-cell subprocess (``-m repro.bench``).

    Reads one JSON cell spec from stdin, runs it, writes the JSON result
    to stdout.  Running in a fresh interpreter makes ``peak_rss_mb`` a
    true per-cell measurement and isolates GC/allocator state.
    """
    out = _run_cell_inline(json.load(sys.stdin))
    json.dump(out, sys.stdout)
    sys.stdout.write("\n")
    return 0


def _spawn_cell(spec: Dict[str, object]) -> "subprocess.Popen[str]":
    import repro
    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    proc = subprocess.Popen([sys.executable, "-m", "repro.bench"],
                            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, env=env, text=True)
    assert proc.stdin is not None
    proc.stdin.write(json.dumps(spec))
    proc.stdin.close()
    return proc


def _collect_cell(proc: "subprocess.Popen[str]",
                  spec: Dict[str, object]) -> Dict[str, object]:
    assert proc.stdout is not None and proc.stderr is not None
    stdout = proc.stdout.read()
    stderr = proc.stderr.read()
    code = proc.wait()
    if code != 0:
        tail = "\n".join(stderr.strip().splitlines()[-12:])
        raise RuntimeError(
            f"bench cell {spec['scheduler']}/{spec['engine']} failed "
            f"(exit {code}):\n{tail}")
    return json.loads(stdout)


def _run_cells(cell_specs: List[Dict[str, object]], isolate: bool,
               parallel: int,
               emit: Callable[[str], None]) -> List[Dict[str, object]]:
    """Run cells in order; subprocess batches of *parallel* when isolated.

    Results are returned in spec order regardless of completion order, so
    the report is deterministic under ``--parallel``.
    """
    results: List[Optional[Dict[str, object]]] = [None] * len(cell_specs)
    if not isolate:
        for index, spec in enumerate(cell_specs):
            emit(f"[{spec['engine']}] {spec['label'] or spec['scheduler']} "
                 "(inline) ...")
            results[index] = _run_cell_inline(spec)
        return results  # type: ignore[return-value]
    width = max(1, int(parallel))
    for start in range(0, len(cell_specs), width):
        batch = cell_specs[start:start + width]
        procs = []
        for spec in batch:
            emit(f"[{spec['engine']}] {spec['label'] or spec['scheduler']} "
                 "...")
            procs.append(_spawn_cell(spec))
        for offset, (proc, spec) in enumerate(zip(procs, batch)):
            results[start + offset] = _collect_cell(proc, spec)
    return results  # type: ignore[return-value]


# -- the full report --------------------------------------------------------------


def _select_bench_policies(schedulers) -> List:
    """Resolve a ``--schedulers`` selection into registry-ordered infos.

    Accepts ``None`` (the default four-scheduler matrix), a comma string,
    or an iterable of names/labels; rows always come out in registration
    (canonical report) order regardless of selection order.
    """
    if schedulers is None:
        selected = DEFAULT_SCHEDULERS
    elif isinstance(schedulers, str):
        selected = parse_scheduler_names(schedulers)
    else:
        selected = parse_scheduler_names(",".join(schedulers))
    chosen = {policy_info(name).name for name in selected}
    return [info for info in registered_policies() if info.name in chosen]


def run_bench(config: BenchConfig, skip_legacy: bool = False,
              log: Optional[Callable[[str], None]] = None,
              isolate: bool = True, parallel: int = 1,
              profile_top: int = 0,
              schedulers=None) -> Dict[str, object]:
    """Produce one complete bench report (the BENCH_sim.json payload).

    ``isolate`` runs each cell in a fresh subprocess (the default; see the
    module docstring); ``parallel`` bounds how many isolated cells run at
    once.  ``profile_top`` > 0 embeds that many cProfile hotspots per cell
    (wall-clocks are then profiler-inflated and flagged ``"profiled"``).
    ``schedulers`` selects a subset of the registry (``None`` keeps the
    classic four-scheduler matrix); selecting Kraken requires Vanilla in
    the same selection, since Kraken's parameters are learned from the
    Vanilla profiling cell.
    """
    emit = log if log is not None else (lambda _msg: None)
    infos = _select_bench_policies(schedulers)
    labels = [info.label for info in infos]
    profiled_labels = [info.label for info in infos
                       if info.needs_vanilla_profile]
    if profiled_labels and "Vanilla" not in labels:
        raise ValueError(
            f"{', '.join(profiled_labels)} learns its parameters from a "
            "Vanilla profiling cell; add vanilla to the selection")
    measure_obs = "FaaSBatch" in labels
    # Only the classic fair-share trio exists in the frozen legacy engine.
    legacy_labels = [label for label in labels
                     if label in FAIR_SHARE_SCHEDULERS]
    engines = ["incremental"]
    if not skip_legacy and legacy_labels:
        engines.append("legacy")

    def spec(scheduler: str, engine: str, **kwargs) -> Dict[str, object]:
        return _cell_spec(config, scheduler, engine,
                          profile=profile_top, **kwargs)

    # Phase 1: every cell without a data dependency.  The incremental
    # Vanilla cell additionally derives Kraken's learned parameters — the
    # paper's porting procedure ("98-percentile latency of each function
    # obtained by the Vanilla strategy as the function SLO"); both engines
    # produce byte-identical invocations, so one derivation serves both
    # Kraken cells.
    phase1: List[Dict[str, object]] = []
    for info in infos:
        if info.needs_vanilla_profile:
            continue  # phase 2: waits on the Vanilla derivation
        kwargs = {}
        if info.label == "Vanilla" and profiled_labels:
            kwargs["want_kraken_params"] = True
        phase1.append(spec(info.label, "incremental", **kwargs))
    if measure_obs:
        phase1.append(spec("FaaSBatch", "incremental", obs=True,
                           label=OBS_RUN_LABEL))
    if "legacy" in engines:
        for label in legacy_labels:
            if label == "Kraken":
                continue  # phase 2
            phase1.append(spec(label, "legacy"))
    outputs = _run_cells(phase1, isolate, parallel, emit)
    by_key: Dict[Tuple[str, str], Dict[str, object]] = {}
    kraken_params = None
    for cell, out in zip(phase1, outputs):
        key = (str(cell["label"] or cell["scheduler"]), str(cell["engine"]))
        by_key[key] = out["row"]
        if cell.get("want_kraken_params"):
            kraken_params = out.get("kraken_params")

    # Phase 2: the Kraken cells, parameterised by phase 1's derivation.
    if profiled_labels:
        phase2 = [spec("Kraken", engine, kraken_params=kraken_params)
                  for engine in engines]
        for cell, out in zip(phase2, _run_cells(phase2, isolate, parallel,
                                                emit)):
            by_key[(str(cell["scheduler"]), str(cell["engine"]))] = \
                out["row"]

    # Canonical row order (stable across isolation/parallel modes).
    order: List[Tuple[str, str]] = [(label, "incremental")
                                    for label in labels]
    if measure_obs:
        order.append((OBS_RUN_LABEL, "incremental"))
    if "legacy" in engines:
        order += [(label, "legacy") for label in legacy_labels]
    runs: List[Dict[str, object]] = []
    for key in order:
        row = by_key[key]
        row["rss_isolated"] = bool(isolate)
        runs.append(row)

    obs_overhead = None
    if measure_obs:
        plain = by_key[("FaaSBatch", "incremental")]
        obs_row = by_key[(OBS_RUN_LABEL, "incremental")]
        obs_overhead = {
            "note": ("wall-clock(FaaSBatch+obs) / wall-clock(FaaSBatch), "
                     "incremental engine; tracing + sampling are pure "
                     "observers so simulated results are identical"),
            "plain_wall_clock_s": plain["wall_clock_s"],
            "obs_wall_clock_s": obs_row["wall_clock_s"],
            "wall_clock_ratio": round(
                float(obs_row["wall_clock_s"])  # type: ignore[arg-type]
                / max(float(plain["wall_clock_s"]), 1e-9), 3),  # type: ignore[arg-type]
        }
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "config": config.to_dict(),
        "schedulers": labels,
        "engines": engines,
        "isolation": "subprocess" if isolate else "inline",
        "runs": runs,
        "obs_overhead": obs_overhead,
        "speedup": (None if "legacy" not in engines
                    else _speedup_table(runs)),
        "baseline": _baseline_table(runs, config),
    }
    return report


def _speedup_table(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """Per-scheduler legacy/incremental wall-clock ratios (+ aggregate)."""
    by_cell = {(r["scheduler"], r["engine"]): r for r in runs}
    per_scheduler: Dict[str, float] = {}
    incremental_total = 0.0
    legacy_total = 0.0
    for name in FAIR_SHARE_SCHEDULERS:
        incremental_row = by_cell.get((name, "incremental"))
        legacy_row = by_cell.get((name, "legacy"))
        if incremental_row is None or legacy_row is None:
            continue  # scheduler not in this run's selection
        incremental = incremental_row["wall_clock_s"]
        legacy = legacy_row["wall_clock_s"]
        per_scheduler[name] = round(legacy / incremental, 2)
        incremental_total += incremental
        legacy_total += legacy
    return {
        "note": ("wall-clock(legacy) / wall-clock(incremental); SFS runs "
                 "its own CPU discipline and is excluded"),
        "per_scheduler": per_scheduler,
        "overall_wall_clock": round(legacy_total / incremental_total, 2),
        "max": max(per_scheduler.values()),
    }


def _baseline_table(runs: List[Dict[str, object]],
                    config: BenchConfig) -> Optional[Dict[str, object]]:
    """Speedup vs the committed v1 baseline, or None off-scenario.

    Only cells present in the committed baseline participate (the obs cell
    postdates it), and only when the scenario matches the baseline's
    exactly.  The ``queue`` knob is excluded from the match — it selects
    the engine under test, not the workload, and an A/B heap run on the
    baseline scenario is exactly the comparison this table exists for.
    Profiled rows are excluded — their wall-clocks measure the profiler,
    not the simulator.
    """
    scenario = {key: value for key, value in config.to_dict().items()
                if key != "queue"}
    if scenario != BASELINE_CONFIG:
        return None
    per_cell: Dict[str, Dict[str, float]] = {}
    incremental_ratios: List[float] = []
    all_ratios: List[float] = []
    for row in runs:
        key = (str(row["scheduler"]), str(row["engine"]))
        baseline = BASELINE_V1.get(key)
        if baseline is None or row.get("profiled"):
            continue
        base_wall_s, base_kernel_events = baseline
        wall = float(row["wall_clock_s"])  # type: ignore[arg-type]
        events = int(row["kernel_events"])  # type: ignore[arg-type]
        ratio = (events / wall) / (base_kernel_events / base_wall_s)
        per_cell["/".join(key)] = {
            "baseline_wall_clock_s": base_wall_s,
            "wall_clock_speedup": round(base_wall_s / wall, 2),
            "baseline_events_per_sec": round(
                base_kernel_events / base_wall_s, 1),
            "events_per_sec_speedup": round(ratio, 2),
        }
        all_ratios.append(ratio)
        if key[1] == "incremental":
            incremental_ratios.append(ratio)
    if not per_cell:
        return None
    return {
        "note": ("vs the committed faasbatch-bench/v1 BENCH_sim.json "
                 "(pre-optimization) on the identical scenario; aggregate "
                 "= arithmetic mean of the per-cell events/sec speedups. "
                 "The headline covers the incremental-engine (default) "
                 "cells — the legacy cells re-measure the frozen reference "
                 "engine, where only the shared platform machinery can "
                 "move, so they are reported separately in all_cells."),
        "per_cell": per_cell,
        "aggregate_events_per_sec": {
            "speedup": round(
                sum(incremental_ratios) / len(incremental_ratios), 2),
            "all_cells_speedup": round(sum(all_ratios) / len(all_ratios), 2),
            "cells": len(incremental_ratios),
            "all_cells": len(all_ratios),
        },
    }


# -- window-sizing cells (schema v5) -----------------------------------------------


def run_window_cells(config: BenchConfig,
                     log: Optional[Callable[[str], None]] = None,
                     isolate: bool = True,
                     parallel: int = 1) -> List[Dict[str, object]]:
    """FaaSBatch fixed-vs-adaptive window cells at the identical load.

    Runs the same scenario once per policy in
    :data:`WINDOW_CELL_POLICIES` — the paper's fixed 0.2 s window against
    the arrival-rate-driven :class:`~repro.core.windowing.AdaptiveWindow`
    — and records end-to-end latency percentiles, goodput and container
    footprint per cell, so a committed report shows which window sizing
    wins at that load.
    """
    emit = log if log is not None else (lambda _msg: None)
    cell_specs = [
        _cell_spec(config, "FaaSBatch", "incremental",
                   label=f"FaaSBatch[{policy}-window]",
                   window_policy=policy, want_latency=True)
        for policy in WINDOW_CELL_POLICIES
    ]
    rows: List[Dict[str, object]] = []
    for cell, out in zip(cell_specs,
                         _run_cells(cell_specs, isolate, parallel, emit)):
        row = out["row"]
        row["cell"] = str(cell["window_policy"])
        row["window_policy"] = str(cell["window_policy"])
        row["rss_isolated"] = bool(isolate)
        rows.append(row)
    return rows


def window_report(config: BenchConfig,
                  cell_rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap window-sizing cells as a standalone v5 report."""
    if not cell_rows:
        raise ValueError("need at least one window cell row")
    return {
        "schema": BENCH_SCHEMA,
        "config": config.to_dict(),
        "window_cells": cell_rows,
    }


# -- sharded cluster cells (schema v3.1) -------------------------------------------


def cluster_cell_configs() -> Dict[str, object]:
    """Named sharded-replay scenarios ``repro bench --cell`` can run.

    * ``azure-smoke`` — 20k invocations over 2 shards; finishes in under a
      minute and is cheap enough for CI, where it cross-checks the merged
      stats against a single-shard run of the same scenario.
    * ``azure-full`` — the 1.98M-invocation Azure-shaped replay (495
      synthesised replay minutes, ~8.25 simulated hours) over 4 shards;
      the scale target the streaming/sharding machinery exists for.
    """
    from repro.cluster.sharded import ShardedClusterConfig
    return {
        "azure-smoke": ShardedClusterConfig(
            invocations=20_000, functions=8, seed=13,
            tile_invocations=4000, workers=4, shards=2),
        "azure-full": ShardedClusterConfig(
            invocations=1_980_000, functions=8, seed=13,
            tile_invocations=4000, workers=8, shards=4),
    }


def run_cluster_cell(cell: str,
                     log: Optional[Callable[[str], None]] = None,
                     isolate: bool = True,
                     shards: Optional[int] = None,
                     workers: Optional[int] = None) -> Dict[str, object]:
    """Run one named sharded scenario; returns its ``cluster_cells`` row.

    ``shards``/``workers`` override the named scenario's topology (the
    CLI's ``--shards``/``--workers``) without changing its workload.
    """
    configs = cluster_cell_configs()
    if cell not in configs:
        raise ValueError(f"unknown cluster cell {cell!r}; choose from "
                         f"{sorted(configs)}")
    from dataclasses import replace

    from repro.cluster.sharded import run_sharded_cluster
    config = configs[cell]
    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if shards is not None:
        overrides["shards"] = shards
    if overrides:
        config = replace(config, **overrides)
    result = run_sharded_cluster(config, isolate=isolate, log=log)
    sink = result.sink
    per_shard = [{"shard": s.shard_index,
                  "submitted": s.submitted,
                  "wall_clock_s": s.wall_clock_s,
                  "peak_rss_mb": s.peak_rss_mb,
                  "kernel_events": s.kernel_events,
                  "sim_completion_ms": s.completion_ms}
                 for s in result.shard_results]
    return {
        "cell": cell,
        "config": config.to_dict(),
        "isolation": "subprocess" if isolate else "inline",
        "invocations": sink.completed + sink.failed,
        "completed": sink.completed,
        "failed": sink.failed,
        "wall_clock_s": result.wall_clock_s,
        "invocations_per_sec": round(
            (sink.completed + sink.failed) / result.wall_clock_s, 1),
        "sim_completion_ms": result.completion_ms,
        "kernel_events": result.kernel_events,
        "max_shard_rss_mb": result.max_shard_rss_mb,
        "per_shard": per_shard,
        "latency_ms": sink.summary(),
        "load_imbalance": round(
            result.to_cluster_result().load_imbalance(), 3),
        "obs": (result.obs.to_dict() if result.obs is not None else None),
    }


def cluster_report(cell_rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap cluster-cell rows as a standalone report."""
    if not cell_rows:
        raise ValueError("need at least one cluster cell row")
    return {
        "schema": BENCH_SCHEMA,
        "config": dict(cell_rows[0]["config"]),  # type: ignore[arg-type]
        "cluster_cells": cell_rows,
    }


def gateway_report(cell_rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap live-gateway load cells as a standalone v4 report.

    Each row comes from :meth:`repro.gateway.LoadResult.cell`.  The
    top-level ``config`` block is synthesised from the first cell's load
    config so the shared ``validate_report`` config contract
    (invocations / functions / seed) holds for gateway-only artifacts:
    ``invocations`` is the total requests across cells and ``functions``
    the size of the traffic mix.
    """
    if not cell_rows:
        raise ValueError("need at least one gateway cell row")
    first = cell_rows[0]["config"]  # type: ignore[index]
    if not isinstance(first, dict):
        raise ValueError("gateway cell needs a config object")
    total = sum(int(row.get("requests", 0))  # type: ignore[arg-type]
                for row in cell_rows)
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "invocations": total,
            "functions": len(first.get("mix", {})),
            "seed": first.get("seed"),
        },
        "gateway_cells": cell_rows,
    }


def _validate_slo_block(owner: str, block: object) -> None:
    """Shape-check one per-cell ``slo`` block (schema v6, optional)."""
    if block is None:
        return
    if not isinstance(block, dict):
        raise ValueError(f"{owner}: slo must be an object when present")
    if not isinstance(block.get("ok"), bool):
        raise ValueError(f"{owner}: slo.ok must be a bool")
    checks = block.get("checks")
    if not isinstance(checks, list):
        raise ValueError(f"{owner}: slo.checks must be a list")
    for check in checks:
        if not isinstance(check, dict) \
                or not isinstance(check.get("check"), str) \
                or not isinstance(check.get("ok"), bool):
            raise ValueError(f"{owner}: each slo check needs a string "
                             "'check' and a bool 'ok'")


def _validate_cluster_obs(owner: str, obs: object) -> None:
    """Shape-check one cluster cell's merged telemetry (schema v6)."""
    if obs is None:
        return  # merged from pre-telemetry shard payloads
    if not isinstance(obs, dict):
        raise ValueError(f"{owner}: obs must be an object or null")
    for section in ("counters", "gauges", "clocks", "histograms"):
        if not isinstance(obs.get(section), dict):
            raise ValueError(f"{owner}: obs.{section} must be an object")
    for name, hist in obs["histograms"].items():
        if not isinstance(hist, dict) \
                or not isinstance(hist.get("edges"), list) \
                or not isinstance(hist.get("counts"), list) \
                or len(hist["counts"]) != len(hist["edges"]) + 1:
            raise ValueError(
                f"{owner}: obs histogram {name!r} needs edges plus "
                "len(edges)+1 counts (underflow and unbounded tail)")


def _validate_cluster_cells(cells: object) -> None:
    if not isinstance(cells, list) or not cells:
        raise ValueError("cluster_cells must be a non-empty list when "
                         "present")
    numeric = ("invocations", "completed", "failed", "wall_clock_s",
               "invocations_per_sec", "sim_completion_ms", "kernel_events",
               "max_shard_rss_mb", "load_imbalance")
    for row in cells:
        if not isinstance(row, dict):
            raise ValueError("each cluster cell must be an object")
        if not isinstance(row.get("cell"), str):
            raise ValueError("cluster cell needs a string 'cell' name")
        if not isinstance(row.get("config"), dict):
            raise ValueError("cluster cell needs a config object")
        if row.get("isolation") not in ("subprocess", "inline"):
            raise ValueError("cluster cell isolation must be 'subprocess' "
                             "or 'inline'")
        for key in numeric:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"cluster cell {row.get('cell')!r}: {key} must be a "
                    "non-negative number")
        shards = row.get("per_shard")
        if not isinstance(shards, list) or not shards:
            raise ValueError("cluster cell needs a non-empty per_shard "
                             "list")
        for shard in shards:
            if not isinstance(shard, dict):
                raise ValueError("per_shard entries must be objects")
            for key in ("shard", "submitted", "wall_clock_s",
                        "peak_rss_mb"):
                if not isinstance(shard.get(key), (int, float)):
                    raise ValueError(f"per_shard.{key} must be a number")
        latency = row.get("latency_ms")
        if not isinstance(latency, dict):
            raise ValueError("cluster cell needs a latency_ms summary")
        for key in ("p50", "p95", "p99", "mean"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"latency_ms.{key} must be a number")
        owner = f"cluster cell {row.get('cell')!r}"
        _validate_cluster_obs(owner, row.get("obs"))
        _validate_slo_block(owner, row.get("slo"))


def _validate_window_cells(cells: object) -> None:
    if not isinstance(cells, list) or not cells:
        raise ValueError("window_cells must be a non-empty list when "
                         "present")
    numeric = ("invocations", "wall_clock_s", "sim_completion_ms",
               "kernel_events", "containers")
    for row in cells:
        if not isinstance(row, dict):
            raise ValueError("each window cell must be an object")
        if row.get("cell") not in WINDOW_CELL_POLICIES:
            raise ValueError("window cell 'cell' must be one of "
                             f"{WINDOW_CELL_POLICIES}")
        if row.get("window_policy") != row.get("cell"):
            raise ValueError("window cell window_policy must match 'cell'")
        if not isinstance(row.get("scheduler"), str):
            raise ValueError("window cell scheduler must be a string")
        for key in numeric:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"window cell {row.get('cell')!r}: {key} must be a "
                    "non-negative number")
        goodput = row.get("goodput")
        if not isinstance(goodput, (int, float)) or not 0 <= goodput <= 1:
            raise ValueError("window cell goodput must be in [0, 1]")
        latency = row.get("latency_ms")
        if not isinstance(latency, dict):
            raise ValueError("window cell needs a latency_ms summary")
        for key in ("p50", "p95", "p99", "mean"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"latency_ms.{key} must be a number")
        _validate_slo_block(f"window cell {row.get('cell')!r}",
                            row.get("slo"))


def _validate_gateway_cells(cells: object) -> None:
    if not isinstance(cells, list) or not cells:
        raise ValueError("gateway_cells must be a non-empty list when "
                         "present")
    numeric = ("offered_rps", "requests", "completed", "shed", "timeouts",
               "errors", "achieved_rps", "goodput_rps")
    for row in cells:
        if not isinstance(row, dict):
            raise ValueError("each gateway cell must be an object")
        if not isinstance(row.get("cell"), str):
            raise ValueError("gateway cell needs a string 'cell' name")
        if row.get("policy") not in ("faasbatch", "vanilla", "adaptive"):
            raise ValueError("gateway cell policy must be 'faasbatch', "
                             "'vanilla' or 'adaptive'")
        if row.get("transport") not in ("inproc", "http"):
            raise ValueError("gateway cell transport must be 'inproc' or "
                             "'http'")
        config = row.get("config")
        if not isinstance(config, dict):
            raise ValueError("gateway cell needs a config object")
        for key in ("rps", "duration_s", "seed"):
            if not isinstance(config.get(key), (int, float)):
                raise ValueError(f"gateway cell config.{key} must be a "
                                 "number")
        if not isinstance(config.get("mix"), dict) or not config["mix"]:
            raise ValueError("gateway cell config.mix must be a non-empty "
                             "object")
        for key in numeric:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"gateway cell {row.get('cell')!r}: {key} must be a "
                    "non-negative number")
        ratio = row.get("goodput_ratio")
        if not isinstance(ratio, (int, float)) or not 0 <= ratio <= 1:
            raise ValueError("gateway cell goodput_ratio must be in "
                             "[0, 1]")
        if not isinstance(row.get("mode_flips"), list):
            raise ValueError("gateway cell mode_flips must be a list")
        latency = row.get("latency_ms")
        if not isinstance(latency, dict):
            raise ValueError("gateway cell needs a latency_ms summary")
        for key in ("p50", "p95", "p99", "mean"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"latency_ms.{key} must be a number")
        _validate_slo_block(f"gateway cell {row.get('cell')!r}",
                            row.get("slo"))


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *report* is a well-formed bench report.

    Used by the CI smoke job (and the unit tests) to guard the format that
    downstream BENCH tooling will parse.  A v5 report carries a ``runs``
    section (the scheduler × engine grid), a ``cluster_cells`` section
    (sharded cluster replays), a ``gateway_cells`` section (live-serving
    load cells), a ``window_cells`` section (fixed-vs-adaptive window
    sizing), or any combination.
    """
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}, "
                         f"got {report.get('schema')!r}")
    config = report.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for key in ("invocations", "functions", "seed"):
        if not isinstance(config.get(key), (int, float)):
            raise ValueError(f"config.{key} must be a number")
    if "queue" in config and config["queue"] not in EVENT_QUEUES:
        raise ValueError(f"config.queue must be one of "
                         f"{sorted(EVENT_QUEUES)} when present, "
                         f"got {config['queue']!r}")
    schedulers = report.get("schedulers")
    if schedulers is not None:
        if not isinstance(schedulers, list) or not schedulers \
                or not all(isinstance(name, str) for name in schedulers):
            raise ValueError("schedulers must be a non-empty list of "
                             "labels when present")
    runs = report.get("runs")
    cluster_cells = report.get("cluster_cells")
    gateway_cells = report.get("gateway_cells")
    window_cells = report.get("window_cells")
    if not (isinstance(runs, list) and runs) \
            and not (isinstance(cluster_cells, list) and cluster_cells) \
            and not (isinstance(gateway_cells, list) and gateway_cells) \
            and not (isinstance(window_cells, list) and window_cells):
        raise ValueError("report needs a non-empty 'runs', "
                         "'cluster_cells', 'gateway_cells' or "
                         "'window_cells' section")
    if cluster_cells is not None:
        _validate_cluster_cells(cluster_cells)
    if gateway_cells is not None:
        _validate_gateway_cells(gateway_cells)
    if window_cells is not None:
        _validate_window_cells(window_cells)
    if runs is None:
        return
    if not isinstance(config.get("window_ms"), (int, float)):
        raise ValueError("config.window_ms must be a number")
    if "queue" not in config:
        raise ValueError("config.queue required on scheduler-grid reports "
                         "(schema v7)")
    if report.get("isolation") not in ("subprocess", "inline"):
        raise ValueError("isolation must be 'subprocess' or 'inline' "
                         "(schema v3)")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list when present")
    numeric = ("invocations", "wall_clock_s", "sim_completion_ms",
               "kernel_events", "events_per_sec", "invocations_per_sec",
               "peak_rss_mb")
    for row in runs:
        if not isinstance(row, dict):
            raise ValueError("each run must be an object")
        if not isinstance(row.get("scheduler"), str):
            raise ValueError("run.scheduler must be a string")
        if row.get("engine") not in ("incremental", "legacy"):
            raise ValueError(f"bad run.engine: {row.get('engine')!r}")
        for key in numeric:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"run.{key} must be a non-negative number")
        if not isinstance(row.get("rss_isolated"), bool):
            raise ValueError("run.rss_isolated must be a bool (schema v3)")
        if "profile_top" in row and not isinstance(row["profile_top"], list):
            raise ValueError("run.profile_top must be a list when present")
        _validate_slo_block(f"run {row.get('scheduler')!r}",
                            row.get("slo"))
    engines = report.get("engines")
    if not isinstance(engines, list) or "incremental" not in engines:
        raise ValueError("engines must list at least 'incremental'")
    # The obs-overhead contract follows the FaaSBatch cell: measured runs
    # must carry the paired obs cell and ratio block; a selection without
    # FaaSBatch has neither (schema v5).
    has_faasbatch = any(row.get("scheduler") == "FaaSBatch"
                        and row.get("engine") == "incremental"
                        for row in runs)
    obs_overhead = report.get("obs_overhead")
    if has_faasbatch:
        if not isinstance(obs_overhead, dict):
            raise ValueError("obs_overhead object required (schema v2)")
        for key in ("plain_wall_clock_s", "obs_wall_clock_s",
                    "wall_clock_ratio"):
            value = obs_overhead.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"obs_overhead.{key} must be a "
                                 "non-negative number")
        if not any(row.get("scheduler") == OBS_RUN_LABEL for row in runs):
            raise ValueError(f"runs must include the {OBS_RUN_LABEL!r} "
                             "cell")
    elif obs_overhead is not None:
        raise ValueError("obs_overhead must be null when FaaSBatch was "
                         "not measured")
    speedup = report.get("speedup")
    if "legacy" in engines:
        if not isinstance(speedup, dict):
            raise ValueError("speedup required when legacy was measured")
        per_scheduler = speedup.get("per_scheduler")
        if not isinstance(per_scheduler, dict) or not per_scheduler:
            raise ValueError("speedup.per_scheduler must be non-empty")
        for name, ratio in per_scheduler.items():
            if not isinstance(ratio, (int, float)) or ratio <= 0:
                raise ValueError(f"speedup.per_scheduler[{name!r}] must be "
                                 "a positive number")
        if not isinstance(speedup.get("overall_wall_clock"), (int, float)):
            raise ValueError("speedup.overall_wall_clock must be a number")
    elif speedup is not None:
        raise ValueError("speedup must be null without a legacy column")
    if "baseline" not in report:
        raise ValueError("baseline key required (schema v3; null when the "
                         "scenario differs from the committed baseline's)")
    baseline = report["baseline"]
    if baseline is not None:
        if not isinstance(baseline, dict):
            raise ValueError("baseline must be an object or null")
        aggregate = baseline.get("aggregate_events_per_sec")
        if not isinstance(aggregate, dict):
            raise ValueError("baseline.aggregate_events_per_sec required")
        for key in ("speedup", "all_cells_speedup"):
            value = aggregate.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"baseline.aggregate_events_per_sec.{key} must be a "
                    "positive number")
        if not isinstance(baseline.get("per_cell"), dict) \
                or not baseline["per_cell"]:
            raise ValueError("baseline.per_cell must be non-empty")


def write_report(report: Dict[str, object], path: str) -> None:
    """Validate and atomically publish *report* at *path*.

    The JSON is written to a sibling temp file and renamed into place, so
    a crash mid-write (a killed cell subprocess, a full disk, Ctrl-C)
    never leaves a truncated artifact under the published name — the old
    report, if any, survives intact.
    """
    validate_report(report)
    temporary = f"{path}.tmp.{os.getpid()}"
    try:
        with open(temporary, "w") as handle:
            json.dump(report, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


def load_report(path: str) -> Dict[str, object]:
    """Read and validate a bench report, rejecting partial artifacts.

    A truncated or malformed file (the signature of a writer that died
    mid-run before atomic writes, or of a corrupted download) raises
    ``ValueError`` naming the file and the likely cause instead of
    surfacing a bare JSON traceback to downstream tooling.
    """
    with open(path) as handle:
        content = handle.read()
    try:
        report = json.loads(content)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid JSON ({exc.msg} at char {exc.pos}); the "
            "artifact is partial or corrupt — likely a bench run that "
            "died mid-write.  Delete it and re-run the bench.") from None
    if not isinstance(report, dict):
        raise ValueError(f"{path} does not contain a report object")
    try:
        validate_report(report)
    except ValueError as exc:
        raise ValueError(f"{path} failed validation: {exc}") from None
    return report


__all__ = [
    "BASELINE_V1",
    "BENCH_SCHEMA",
    "OBS_RUN_LABEL",
    "WINDOW_CELL_POLICIES",
    "BenchConfig",
    "bench_trace",
    "cluster_cell_configs",
    "cluster_report",
    "gateway_report",
    "load_report",
    "run_bench",
    "run_cluster_cell",
    "run_window_cells",
    "validate_report",
    "window_report",
    "write_report",
]


if __name__ == "__main__":
    sys.exit(_cell_main())
