"""Perf-bench harness: the BENCH trajectory's first measurement.

Runs a large Azure-sampled scenario through every scheduler under both
fair-share CPU engines — the incremental one (:mod:`repro.sim.fair_share`)
and the frozen pre-refactor baseline (:mod:`repro.sim.legacy_cpu`) — and
reports *simulator* performance: wall-clock seconds, kernel events/sec,
invocations/sec and peak RSS.  Simulated results are byte-identical between
the two engines (proven by ``tests/integration/test_engine_equivalence.py``),
so any wall-clock difference is pure engine overhead.

The scenario tiles a bursty Azure-shaped replay minute end to end until the
requested invocation count is reached, keeping peak concurrency at one
minute's burst level no matter how large the total grows.  The default tile
is dense (several thousand arrivals per minute): high burst concurrency is
the regime FaaSBatch targets and the regime where per-event CPU-engine cost
dominates the simulator, so it is where the engines' wall-clock behavior
actually differs.  ``--tile-invocations`` dials the density up or down.

Usage::

    python -m repro bench --invocations 50000 --out BENCH_sim.json
    python benchmarks/perf_harness.py            # same defaults

SFS is measured under its own CPU discipline (per-core adaptive slices);
the engine knob does not apply to it, so it appears once per report and is
excluded from the speedup table.
"""

from __future__ import annotations

import gc
import json
import resource
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.kraken import (
    KrakenConfig,
    KrakenParameters,
    KrakenScheduler,
)
from repro.baselines.sfs import SfsScheduler
from repro.baselines.vanilla import VanillaScheduler
from repro.core.config import FaaSBatchConfig
from repro.core.scheduler import FaaSBatchScheduler
from repro.obs import Observability
from repro.platformsim.experiment import run_experiment
from repro.workload.azure import REPLAY_DURATION_MS, replay_minute_arrivals
from repro.workload.durations import DurationSampler
from repro.workload.generator import FIB_FUNCTION_ID, fib_family_specs
from repro.workload.trace import Trace, TraceRecord

#: Report format version; bump on any structural change.
#: v2 added the obs-enabled FaaSBatch run and the ``obs_overhead`` block.
BENCH_SCHEMA = "faasbatch-bench/v2"

#: Scheduler label of the observability-overhead run (tracing + sampling
#: on).  Distinct from "FaaSBatch" so the (scheduler, engine) cells stay
#: unique and the speedup table is unaffected.
OBS_RUN_LABEL = "FaaSBatch+obs"

#: Default arrivals per scenario tile (one simulated minute).  5x the
#: paper's replay-minute volume: a dense burst keeps hundreds of containers
#: concurrently runnable, which is where CPU-engine cost dominates.
TILE_INVOCATIONS = 4000

#: Schedulers whose execution rides the fair-share engine under test.
FAIR_SHARE_SCHEDULERS = ("Vanilla", "Kraken", "FaaSBatch")

#: ``ru_maxrss`` unit: bytes on macOS, kilobytes everywhere else.
_RSS_TO_MB = (1024.0 * 1024.0) if sys.platform == "darwin" else 1024.0


@dataclass(frozen=True)
class BenchConfig:
    """Scenario knobs for one bench report."""

    invocations: int = 50_000
    functions: int = 8
    seed: int = 13
    window_ms: float = 200.0
    tile_invocations: int = TILE_INVOCATIONS

    def __post_init__(self) -> None:
        if self.invocations < 1:
            raise ValueError(f"invocations must be >= 1, got "
                             f"{self.invocations}")
        if self.functions < 1:
            raise ValueError(f"functions must be >= 1, got {self.functions}")
        if self.tile_invocations < 1:
            raise ValueError(f"tile_invocations must be >= 1, got "
                             f"{self.tile_invocations}")


def bench_trace(config: BenchConfig) -> Trace:
    """Tile bursty replay minutes up to ``config.invocations`` arrivals.

    Each tile draws a fresh bursty minute of ``config.tile_invocations``
    arrivals (deterministic per seed + tile index) offset by its minute
    boundary, so total volume scales without inflating peak concurrency
    beyond one minute's burst levels.
    """
    records: List[TraceRecord] = []
    tile = 0
    remaining = config.invocations
    while remaining > 0:
        count = min(config.tile_invocations, remaining)
        arrivals = replay_minute_arrivals(seed=config.seed + tile,
                                          total=count)
        sampler = DurationSampler(seed=config.seed + 7919 * (tile + 1))
        offset = tile * REPLAY_DURATION_MS
        base = len(records)
        for index, arrival in enumerate(arrivals):
            function_id = (f"{FIB_FUNCTION_ID}-"
                           f"{(base + index) % config.functions}")
            records.append(TraceRecord(arrival_ms=offset + arrival,
                                       function_id=function_id,
                                       payload=sampler.sample_fib_n()))
        remaining -= count
        tile += 1
    return Trace(records)


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _RSS_TO_MB


def _measure(scheduler_factory: Callable[[], object], trace: Trace, specs,
             engine: str, obs: Optional["Observability"] = None,
             label: Optional[str] = None):
    """Run one (scheduler, engine) cell; return (row, experiment result).

    ``obs`` turns the run into an observability-overhead measurement;
    ``label`` overrides the row's scheduler name (the obs run reports as
    :data:`OBS_RUN_LABEL` so cell keys stay unique).
    """
    gc.collect()
    started = time.perf_counter()
    result = run_experiment(scheduler_factory(), trace, specs,  # type: ignore[arg-type]
                            workload_label="bench", strict_memory=False,
                            cpu_engine=engine, obs=obs)
    wall_clock_s = time.perf_counter() - started
    invocations = len(result.invocations)
    return result, {
        "scheduler": label if label is not None else result.scheduler_name,
        "engine": engine,
        "invocations": invocations,
        "wall_clock_s": round(wall_clock_s, 3),
        "sim_completion_ms": result.completion_ms,
        "kernel_events": result.kernel_events,
        "events_per_sec": round(result.kernel_events / wall_clock_s, 1),
        "invocations_per_sec": round(invocations / wall_clock_s, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def run_bench(config: BenchConfig, skip_legacy: bool = False,
              log: Optional[Callable[[str], None]] = None
              ) -> Dict[str, object]:
    """Produce one complete bench report (the BENCH_sim.json payload)."""
    emit = log if log is not None else (lambda _msg: None)
    trace = bench_trace(config)
    specs = fib_family_specs(config.functions)
    engines = ["incremental"] + ([] if skip_legacy else ["legacy"])
    runs: List[Dict[str, object]] = []
    obs_overhead: Dict[str, object] = {}
    for engine in engines:
        emit(f"[{engine}] Vanilla: {len(trace)} invocations ...")
        vanilla_result, row = _measure(VanillaScheduler, trace, specs,
                                       engine)
        runs.append(row)
        # The paper's Kraken port learns its SLOs from a Vanilla run; both
        # engines produce identical invocations, so deriving them from this
        # engine's own Vanilla measurement is exact.
        params = KrakenParameters.from_invocations(
            vanilla_result.successful_invocations())
        del vanilla_result
        if engine == "incremental":
            emit("[sfs-discipline] SFS ...")
            runs.append(_measure(SfsScheduler, trace, specs, engine)[1])
        emit(f"[{engine}] Kraken ...")
        runs.append(_measure(
            lambda: KrakenScheduler(KrakenConfig(
                parameters=params, window_ms=config.window_ms)),
            trace, specs, engine)[1])
        emit(f"[{engine}] FaaSBatch ...")
        faasbatch_row = _measure(
            lambda: FaaSBatchScheduler(FaaSBatchConfig(
                window_ms=config.window_ms)),
            trace, specs, engine)[1]
        runs.append(faasbatch_row)
        if engine == "incremental":
            # Observability-overhead cell: the same run with span tracing
            # and 1 Hz telemetry sampling on.  Results are identical (pure
            # observers); the ratio is the bookkeeping cost.
            emit("[incremental] FaaSBatch+obs (tracing + sampling) ...")
            obs_row = _measure(
                lambda: FaaSBatchScheduler(FaaSBatchConfig(
                    window_ms=config.window_ms)),
                trace, specs, engine,
                obs=Observability(tracing=True, sampling=True),
                label=OBS_RUN_LABEL)[1]
            runs.append(obs_row)
            obs_overhead = {
                "note": ("wall-clock(FaaSBatch+obs) / wall-clock("
                         "FaaSBatch), incremental engine; tracing + "
                         "sampling are pure observers so simulated "
                         "results are identical"),
                "plain_wall_clock_s": faasbatch_row["wall_clock_s"],
                "obs_wall_clock_s": obs_row["wall_clock_s"],
                "wall_clock_ratio": round(
                    obs_row["wall_clock_s"]
                    / max(faasbatch_row["wall_clock_s"], 1e-9), 3),
            }
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "config": {
            "invocations": config.invocations,
            "functions": config.functions,
            "seed": config.seed,
            "window_ms": config.window_ms,
            "tile_invocations": config.tile_invocations,
        },
        "engines": engines,
        "runs": runs,
        "obs_overhead": obs_overhead,
        "speedup": None if skip_legacy else _speedup_table(runs),
    }
    return report


def _speedup_table(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """Per-scheduler legacy/incremental wall-clock ratios (+ aggregate)."""
    by_cell = {(r["scheduler"], r["engine"]): r for r in runs}
    per_scheduler: Dict[str, float] = {}
    incremental_total = 0.0
    legacy_total = 0.0
    for name in FAIR_SHARE_SCHEDULERS:
        incremental = by_cell[(name, "incremental")]["wall_clock_s"]
        legacy = by_cell[(name, "legacy")]["wall_clock_s"]
        per_scheduler[name] = round(legacy / incremental, 2)
        incremental_total += incremental
        legacy_total += legacy
    return {
        "note": ("wall-clock(legacy) / wall-clock(incremental); SFS runs "
                 "its own CPU discipline and is excluded"),
        "per_scheduler": per_scheduler,
        "overall_wall_clock": round(legacy_total / incremental_total, 2),
        "max": max(per_scheduler.values()),
    }


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *report* is a well-formed bench report.

    Used by the CI smoke job (and the unit tests) to guard the format that
    downstream BENCH tooling will parse.
    """
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}, "
                         f"got {report.get('schema')!r}")
    config = report.get("config")
    if not isinstance(config, dict):
        raise ValueError("missing config object")
    for key in ("invocations", "functions", "seed", "window_ms"):
        if not isinstance(config.get(key), (int, float)):
            raise ValueError(f"config.{key} must be a number")
    runs = report.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")
    numeric = ("invocations", "wall_clock_s", "sim_completion_ms",
               "kernel_events", "events_per_sec", "invocations_per_sec",
               "peak_rss_mb")
    for row in runs:
        if not isinstance(row, dict):
            raise ValueError("each run must be an object")
        if not isinstance(row.get("scheduler"), str):
            raise ValueError("run.scheduler must be a string")
        if row.get("engine") not in ("incremental", "legacy"):
            raise ValueError(f"bad run.engine: {row.get('engine')!r}")
        for key in numeric:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"run.{key} must be a non-negative number")
    engines = report.get("engines")
    if not isinstance(engines, list) or "incremental" not in engines:
        raise ValueError("engines must list at least 'incremental'")
    obs_overhead = report.get("obs_overhead")
    if not isinstance(obs_overhead, dict):
        raise ValueError("obs_overhead object required (schema v2)")
    for key in ("plain_wall_clock_s", "obs_wall_clock_s",
                "wall_clock_ratio"):
        value = obs_overhead.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"obs_overhead.{key} must be a non-negative "
                             "number")
    if not any(row.get("scheduler") == OBS_RUN_LABEL for row in runs):
        raise ValueError(f"runs must include the {OBS_RUN_LABEL!r} cell")
    speedup = report.get("speedup")
    if "legacy" in engines:
        if not isinstance(speedup, dict):
            raise ValueError("speedup required when legacy was measured")
        per_scheduler = speedup.get("per_scheduler")
        if not isinstance(per_scheduler, dict) or not per_scheduler:
            raise ValueError("speedup.per_scheduler must be non-empty")
        for name, ratio in per_scheduler.items():
            if not isinstance(ratio, (int, float)) or ratio <= 0:
                raise ValueError(f"speedup.per_scheduler[{name!r}] must be "
                                 "a positive number")
        if not isinstance(speedup.get("overall_wall_clock"), (int, float)):
            raise ValueError("speedup.overall_wall_clock must be a number")
    elif speedup is not None:
        raise ValueError("speedup must be null without a legacy column")


def write_report(report: Dict[str, object], path: str) -> None:
    validate_report(report)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")


__all__ = [
    "BENCH_SCHEMA",
    "OBS_RUN_LABEL",
    "BenchConfig",
    "bench_trace",
    "run_bench",
    "validate_report",
    "write_report",
]
