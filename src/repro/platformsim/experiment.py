"""Experiment runner: one scheduler, one trace, one worker machine.

Builds the whole stack (environment → machine → platform), installs the
scheduler's CPU discipline, replays the trace, runs the simulation to full
completion and packages an :class:`~repro.platformsim.results.ExperimentResult`.
Runs are deterministic: identical inputs produce identical results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.common.eventlog import EventLog
from repro.common.units import HOUR
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.model.function import FunctionSpec
from repro.obs import Observability
from repro.platformsim.gateway import start_replay
from repro.platformsim.platform import ServerlessPlatform
from repro.platformsim.results import ExperimentResult
from repro.sim.kernel import Environment
from repro.sim.machine import Machine, build_cpu
from repro.workload.trace import Trace

if TYPE_CHECKING:  # the scheduler type lives in baselines; avoid a cycle
    from repro.baselines.base import Scheduler


def run_experiment(scheduler: "Scheduler",
                   trace: Trace,
                   functions: Sequence[FunctionSpec],
                   calibration: Calibration = DEFAULT_CALIBRATION,
                   workload_label: str = "workload",
                   window_ms: Optional[float] = None,
                   timeout_ms: Optional[float] = None,
                   strict_memory: bool = True,
                   obs: Optional[Observability] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   resilience: Optional[ResiliencePolicy] = None,
                   event_log: Optional[EventLog] = None,
                   cpu_engine: str = "incremental"
                   ) -> ExperimentResult:
    """Run *scheduler* over *trace* and return the measured result.

    ``window_ms`` is only a label (the scheduler object already carries its
    interval); it flows into the result so sweep tables can index rows.
    ``timeout_ms`` bounds simulated (not wall-clock) time: exceeding it
    raises :class:`SimulationError`, which in practice means a scheduling
    deadlock or a pathological configuration.  By default it is the trace's
    last absolute arrival plus two hours of drain time.  ``obs`` supplies
    the run's observability bundle (pass ``Observability(tracing=True)``
    to record per-invocation span timelines); tracing and metrics are pure
    observers, so results are identical with or without them.

    ``fault_plan`` installs a fresh :class:`FaultInjector` executing the
    plan against this run; ``resilience`` turns on the recovery layer
    (retries/timeouts/hedging/circuit breaker).  Both default to off, and
    an empty plan is bit-identical to no plan at all.  ``event_log``
    supplies the platform's decision log (construct it with
    ``enabled=True`` to capture the run's typed event stream).
    ``cpu_engine`` selects the fair-share implementation ("incremental"
    or the frozen pre-refactor "legacy"); both give identical results —
    the knob exists for the perf bench and the equivalence tests.
    """
    if timeout_ms is None:
        timeout_ms = trace.end_ms + 2.0 * HOUR
    env = Environment()
    cpu = build_cpu(env, scheduler.cpu_discipline, calibration.worker_cores,
                    engine=cpu_engine)
    machine = Machine(env, cores=calibration.worker_cores,
                      memory_gb=calibration.worker_memory_gb,
                      cpu=cpu, strict_memory=strict_memory)
    platform = ServerlessPlatform(env, machine, calibration, obs=obs,
                                  resilience=resilience,
                                  event_log=event_log)
    if fault_plan is not None:
        FaultInjector(fault_plan).install(platform)
    for spec in functions:
        platform.register_function(spec)

    all_done = platform.expect_invocations(len(trace))
    machine.start_sampler(horizon_ms=timeout_ms)
    scheduler.start(platform)
    start_replay(platform, trace)

    def waiter():
        count = yield all_done
        return count

    completion_process = env.process(waiter(), name="experiment-waiter")
    completed_count = env.run_process(completion_process, until=timeout_ms)
    if completed_count != len(trace):
        raise SimulationError(
            f"expected {len(trace)} completions, got {completed_count}")

    multiplexer_entries = sum(
        misses for _cid, _hits, misses in platform.multiplexer_stats())
    return ExperimentResult(
        scheduler_name=scheduler.name,
        workload_label=workload_label,
        window_ms=window_ms,
        calibration=calibration,
        invocations=list(platform.completed),
        provisioned_containers=platform.provisioned_containers(),
        clients_created=platform.clients_created(),
        multiplexer_entries=multiplexer_entries,
        samples=machine.samples(),
        completion_ms=env.now,
        kernel_events=env.events_processed,
        final_busy_core_ms=cpu.busy_core_ms(),
        trace=platform.obs.tracer,
        metrics=platform.obs.metrics,
        sampler=platform.obs.sampler)


def run_comparison(schedulers: Sequence["Scheduler"],
                   trace: Trace,
                   functions: Sequence[FunctionSpec],
                   calibration: Calibration = DEFAULT_CALIBRATION,
                   workload_label: str = "workload",
                   fault_plan: Optional[FaultPlan] = None,
                   resilience: Optional[ResiliencePolicy] = None
                   ) -> List[ExperimentResult]:
    """Run several schedulers over the same trace (fresh platform each).

    The same *fault_plan* data is replayed against every scheduler, each
    with its own fresh injector — the chaos benchmark's comparison setup.
    """
    return [run_experiment(scheduler, trace, functions,
                           calibration=calibration,
                           workload_label=workload_label,
                           fault_plan=fault_plan,
                           resilience=resilience)
            for scheduler in schedulers]
