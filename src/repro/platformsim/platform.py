"""The serverless platform: request queue, container services, accounting.

:class:`ServerlessPlatform` is the substrate every scheduling policy runs
on.  It owns the worker machine, the docker facade, the warm-container pool
and the request queue, and exposes the primitives schedulers compose:

* ``submit`` — a request arrives (called by the gateway);
* ``dispatch_work`` / ``launch_work`` — the host CPU cost of scheduling
  decisions (these contend with function execution, which is what makes
  Vanilla's scheduling latency collapse under bursts, Figs. 11a/12a);
* ``acquire_container`` — warm-pool hit or cold start;
* ``release_container`` — return a container to the keep-alive pool;
* ``note_completed`` — completion bookkeeping and the all-done event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.common.errors import (
    ColdStartFailed,
    FunctionNotRegistered,
    SchedulingError,
)
from repro.common.ids import IdFactory
from repro.faults.resilience import ResilienceManager, ResiliencePolicy
from repro.core.multiplexer import SimResourceMultiplexer
from repro.common.eventlog import EventKind, EventLog
from repro.obs import DEFAULT_SIZE_EDGES, Observability
from repro.model.calibration import Calibration
from repro.model.container import SimContainer
from repro.model.docker import SimDockerClient
from repro.model.function import FunctionSpec, Invocation
from repro.model.pool import ContainerPool
from repro.sim.kernel import Environment, Event
from repro.sim.machine import Machine
from repro.sim.primitives import Resource, Store
from repro.workload.trace import TraceRecord

if TYPE_CHECKING:  # the injector installs itself; avoid a runtime cycle
    from repro.faults.injector import FaultInjector


class ServerlessPlatform:
    """One worker-machine serverless platform instance."""

    #: CPU-group name of the platform process (the paper's prototype is a
    #: Python service: its scheduling work is GIL-serialised and its cgroup
    #: competes with the containers for host cores).
    PLATFORM_GROUP = "platform"

    def __init__(self, env: Environment, machine: Machine,
                 calibration: Calibration,
                 ids: Optional[IdFactory] = None,
                 event_log: Optional[EventLog] = None,
                 obs: Optional[Observability] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 retain_completed: bool = True) -> None:
        self.env = env
        #: Structured decision log (disabled by default; ``.enable()`` it).
        self.event_log = event_log if event_log is not None else EventLog()
        #: Observability bundle: span tracer + sampler (off by default)
        #: + metrics.  Bound at the end of construction, once every
        #: telemetry probe below is registered.
        self.obs = obs if obs is not None else Observability()
        self.machine = machine
        self.calibration = calibration
        self.ids = ids if ids is not None else IdFactory()
        self.docker = SimDockerClient(env, machine, calibration, ids=self.ids,
                                      obs=self.obs)
        self.pool = ContainerPool(env, keep_alive_ms=calibration.keep_alive_ms,
                                  metrics=self.obs.metrics)
        self.request_queue: Store[Invocation] = Store(env)
        self.functions: Dict[str, FunctionSpec] = {}
        #: Retained Invocation records (only when ``retain_completed``;
        #: million-invocation replays run with it off and publish into
        #: ``result_sink`` instead, keeping completion accounting O(1)).
        self.retain_completed = retain_completed
        self.completed: List[Invocation] = []
        #: Final-outcome count — the source of truth for progress/all-done
        #: accounting; equals ``len(completed)`` when retaining.
        self.completed_count: int = 0
        #: Optional online accounting sink (``StreamingResultSink``); when
        #: set, every final outcome is published before being dropped or
        #: retained.  Assigned by experiment runners, duck-typed so the
        #: platform keeps zero dependency on the accounting layer.
        self.result_sink = None
        self.expected_invocations: Optional[int] = None
        self._all_done: Event = env.event()
        #: Callbacks invoked on every completion (cluster coordination).
        self.completion_listeners: List = []
        # The platform process: one GIL (decisions serialise) and a CPU
        # group capped at a single core's worth of execution.
        self.machine.cpu.create_group(self.PLATFORM_GROUP, cap=1.0)
        self._gil = Resource(env, capacity=1)
        self.pool.set_expiry_callback(self._on_container_expired)
        #: Fault injector, set by :meth:`FaultInjector.install` (None = no
        #: faults; every hook below is guarded so the off path is free).
        self.faults: Optional["FaultInjector"] = None
        #: Recovery engine (retries/timeouts/hedging/breaker), or None.
        self.resilience: Optional[ResilienceManager] = (
            ResilienceManager(self, resilience)
            if resilience is not None else None)
        #: Dispatch windows currently open across the windowed schedulers
        #: (FaaSBatch's mapper, Kraken); maintained via the pure-observer
        #: window callbacks and sampled into ``scheduler.open_windows``.
        self._open_windows = self.obs.metrics.gauge("scheduler.open_windows")
        # Hot-path metric handles, filled lazily on first publish: eager
        # creation would add zero-valued rows to snapshot digests pinned
        # by the golden tests (the registry only snapshots what exists).
        self._m_requests = None
        self._m_dispatch_decisions = None
        self._m_dispatch_batch = None
        self._m_completed = None
        self._m_e2e = None
        self._register_telemetry_probes()
        self.obs.bind(env)

    def _register_telemetry_probes(self) -> None:
        """Point the time-series sampler at this platform's instruments.

        Probes are plain reads of live state — evaluated only at sample
        boundaries, never scheduling work — so registration is free when
        sampling is disabled.
        """
        sampler = self.obs.sampler
        sampler.register_probe(
            "platform.pending_requests",
            lambda: float(len(self.request_queue)))
        sampler.register_probe(
            "scheduler.open_windows",
            lambda: float(self._open_windows.value))
        sampler.register_probe(
            "pool.idle_containers",
            lambda: float(self.pool.idle_count()))
        sampler.register_probe(
            "containers.live",
            lambda: float(len(self.docker.containers.list())))
        sampler.register_probe(
            "containers.busy",
            lambda: float(sum(1 for c in self.docker.containers.list()
                              if c.active_invocations)))
        sampler.register_probe("cpu.utilization",
                               self.machine.cpu.utilization)
        sampler.register_probe(
            "cpu.runnable_groups",
            lambda: float(self.machine.cpu.runnable_group_count()))
        sampler.register_probe("memory.used_mb",
                               lambda: self.machine.memory.used_mb)

    # -- window observation (pure; used by the windowed schedulers) ---------------

    def window_opened(self, _time_ms: float) -> None:
        self._open_windows.inc()
        self.obs.metrics.counter("scheduler.windows_opened").inc()

    def window_closed(self, _time_ms: float) -> None:
        self._open_windows.dec()

    def _on_container_expired(self, container: SimContainer) -> None:
        self.event_log.record(self.env.now, EventKind.CONTAINER_EXPIRED,
                              container_id=container.container_id)
        self.obs.tracer.container_event(container.container_id, "expired",
                                        self.env.now)

    # -- registration / arrival ----------------------------------------------------

    def register_function(self, spec: FunctionSpec) -> None:
        if spec.function_id in self.functions:
            raise SchedulingError(
                f"function {spec.function_id!r} registered twice")
        self.functions[spec.function_id] = spec

    def expect_invocations(self, count: int) -> Event:
        """Declare the run size; returns the event fired at full completion."""
        if count <= 0:
            raise SchedulingError(f"expected count must be > 0, got {count}")
        self.expected_invocations = count
        return self._all_done

    def submit(self, record: TraceRecord) -> Invocation:
        """A request arrives at the platform (stamped with the current time)."""
        spec = self.functions.get(record.function_id)
        if spec is None:
            raise FunctionNotRegistered(record.function_id)
        invocation = Invocation(
            invocation_id=self.ids.next("inv"),
            function=spec,
            payload=record.payload,
            arrival_ms=self.env.now)
        self.request_queue.put(invocation)
        self.event_log.record(self.env.now, EventKind.REQUEST_ARRIVED,
                              invocation_id=invocation.invocation_id,
                              function_id=record.function_id)
        self.obs.tracer.invocation_arrived(
            invocation.invocation_id, record.function_id, self.env.now)
        metric = self._m_requests
        if metric is None:
            metric = self._m_requests = \
                self.obs.metrics.counter("platform.requests")
        metric.inc()
        return invocation

    def requeue(self, invocation: Invocation) -> None:
        """Re-enqueue a retried invocation; the scheduler re-batches it.

        Called by the resilience layer after the backoff delay.  The
        invocation was already reset (:meth:`Invocation.reset_for_retry`),
        so it looks like a fresh arrival to whatever policy is serving the
        queue — under FaaSBatch/Kraken it groups with other queued work.
        """
        self.request_queue.put(invocation)
        self.event_log.record(self.env.now, EventKind.REQUEST_ARRIVED,
                              invocation_id=invocation.invocation_id,
                              function_id=invocation.function.function_id,
                              attempt=invocation.attempts)
        self.obs.tracer.invocation_arrived(
            invocation.trace_id, invocation.function.function_id,
            self.env.now)
        self.obs.metrics.counter("platform.requeued").inc()

    # -- scheduler primitives ---------------------------------------------------------

    def dispatch_work(self, invocation_count: int = 1) -> Event:
        """Platform CPU work of dispatching *invocation_count* requests.

        Runs inside the platform process: serialised by its GIL and capped
        at one core, contended with the containers' groups.  Under a burst
        of per-invocation decisions this is the queueing bottleneck behind
        Vanilla's and SFS's multi-second scheduling tails (Figs. 11a/12a);
        FaaSBatch makes one decision per *group* and stays sub-second.
        """
        work = (self.calibration.scheduling_cpu_work_per_decision_ms
                + self.calibration.scheduling_cpu_work_per_invocation_ms
                * invocation_count)
        self.event_log.record(self.env.now, EventKind.DISPATCH_DECISION,
                              invocation_count=invocation_count)
        counter = self._m_dispatch_decisions
        if counter is None:
            counter = self._m_dispatch_decisions = \
                self.obs.metrics.counter("platform.dispatch_decisions")
            self._m_dispatch_batch = self.obs.metrics.histogram(
                "platform.dispatch_batch_size", edges=DEFAULT_SIZE_EDGES)
        counter.inc()
        self._m_dispatch_batch.observe(invocation_count)
        return self._platform_work(work, label="dispatch")

    def launch_work(self) -> Event:
        """Platform CPU work of one container-launch decision (docker API)."""
        self.event_log.record(self.env.now, EventKind.LAUNCH_DECISION)
        self.obs.metrics.counter("platform.launch_decisions").inc()
        return self._platform_work(
            self.calibration.scheduling_cpu_work_per_launch_ms,
            label="launch")

    def _platform_work(self, work: float, label: str) -> Event:
        """Run *work* core-ms in the GIL-serialised platform process."""

        def run():
            token = self._gil.request()
            yield token
            try:
                yield self.machine.cpu.submit(
                    work, group=self.PLATFORM_GROUP, label=label)
            finally:
                token.release()

        return self.env.process(run(), name=f"platform-{label}")

    def try_acquire_warm(self, function: FunctionSpec) -> Optional[SimContainer]:
        """Non-blocking warm-pool check-and-take (the prototype's fast path).

        Real handler threads check the pool the moment a request arrives —
        concurrently.  Under a burst they all observe an empty pool and all
        decide to cold-start, which is exactly how Vanilla ends up
        provisioning hundreds of containers (§V-B2).
        """
        container = self.pool.acquire(function.function_id)
        if container is not None:
            self.event_log.record(self.env.now, EventKind.WARM_HIT,
                                  container_id=container.container_id,
                                  function_id=function.function_id)
        return container

    def cold_start(self, function: FunctionSpec,
                   concurrency_limit: Optional[int],
                   with_multiplexer: bool):
        """Generator: provision a fresh container; returns (container, cold_ms).

        Raises :class:`~repro.common.errors.ColdStartRefused` (fail-fast,
        no latency paid) while the function's circuit breaker is open, and
        :class:`~repro.common.errors.ColdStartFailed` (latency paid, the
        container died) when the fault plan fails this start.  Both are
        transient: callers hand the affected invocations to
        :meth:`fail_undispatched` so the retry path can re-enqueue them.
        """
        if self.resilience is not None:
            self.resilience.check_cold_start_allowed(function)
        multiplexer = (SimResourceMultiplexer(self.env)
                       if with_multiplexer else None)
        handle = self.docker.containers.run(
            function, concurrency_limit=concurrency_limit,
            multiplexer=multiplexer)
        self.event_log.record(self.env.now, EventKind.COLD_START_BEGAN,
                              container_id=handle.id,
                              function_id=function.function_id)
        self.obs.tracer.container_event(handle.id, "cold-start-began",
                                        self.env.now,
                                        function_id=function.function_id)
        cold_start_ms = yield handle.started
        if self.faults is not None \
                and self.faults.take_cold_start_fault(function):
            # The provisioning latency was paid, then the container died
            # before serving anything.  It never enters the pool's books.
            handle.sim.stop()
            self.obs.tracer.container_event(
                handle.id, "cold-start-failed", self.env.now,
                function_id=function.function_id)
            if self.resilience is not None:
                self.resilience.record_cold_start_failure(
                    function.function_id)
            raise ColdStartFailed(
                f"{handle.id} died starting {function.function_id!r}")
        self.pool.register_started(handle.sim)
        self.event_log.record(self.env.now, EventKind.COLD_START_ENDED,
                              container_id=handle.id,
                              cold_start_ms=float(cold_start_ms))
        self.obs.tracer.container_event(handle.id, "cold-start-ended",
                                        self.env.now,
                                        cold_start_ms=float(cold_start_ms))
        self.obs.metrics.histogram("platform.cold_start_ms").observe(
            float(cold_start_ms))
        if self.resilience is not None:
            self.resilience.record_cold_start_success(function.function_id)
        if self.faults is not None:
            self.faults.on_container_started(handle.sim)
        return handle.sim, float(cold_start_ms)

    def acquire_container(self, function: FunctionSpec,
                          concurrency_limit: Optional[int],
                          with_multiplexer: bool):
        """Generator: warm hit or cold start, whichever is available *now*.

        Returns ``(container, cold_start_ms)`` — zero for warm hits.  The
        caller decides where in its control flow to pay
        :meth:`launch_work`.
        """
        warm = self.try_acquire_warm(function)
        if warm is not None:
            return warm, 0.0
        container, cold_start_ms = yield from self.cold_start(
            function, concurrency_limit, with_multiplexer)
        return container, cold_start_ms

    def release_container(self, container: SimContainer) -> None:
        if not self.pool.release(container):
            # Crashed/stopped out of band: the pool refused to re-park it.
            self.obs.tracer.container_event(
                container.container_id, "release-rejected", self.env.now)
            return
        self.event_log.record(self.env.now, EventKind.CONTAINER_RELEASED,
                              container_id=container.container_id)
        self.obs.tracer.container_event(container.container_id, "released",
                                        self.env.now)

    # -- dispatch ------------------------------------------------------------------

    def begin_dispatch(self, container: SimContainer,
                       invocations: List[Invocation],
                       cold_start_ms: float) -> List[Invocation]:
        """Stamp dispatch of *invocations* to *container*; returns accepted.

        The single dispatch point shared by every scheduler: injected
        dispatch faults divert their invocations straight into the normal
        completion path (where the retry logic sees them), everything else
        is stamped, traced and armed with the resilience watchdogs.  With
        no faults and no policy this reduces exactly to the old inline
        ``mark_dispatched`` + tracer loop.
        """
        now = self.env.now
        accepted: List[Invocation] = []
        for invocation in invocations:
            if self.faults is not None:
                error = self.faults.take_dispatch_fault(invocation)
                if error is not None:
                    invocation.mark_failed(now, error)
                    self.note_completed(invocation)
                    continue
            invocation.mark_dispatched(now, cold_start_ms)
            self.obs.tracer.invocation_dispatched(
                invocation.trace_id, now, cold_start_ms,
                container.container_id)
            if self.resilience is not None:
                self.resilience.watch(invocation, container)
            accepted.append(invocation)
        return accepted

    def fail_undispatched(self, invocations: List[Invocation],
                          error: BaseException) -> None:
        """Fail *invocations* that never reached a container.

        Used when a cold start dies or is refused: the invocations flow
        through :meth:`note_completed` so retries (or final failure
        accounting) happen exactly as for an execution failure.
        """
        now = self.env.now
        for invocation in invocations:
            invocation.mark_failed(now, error)
            self.note_completed(invocation)

    # -- completion -----------------------------------------------------------------

    def note_completed(self, invocation: Invocation) -> None:
        failed = invocation.error is not None
        if failed and self.resilience is not None \
                and self.resilience.should_retry(invocation):
            # Intercepted: the attempt is archived and the invocation
            # re-enqueued after backoff.  Only *final* outcomes reach
            # ``completed`` (and the all-done accounting below).
            self.resilience.schedule_retry(invocation)
            return
        self.completed_count += 1
        if self.result_sink is not None:
            self.result_sink.observe_invocation(invocation)
        if self.retain_completed:
            self.completed.append(invocation)
        kind = (EventKind.INVOCATION_FAILED if failed
                else EventKind.INVOCATION_COMPLETED)
        self.event_log.record(self.env.now, kind,
                              invocation_id=invocation.invocation_id,
                              container_id=invocation.container_id)
        responded = (invocation.responded_ms
                     if invocation.responded_ms is not None else self.env.now)
        self.obs.tracer.invocation_responded(invocation.trace_id,
                                             responded)
        if failed:
            self.obs.metrics.counter("platform.failed").inc()
        else:
            metric = self._m_completed
            if metric is None:
                metric = self._m_completed = \
                    self.obs.metrics.counter("platform.completed")
            metric.inc()
            if invocation.completed_ms is not None:
                histo = self._m_e2e
                if histo is None:
                    histo = self._m_e2e = self.obs.metrics.histogram(
                        "platform.e2e_latency_ms")
                histo.observe(invocation.end_to_end_ms)
        for listener in self.completion_listeners:
            listener(invocation)
        if (self.expected_invocations is not None
                and self.completed_count == self.expected_invocations):
            self._all_done.succeed(self.completed_count)

    # -- metrics helpers ----------------------------------------------------------------

    def provisioned_containers(self) -> int:
        """Containers cold-started during the run (Figs. 13b/14b)."""
        return self.pool.provisioned_total

    def clients_created(self) -> int:
        """Storage client instances built across all containers."""
        return sum(c.clients_created
                   for c in self.docker.containers.list(all=True))

    def total_client_memory_mb(self) -> float:
        """Memory spent on client instances (live accounting)."""
        return (self.clients_created()
                * self.calibration.client_memory_mb)

    def multiplexer_stats(self) -> List[Tuple[str, int, int]]:
        """Per-container (id, hits+waits, misses) for multiplexed containers."""
        out = []
        for container in self.docker.containers.list(all=True):
            if container.multiplexer is not None:
                stats = container.multiplexer.stats
                out.append((container.container_id,
                            stats.hits + stats.in_flight_waits,
                            stats.misses))
        return out
