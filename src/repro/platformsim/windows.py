"""Dispatch-window collection shared by windowed schedulers.

Both FaaSBatch's Invoke Mapper and the ported Kraken gather "all invocation
requests within this time interval" (§III-B) from the platform's request
queue and treat them as concurrent.  :func:`collect_window_policy` implements
that once, with careful handling of the race between the window timer and a
request arriving at the very same simulated instant.  How long the window
stays open is delegated to a :class:`~repro.core.windowing.WindowPolicy`;
the fixed-width helpers below wrap the policy path with a
:class:`~repro.core.windowing.FixedWindow`, so the historical constant-window
behaviour runs through the exact same drain loop (bit-identical, pinned by
the engine goldens).

``on_open`` / ``on_close`` are optional *pure observer* callbacks fired when
the window opens (first item taken) and when its batch is returned; the
platform uses them to maintain the ``scheduler.open_windows`` telemetry
gauge.  They must not schedule events or touch the queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, TypeVar

from repro.sim.kernel import Environment
from repro.sim.primitives import Store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.windowing import WindowPolicy

T = TypeVar("T")

#: Observer of a window boundary: called with the simulated time (ms).
WindowObserver = Callable[[float], None]


def collect_window(env: Environment, queue: Store[T], window_ms: float,
                   on_open: Optional[WindowObserver] = None,
                   on_close: Optional[WindowObserver] = None):
    """Generator: wait for the first item, then drain the window.

    Blocks until one item arrives, then keeps collecting items until
    ``window_ms`` has elapsed *since the first arrival*.  Returns the list
    of items (at least one).  Use as ``batch = yield from collect_window(...)``.
    """
    batch, _opened = yield from collect_window_timed(
        env, queue, window_ms, on_open=on_open, on_close=on_close)
    return batch


def collect_window_timed(env: Environment, queue: Store[T],
                         window_ms: float,
                         on_open: Optional[WindowObserver] = None,
                         on_close: Optional[WindowObserver] = None):
    """Like :func:`collect_window` but returns ``(batch, window_open_ms)``.

    ``window_open_ms`` is the simulated time the *first item* was taken —
    the true start of the dispatch window.  The wait for that first arrival
    (arbitrarily long on sparse workloads) is *not* part of the window.
    """
    # Imported lazily: repro.core.__init__ pulls in the mapper, which pulls
    # in this module — a module-level import here would close that cycle.
    from repro.core.windowing import FixedWindow

    if window_ms < 0:
        raise ValueError(f"negative window: {window_ms}")
    result = yield from collect_window_policy(
        env, queue, FixedWindow(window_ms),
        on_open=on_open, on_close=on_close)
    return result


def collect_window_policy(env: Environment, queue: Store[T],
                          policy: WindowPolicy,
                          key: Optional[str] = None,
                          on_open: Optional[WindowObserver] = None,
                          on_close: Optional[WindowObserver] = None):
    """Drain one dispatch window whose length ``policy`` decides at open.

    Every arrival (the opener and each drained item) is reported to
    ``policy.observe_arrival(key, now)`` so adaptive policies can track the
    arrival rate; the policy's ``window_ms(key)`` is read exactly once, when
    the window opens.  Returns ``(batch, window_open_ms)``.
    """
    first: T = yield queue.get()
    window_open = env.now
    policy.observe_arrival(key, window_open)
    window_ms = policy.window_ms(key)
    if window_ms < 0:
        raise ValueError(f"negative window: {window_ms}")
    if on_open is not None:
        on_open(window_open)
    batch: List[T] = [first]
    window_end = env.now + window_ms
    while env.now < window_end:
        get_event = queue.get()
        timer = env.timeout(window_end - env.now)
        winner, value = yield (get_event | timer)
        if winner is get_event:
            policy.observe_arrival(key, env.now)
            batch.append(value)
            continue
        # The timer won.  The pending getter must be withdrawn so it does
        # not silently swallow a future request — unless an item raced in
        # at this exact instant, in which case we must keep it.
        if get_event.triggered:
            policy.observe_arrival(key, env.now)
            batch.append(get_event.value)
        else:
            queue.cancel_get(get_event)
        break
    if on_close is not None:
        on_close(env.now)
    return batch, window_open
