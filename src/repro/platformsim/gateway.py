"""The request gateway: replays a trace into the platform.

The paper's client VM fires invocations at the worker according to the
trace's timestamps; the client side is not a bottleneck (§IV separates a
small client VM from the large worker VM), so replay itself is free — cost
starts accruing when the platform handles the request.
"""

from __future__ import annotations

from repro.platformsim.platform import ServerlessPlatform
from repro.sim.kernel import Process
from repro.workload.trace import Trace


def start_replay(platform: ServerlessPlatform, trace: Trace) -> Process:
    """Spawn the replay process; requests hit the platform on schedule."""

    def replay():
        for record in trace:
            delay = record.arrival_ms - platform.env.now
            if delay > 0:
                yield platform.env.timeout(delay)
            platform.submit(record)

    return platform.env.process(replay(), name="gateway-replay")
