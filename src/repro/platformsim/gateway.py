"""The request gateway: replays a trace into the platform.

The paper's client VM fires invocations at the worker according to the
trace's timestamps; the client side is not a bottleneck (§IV separates a
small client VM from the large worker VM), so replay itself is free — cost
starts accruing when the platform handles the request.

Injection is the kernel's batch-arrival fast path: the injector is a plain
event callback (no generator process), it submits a whole same-instant
burst of arrivals in one pass without touching the event queue between
records, and it re-arms a single reusable timer per inter-arrival gap — a
sequence-number bump and one bucket append in the calendar queue.  The
observable schedule is bit-identical to the historical generator replay:
each positive gap costs exactly one timer event with the same
``now + delay`` float arithmetic and the same sequence allocation point,
and zero-delay records are submitted inline exactly as the generator did.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.platformsim.platform import ServerlessPlatform
from repro.sim.kernel import Environment, Event, Timeout
from repro.workload.trace import Trace


class ReplayInjector:
    """Drives timestamped records into a submit callable on schedule.

    Starts via :meth:`Environment.defer`, so the first records flow at the
    same urgent-phase position the historical replay process started at.
    ``on_finished`` (if given) runs right after the last record is
    submitted — at the same instant the generator replay fell off its loop.
    """

    __slots__ = ("env", "_submit", "_records", "_pending", "_timer",
                 "_on_finished")

    def __init__(self, env: Environment, records: Iterable[Any],
                 submit: Callable[[Any], None],
                 on_finished: Optional[Callable[[], None]] = None) -> None:
        self.env = env
        self._submit = submit
        self._records = iter(records)
        self._pending: Any = None
        self._timer: Optional[Timeout] = None
        self._on_finished = on_finished
        env.defer(self._pump)

    def _on_timer(self, _event: Event) -> None:
        self._pump()

    def _pump(self) -> None:
        """Submit every due record, then arm one timer for the next gap."""
        env = self.env
        submit = self._submit
        records = self._records
        now = env._now
        record = self._pending
        while True:
            if record is None:
                try:
                    record = next(records)
                except StopIteration:
                    self._pending = None
                    if self._on_finished is not None:
                        self._on_finished()
                    return
            delay = record.arrival_ms - now
            if delay > 0:
                self._pending = record
                timer = self._timer
                if timer is not None and timer._callbacks is None:
                    # Inline re-arm (Timeout.reset minus its guards): the
                    # injector owns the timer, it is fully processed and
                    # never cancelled.  ``now + delay`` keeps the exact
                    # float arithmetic of a fresh ``timeout(delay)``.
                    when = now + delay
                    timer.delay = delay
                    if when > now:
                        env._future.push(when, env._sequence, timer)
                        env._sequence += 1
                    else:
                        env._immediate.append(timer)
                else:
                    timer = env.timeout(delay)
                    self._timer = timer
                timer._callbacks = self._on_timer
                return
            submit(record)
            record = None


def start_replay(platform: ServerlessPlatform, trace: Trace) -> ReplayInjector:
    """Start the replay; requests hit the platform on schedule."""
    return ReplayInjector(platform.env, trace, platform.submit)
