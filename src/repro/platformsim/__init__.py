"""Platform harness: gateway, platform, windows, experiment runner, results."""

from repro.common.eventlog import EventKind, EventLog, LogRecord
from repro.platformsim.experiment import run_comparison, run_experiment
from repro.platformsim.gateway import ReplayInjector, start_replay
from repro.platformsim.platform import ServerlessPlatform
from repro.platformsim.results import ExperimentResult
from repro.platformsim.windows import collect_window

__all__ = [
    "EventKind",
    "EventLog",
    "ExperimentResult",
    "LogRecord",
    "ReplayInjector",
    "ServerlessPlatform",
    "collect_window",
    "run_comparison",
    "run_experiment",
    "start_replay",
]
