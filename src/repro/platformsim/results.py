"""Experiment results: per-invocation latency series and resource costs.

:class:`ExperimentResult` is the unit every benchmark consumes.  It exposes
exactly the paper's metrics:

* the four latency components as empirical CDFs (Figs. 11/12);
* total memory usage, provisioned containers and CPU cost (Figs. 13/14);
* the per-invocation storage-client memory footprint (Fig. 14d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.cdf import EmpiricalCdf
from repro.common.stats import SampleStats
from repro.model.calibration import Calibration
from repro.model.function import Invocation, InvocationState
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace import InvocationTracer
from repro.sim.machine import ResourceSample


@dataclass
class ExperimentResult:
    """Everything measured in one scheduler-vs-workload run."""

    scheduler_name: str
    workload_label: str
    window_ms: Optional[float]
    calibration: Calibration
    invocations: List[Invocation]
    provisioned_containers: int
    clients_created: int
    multiplexer_entries: int
    samples: List[ResourceSample]
    completion_ms: float
    #: Live kernel events processed during the run (cancelled timers are
    #: excluded); the perf bench reports events/sec from this.
    kernel_events: int = 0
    #: Observability artefacts of the run.  ``trace`` holds completed span
    #: timelines when tracing was enabled (else an empty, disabled tracer);
    #: ``metrics`` is the platform's registry snapshot source; ``sampler``
    #: carries the sampled telemetry series when sampling was enabled.
    #: None of the three appears in :meth:`to_dict` — they are pure
    #: observers and results must serialise identically without them.
    trace: Optional[InvocationTracer] = None
    metrics: Optional[MetricsRegistry] = None
    sampler: Optional[TimeSeriesSampler] = None
    #: Exact cumulative busy-core-ms read from the CPU engine at run
    #: completion.  The sampler only records on its 1 Hz grid, so the last
    #: sample misses work done between the final grid point and
    #: completion; :meth:`total_cpu_core_seconds` prefers this value and
    #: falls back to the last sample for legacy/deserialised results.
    final_busy_core_ms: Optional[float] = None

    # -- success / failure -----------------------------------------------------

    def successful_invocations(self) -> List[Invocation]:
        """Invocations that completed normally (latency series use these)."""
        return [inv for inv in self.invocations
                if inv.state is InvocationState.COMPLETED]

    def failed_invocations(self) -> List[Invocation]:
        """Invocations whose handler raised (isolated per-invocation)."""
        return [inv for inv in self.invocations
                if inv.state is InvocationState.FAILED]

    @property
    def failure_count(self) -> int:
        return len(self.failed_invocations())

    # -- resilience metrics (chaos benchmark) ----------------------------------

    def goodput(self) -> float:
        """Fraction of invocations that ultimately succeeded, in [0, 1]."""
        if not self.invocations:
            raise ValueError("no invocations")
        return len(self.successful_invocations()) / len(self.invocations)

    def total_attempts(self) -> int:
        """Execution attempts across all invocations (retries included)."""
        return sum(inv.attempts for inv in self.invocations)

    def retry_amplification(self) -> float:
        """Attempts per invocation: 1.0 means no retries were needed."""
        if not self.invocations:
            raise ValueError("no invocations")
        return self.total_attempts() / len(self.invocations)

    def retried_invocations(self) -> List[Invocation]:
        return [inv for inv in self.invocations if inv.attempts > 1]

    def hedged_count(self) -> int:
        """Invocations whose result came from a hedged shadow."""
        return sum(1 for inv in self.invocations if inv.hedged)

    def total_response_stats(self) -> SampleStats:
        """First-arrival-to-response latency (retries + backoffs included)."""
        return SampleStats(inv.total_response_latency_ms
                           for inv in self.successful_invocations())

    def total_response_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(inv.total_response_latency_ms
                            for inv in self.successful_invocations())

    # -- latency series (Figs. 11 / 12) ---------------------------------------

    def scheduling_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(
            inv.latency.scheduling_ms
            for inv in self.successful_invocations())

    def cold_start_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(
            inv.latency.cold_start_ms
            for inv in self.successful_invocations())

    def execution_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(
            inv.latency.execution_ms
            for inv in self.successful_invocations())

    def execution_plus_queuing_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(
            inv.latency.execution_plus_queuing_ms
            for inv in self.successful_invocations())

    def end_to_end_cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(inv.end_to_end_ms
                            for inv in self.successful_invocations())

    def response_latency_cdf(self) -> EmpiricalCdf:
        """Arrival-to-response latency — what callers experience.

        Differs from :meth:`end_to_end_cdf` under batch semantics: the
        response waits for the whole group unless the early-return
        extension is on.
        """
        return EmpiricalCdf(inv.response_latency_ms
                            for inv in self.successful_invocations())

    def latency_stats(self) -> SampleStats:
        return SampleStats(inv.end_to_end_ms
                           for inv in self.successful_invocations())

    def total_queuing_ms(self) -> float:
        return sum(inv.latency.queuing_ms
                   for inv in self.successful_invocations())

    # -- resource costs (Figs. 13 / 14) ------------------------------------------

    def _active_samples(self) -> Sequence[ResourceSample]:
        """Samples within the active run window [0, completion]."""
        active = [s for s in self.samples if s.time_ms <= self.completion_ms]
        if not active:
            raise ValueError("no resource samples within the run window")
        return active

    def average_memory_mb(self) -> float:
        """Mean sampled system memory (Figs. 13a/14a)."""
        active = self._active_samples()
        return sum(s.memory_mb for s in active) / len(active)

    def peak_memory_mb(self) -> float:
        return max(s.memory_mb for s in self._active_samples())

    def average_cpu_utilization(self) -> float:
        """Mean sampled CPU utilisation in [0, 1] (Figs. 13c/14c)."""
        active = self._active_samples()
        return sum(s.cpu_utilization for s in active) / len(active)

    def total_cpu_core_seconds(self) -> float:
        """Total computation performed during the run, in core-seconds."""
        if self.final_busy_core_ms is not None:
            return self.final_busy_core_ms / 1000.0
        return self._active_samples()[-1].cpu_busy_core_ms / 1000.0

    def client_memory_footprint_mb(self) -> float:
        """Average client-creation memory charged per invocation (Fig. 14d)."""
        if not self.invocations:
            raise ValueError("no invocations")
        total_mb = (self.clients_created * self.calibration.client_memory_mb
                    + self.multiplexer_entries
                    * self.calibration.multiplexer_entry_mb)
        return total_mb / len(self.invocations)

    def invocations_per_container(self) -> float:
        """How many invocations one provisioned container served on average."""
        if self.provisioned_containers == 0:
            raise ValueError("no containers provisioned")
        return len(self.invocations) / self.provisioned_containers

    # -- export ----------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Deterministic dump of the run's metrics registry (may be empty)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def to_dict(self) -> dict:
        """A JSON-serialisable archive of the run (per-invocation rows).

        Round-trips through :meth:`summary_from_dict` for comparisons
        against pinned artefacts; the full Invocation objects are not
        reconstructed (they reference live FunctionSpecs).
        """
        return {
            "scheduler": self.scheduler_name,
            "workload": self.workload_label,
            "window_ms": self.window_ms,
            "provisioned_containers": self.provisioned_containers,
            "clients_created": self.clients_created,
            "multiplexer_entries": self.multiplexer_entries,
            "completion_ms": self.completion_ms,
            "failures": self.failure_count,
            "invocations": [
                {
                    "id": inv.invocation_id,
                    "function": inv.function.function_id,
                    "arrival_ms": inv.arrival_ms,
                    "scheduling_ms": inv.latency.scheduling_ms,
                    "cold_start_ms": inv.latency.cold_start_ms,
                    "queuing_ms": inv.latency.queuing_ms,
                    "execution_ms": inv.latency.execution_ms,
                    "state": inv.state.value,
                }
                for inv in self.invocations
            ],
            "samples": [
                {"time_ms": s.time_ms, "memory_mb": s.memory_mb,
                 "cpu_utilization": s.cpu_utilization}
                for s in self.samples
            ],
        }

    def to_json(self, path) -> None:
        """Write :meth:`to_dict` to *path* as JSON."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    # -- summary row -----------------------------------------------------------------

    def summary_row(self) -> List[object]:
        """The standard report row used by the benchmark tables."""
        stats = self.latency_stats()
        return [
            self.scheduler_name,
            len(self.invocations),
            self.provisioned_containers,
            round(self.average_memory_mb(), 1),
            round(self.average_cpu_utilization() * 100.0, 2),
            round(stats.median, 1),
            round(stats.percentile(98.0), 1),
            round(self.completion_ms / 1000.0, 2),
        ]

    SUMMARY_HEADERS = [
        "scheduler", "invocations", "containers", "avg_mem_MB",
        "avg_cpu_%", "p50_latency_ms", "p98_latency_ms", "makespan_s",
    ]
