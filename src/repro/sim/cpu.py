"""Processor-sharing CPU model with two-level max-min fair allocation.

This is the substrate that makes the paper's latency effects emerge:

* The worker VM has ``cores`` physical cores.
* Every running computation is a :class:`CpuTask` with a remaining amount of
  *work* in core-milliseconds and a per-task cap (``max_share``, normally 1.0
  because one thread can use at most one core).
* Tasks belong to a :class:`CpuGroup` (a container, or the host group for
  platform work).  A group can be capped (``cpuset_cpus`` / ``cpu_count`` in
  the paper's prototype).
* Capacity is divided by **two-level water-filling**: max-min fairness across
  groups (each group's demand is the sum of its tasks' caps, bounded by the
  group cap), then max-min fairness across the tasks inside each group.

This approximates Linux CFS with cgroup cpusets closely enough to reproduce
the paper's observations: e.g. when Vanilla launches hundreds of containers,
platform scheduling work and cold-start work contend with function execution
and *everything* slows down proportionally; whereas FaaSBatch's single
container receives the same aggregate core share as hundreds of Monopoly
containers would for the same work (Fig. 1's "Sharing ≈ Monopoly").

The model is work-conserving: as long as total demand >= capacity, exactly
``cores`` core-ms of work complete per millisecond.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.units import TIME_EPSILON
from repro.sim.kernel import Environment, Event


class CpuTask:
    """One unit of computation being serviced by the CPU."""

    __slots__ = ("work_total", "remaining", "max_share", "group", "done",
                 "rate", "started_at", "finished_at", "label")

    def __init__(self, work: float, max_share: float, group: "CpuGroup",
                 done: Event, started_at: float, label: str) -> None:
        self.work_total = work
        self.remaining = work
        self.max_share = max_share
        self.group = group
        self.done = done
        self.rate = 0.0
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.label = label

    def __repr__(self) -> str:
        return (f"<CpuTask {self.label} remaining={self.remaining:.3f} "
                f"rate={self.rate:.3f}>")


class CpuGroup:
    """A set of tasks sharing a cap (a container, or the uncapped host)."""

    __slots__ = ("name", "cap", "tasks")

    def __init__(self, name: str, cap: Optional[float]) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"group cap must be > 0, got {cap}")
        self.name = name
        self.cap = cap  # None = unbounded (host group)
        # Insertion-ordered on purpose: CpuTask hashes by identity, so a
        # set's iteration order would vary run-to-run and leak into float
        # accumulation and same-instant completion order (nondeterminism).
        self.tasks: Dict[CpuTask, None] = {}

    @property
    def demand(self) -> float:
        """Aggregate core demand of this group's runnable tasks."""
        total = sum(task.max_share for task in self.tasks)
        if self.cap is not None:
            total = min(total, self.cap)
        return total

    def __repr__(self) -> str:
        return f"<CpuGroup {self.name} cap={self.cap} tasks={len(self.tasks)}>"


def waterfill(capacity: float, demands: List[float]) -> List[float]:
    """Max-min fair allocation of *capacity* across entities with caps.

    Each entity i receives at most ``demands[i]``; leftover capacity is
    shared equally among unsatisfied entities (classic progressive filling).
    Returns the per-entity allocation; sums to min(capacity, sum(demands)).
    """
    n = len(demands)
    allocation = [0.0] * n
    if n == 0 or capacity <= 0:
        return allocation
    remaining = capacity
    active = [i for i in range(n) if demands[i] > 0]
    while active and remaining > TIME_EPSILON:
        share = remaining / len(active)
        bounded = [i for i in active if demands[i] - allocation[i] <= share]
        if bounded:
            for i in bounded:
                grant = demands[i] - allocation[i]
                allocation[i] = demands[i]
                remaining -= grant
            active = [i for i in active if i not in set(bounded)]
        else:
            for i in active:
                allocation[i] += share
            remaining = 0.0
    return allocation


class FairShareCpu:
    """The two-level processor-sharing CPU of one worker machine.

    Public operations:

    * :meth:`create_group` / :meth:`remove_group` — container cgroups.
    * :meth:`submit` — run ``work`` core-ms in a group; returns an event that
      triggers when the work completes.
    * :attr:`utilization` / :meth:`busy_core_ms` — accounting for the paper's
      CPU-cost figures (13c / 14c).
    """

    HOST_GROUP = "host"

    def __init__(self, env: Environment, cores: float) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be > 0, got {cores}")
        self.env = env
        self.cores = float(cores)
        self._groups: Dict[str, CpuGroup] = {
            self.HOST_GROUP: CpuGroup(self.HOST_GROUP, cap=None)}
        self._tasks: Dict[CpuTask, None] = {}
        self._last_update = env.now
        self._busy_core_ms = 0.0
        self._wake_version = 0
        self._task_sequence = 0

    # -- groups ----------------------------------------------------------------

    def create_group(self, name: str, cap: Optional[float]) -> CpuGroup:
        """Create a capped group (one per container)."""
        if name in self._groups:
            raise SimulationError(f"CPU group {name!r} already exists")
        if cap is not None:
            cap = min(cap, self.cores)
        group = CpuGroup(name, cap)
        self._groups[name] = group
        return group

    def remove_group(self, name: str) -> None:
        """Remove an (empty) group when its container is torn down."""
        if name == self.HOST_GROUP:
            raise SimulationError("cannot remove the host group")
        group = self._groups.pop(name, None)
        if group is None:
            raise SimulationError(f"unknown CPU group {name!r}")
        if group.tasks:
            raise SimulationError(
                f"CPU group {name!r} still has {len(group.tasks)} tasks")

    def group(self, name: str) -> CpuGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise SimulationError(f"unknown CPU group {name!r}") from None

    def has_group(self, name: str) -> bool:
        return name in self._groups

    def set_group_cap(self, name: str, cap: Optional[float]) -> None:
        """Re-cap *name* at runtime (the straggler-slowdown fault hook).

        Settles elapsed work at the old rates first, then reallocates, so a
        mid-flight cap change charges exactly the work done before it.
        """
        if cap is not None:
            if cap <= 0:
                raise ValueError(f"group cap must be > 0, got {cap}")
            cap = min(cap, self.cores)
        group = self.group(name)
        self._settle_elapsed()
        group.cap = cap
        self._reallocate_and_arm()

    def abort_group_tasks(self, name: str) -> int:
        """Drop every runnable task of *name* without firing its done event.

        Used by container-crash teardown: the processes waiting on those
        events were interrupted (and detached from them), so the events must
        *not* fire — the work simply vanishes.  Returns the number dropped.
        """
        group = self.group(name)
        if not group.tasks:
            return 0
        self._settle_elapsed()
        dropped = 0
        for task in list(group.tasks):
            self._tasks.pop(task, None)
            group.tasks.pop(task, None)
            task.rate = 0.0
            dropped += 1
        self._reallocate_and_arm()
        return dropped

    # -- work submission ---------------------------------------------------------

    def submit(self, work: float, group: str = HOST_GROUP,
               max_share: float = 1.0, label: str = "") -> Event:
        """Execute *work* core-ms in *group*; the event fires on completion.

        ``max_share`` caps how many cores this task can use at once (1.0 for
        a single thread).  Zero work completes after a zero-delay event.
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if max_share <= 0:
            raise ValueError(f"max_share must be > 0, got {max_share}")
        done = self.env.event()
        if work == 0.0:
            done.succeed(0.0)
            return done
        self._settle_elapsed()
        self._task_sequence += 1
        task = CpuTask(work=work, max_share=max_share,
                       group=self.group(group), done=done,
                       started_at=self.env.now,
                       label=label or f"task-{self._task_sequence}")
        task.group.tasks[task] = None
        self._tasks[task] = None
        self._reallocate_and_arm()
        return done

    # -- accounting ----------------------------------------------------------------

    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def busy_core_ms(self) -> float:
        """Total core-milliseconds of work completed so far."""
        self._settle_elapsed()
        return self._busy_core_ms

    def current_rate(self) -> float:
        """Aggregate core usage right now (cores being consumed)."""
        return sum(task.rate for task in self._tasks)

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self.current_rate() / self.cores

    # -- internals ----------------------------------------------------------------

    def _settle_elapsed(self) -> None:
        """Deduct work done since the last update at the current rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        for task in self._tasks:
            task.remaining -= task.rate * dt
            self._busy_core_ms += task.rate * dt
        self._last_update = now

    def _time_resolution(self) -> float:
        """Smallest representable clock advance at the current sim time.

        At large clock values (hours of simulated milliseconds) a wake-up
        delay below one ulp of ``now`` would not advance time at all and
        the kernel would spin forever; any task whose time-to-finish is
        below this resolution is complete for all observable purposes.
        """
        return max(TIME_EPSILON, 4.0 * math.ulp(self.env.now))

    def _reallocate_and_arm(self) -> None:
        """Recompute rates, complete finished tasks, arm the next wake-up."""
        resolution = self._time_resolution()
        finished = [t for t in self._tasks
                    if t.remaining <= TIME_EPSILON
                    or (t.rate > 0.0 and t.remaining / t.rate <= resolution)]
        for task in finished:
            self._tasks.pop(task, None)
            task.group.tasks.pop(task, None)
            task.rate = 0.0
            task.remaining = 0.0
            task.finished_at = self.env.now
            task.done.succeed(self.env.now - task.started_at)
        self._recompute_rates()
        self._arm_wakeup()

    def _recompute_rates(self) -> None:
        groups = [g for g in self._groups.values() if g.tasks]
        demands = [g.demand for g in groups]
        group_alloc = waterfill(self.cores, demands)
        for group, alloc in zip(groups, group_alloc):
            tasks = sorted(group.tasks, key=lambda t: t.label)
            task_alloc = waterfill(alloc, [t.max_share for t in tasks])
            for task, rate in zip(tasks, task_alloc):
                task.rate = rate

    def _arm_wakeup(self) -> None:
        self._wake_version += 1
        version = self._wake_version
        horizon = math.inf
        for task in self._tasks:
            if task.rate > 0:
                horizon = min(horizon, task.remaining / task.rate)
        if math.isinf(horizon):
            if self._tasks and all(t.rate <= 0 for t in self._tasks):
                raise SimulationError(
                    "CPU starvation: runnable tasks but zero allocation")
            return
        # Never arm below the clock's resolution: a delay smaller than one
        # ulp of `now` would not advance time (see _time_resolution).
        horizon = max(horizon, self._time_resolution())
        timeout = self.env.timeout(horizon)
        assert timeout.callbacks is not None
        timeout.callbacks.append(lambda _ev: self._on_wakeup(version))

    def _on_wakeup(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer allocation
        self._settle_elapsed()
        self._reallocate_and_arm()
