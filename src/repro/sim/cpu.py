"""Deprecated module location — the CPU engines moved (kept as a shim).

The fair-share CPU model now lives in :mod:`repro.sim.fair_share` (the
incremental engine) on top of the shared substrate in
:mod:`repro.sim.engine` (``CpuEngine`` protocol, ``CpuTask``/``CpuGroup``,
``waterfill``); the pre-refactor engine is preserved in
:mod:`repro.sim.legacy_cpu`.

This module re-exports the public names so existing imports from
``cluster/``, ``platformsim/`` and external examples keep working
unchanged — ``FairShareCpu(env, cores)`` keeps its constructor signature
and behavior (bit-identical schedules to the pre-refactor engine).
"""

from repro.sim.engine import CpuEngine, CpuGroup, CpuTask, waterfill
from repro.sim.fair_share import FairShareCpu

__all__ = [
    "CpuEngine",
    "CpuGroup",
    "CpuTask",
    "FairShareCpu",
    "waterfill",
]
