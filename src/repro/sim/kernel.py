"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-style kernel: simulated *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  The kernel is deliberately minimal but complete enough
to model a serverless platform: timeouts, one-shot events, process joining,
interrupts, and composite all-of/any-of events.

Determinism
-----------
Events scheduled for the same simulated time fire in FIFO order of
scheduling (a monotone sequence number breaks ties), so a run is a pure
function of its inputs.  All times are in milliseconds
(:mod:`repro.common.units`).

Hot-path design
---------------
A 50k-invocation bench run pushes millions of events through this module,
so the inner loop is written for mechanical sympathy while keeping the
exact event ordering of the straightforward implementation:

* every event class declares ``__slots__`` (no per-instance ``__dict__``);
* heap entries are flat ``(when, key, event)`` triples where ``key``
  pre-composes ``(priority << 62) | sequence`` into one integer at schedule
  time, so heap sifting compares at most one float and one int instead of
  re-comparing ``(time, priority, seq)`` tuples — the ordering is identical
  because every sequence number is far below ``2**62``;
* callback lists are allocated lazily: an event stores a shared empty
  sentinel until the first waiter attaches, a bare callable for a single
  waiter and a list only for several (the public :attr:`Event.callbacks`
  property materializes a real list on demand and preserves the historical
  ``callbacks is None == processed`` contract);
* :meth:`Environment.run` and :meth:`Environment.run_process` inline the
  pop/advance/dispatch sequence with bound locals rather than paying a
  ``peek()`` + ``step()`` round-trip per event (``step()`` remains the
  single-event reference implementation);
* timeout-heavy services can recycle a processed :class:`Timeout` with
  :meth:`Timeout.reset` instead of allocating a fresh event per slice.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.common.errors import (
    EventAlreadyTriggered,
    ProcessInterrupted,
    SimulationError,
)

#: Type of the generator a :class:`Process` drives.
ProcessGenerator = Generator["Event", Any, Any]

#: Scheduling priorities; URGENT fires before NORMAL at equal times.  Used by
#: the kernel to ensure interrupts pre-empt normal resumptions.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Priority occupies the bits above the sequence counter in the composed heap
#: key; 2**62 sequence numbers cannot be exhausted by any realistic run.
_PRIORITY_SHIFT = 62
_NORMAL_KEY_BASE = PRIORITY_NORMAL << _PRIORITY_SHIFT

#: Shared sentinel for "pending, no waiters attached yet" (``None`` still
#: means processed).  Being falsy and immutable, one instance serves every
#: event that never acquires a waiter.
_NO_WAITERS: Tuple = ()


class Event:
    """A one-shot occurrence that processes can wait on.

    Life-cycle: *pending* → *triggered* (value or exception attached and the
    event is queued) → *processed* (callbacks ran).  Triggering twice raises
    :class:`EventAlreadyTriggered`.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_defused")

    #: Lazily-cancelled events stay in the heap but are discarded unprocessed
    #: (no callbacks, no clock advancement).  Only Timeout supports it.
    cancelled = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: Any = _NO_WAITERS
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending
        self._defused = False

    # -- callbacks ------------------------------------------------------------

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Waiter callbacks, or ``None`` once the event has been processed.

        Internally waiters are stored compactly (no list until one exists);
        reading this property materializes — and keeps — a real list so the
        historical contract (``callbacks is None`` means processed, appends
        attach waiters) is fully preserved.
        """
        cbs = self._callbacks
        if cbs is None or type(cbs) is list:
            return cbs
        fresh: List[Callable[["Event"], None]] = \
            [] if cbs is _NO_WAITERS else [cbs]
        self._callbacks = fresh
        return fresh

    @callbacks.setter
    def callbacks(self, value: Optional[List[Callable[["Event"], None]]]) -> None:
        self._callbacks = value

    def _attach(self, callback: Callable[["Event"], None]) -> None:
        """Attach a waiter without materializing a list for the first one."""
        cbs = self._callbacks
        if type(cbs) is list:
            cbs.append(callback)
        elif cbs is _NO_WAITERS:
            self._callbacks = callback
        else:
            self._callbacks = [cbs, callback]

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception attached to the event."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        heapq.heappush(env._queue,
                       (env._now, _NORMAL_KEY_BASE | env._sequence, self))
        env._sequence += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heapq.heappush(env._queue,
                       (env._now, _NORMAL_KEY_BASE | env._sequence, self))
        env._sequence += 1
        return self

    def defuse(self) -> "Event":
        """Allow this event's failure to pass with no waiters attached.

        By default a failure nobody waited on is re-raised by the kernel (a
        lost error is a simulation bug).  Broadcast-style events — e.g. an
        in-flight build aborted by a container crash, whose waiters may all
        have been interrupted away — opt out with ``fail(err).defuse()``:
        any remaining waiters still receive the exception, but zero waiters
        is no longer an error.
        """
        self._defused = True
        return self

    # -- composition -------------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "pending"
        if self._ok is not None:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers *delay* milliseconds after creation."""

    __slots__ = ("delay", "cancelled")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self._callbacks: Any = _NO_WAITERS
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # The slot shadows the Event class attribute for Timeout instances,
        # so initialize it explicitly.
        self.cancelled = False
        heapq.heappush(env._queue,
                       (env._now + delay, _NORMAL_KEY_BASE | env._sequence,
                        self))
        env._sequence += 1

    def cancel(self) -> None:
        """Abandon this timeout: the kernel discards it without processing.

        Cancellation is *lazy* — the heap entry stays until the kernel would
        pop it, at which point it is dropped without running callbacks or
        advancing the clock (and without counting as a processed event).
        Services that re-arm wake-up timers on every state change use this so
        abandoned timers stop costing heap space and no-op wake-ups.
        Cancelling an already-processed timeout is a no-op.
        """
        if self._callbacks is None or self.cancelled:
            return
        self.cancelled = True
        self.env._note_cancelled()

    def reset(self, delay: float, value: Any = None,
              at: Optional[float] = None) -> "Timeout":
        """Re-arm an already-processed timeout instead of allocating a new one.

        Only the owner of a timeout that has been fully processed (its
        callbacks ran and nobody else holds it as a pending event) may
        recycle it; resetting a pending or cancelled timeout raises.  With
        ``at`` the timeout fires at that exact absolute time — callers that
        accumulate boundary times sequentially use it to avoid re-deriving
        the firing time from a delay (which would round differently).
        Timeout-per-slice services (the SFS discipline) use this to elide
        one event allocation per slice.
        """
        if self._callbacks is not None or self.cancelled:
            raise SimulationError("reset() of a pending or cancelled timeout")
        env = self.env
        if at is None:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            when = env._now + delay
        else:
            if at < env._now:
                raise ValueError(f"timeout at={at} is in the past "
                                 f"(now={env._now})")
            when = at
        self._callbacks = _NO_WAITERS
        self._value = value
        self._defused = False
        self.delay = when - env._now
        heapq.heappush(env._queue,
                       (when, _NORMAL_KEY_BASE | env._sequence, self))
        env._sequence += 1
        return self

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._callbacks = process._resume
        self._ok = True
        env._enqueue(self, delay=0.0, priority=PRIORITY_URGENT)


class Interruption(Event):
    """Internal event that throws ProcessInterrupted into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process._ok is not None:
            raise SimulationError("cannot interrupt a terminated process")
        self.process = process
        self._callbacks = self._interrupt
        self._ok = False
        self._value = ProcessInterrupted(cause)
        self.env._enqueue(self, delay=0.0, priority=PRIORITY_URGENT)

    def _interrupt(self, event: Event) -> None:
        if self.process._ok is not None:
            return  # terminated before the interrupt was delivered
        target = self.process._waiting_on
        if target is not None and not target.processed:
            # Detach so the original event no longer resumes the process.
            callbacks = target.callbacks
            assert callbacks is not None
            if self.process._resume in callbacks:
                callbacks.remove(self.process._resume)
        self.process._waiting_on = None
        self.process._resume(self)


class Process(Event):
    """Drives a generator; itself an event that triggers when it returns.

    The generator's ``return`` value becomes the process's ``value``.  If the
    generator raises, the process fails with that exception (which propagates
    to joiners, or out of :meth:`Environment.run` if nobody joined).
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process."""
        Interruption(self, cause)

    # -- generator driving ------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        send = self._generator.send
        throw = self._generator.throw
        event: Optional[Event] = trigger
        while True:
            assert event is not None
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    exc = event._value
                    # Mark delivered so an unhandled failure is reported once.
                    event._defused = True
                    next_event = throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env = self.env
                heapq.heappush(
                    env._queue,
                    (env._now, _NORMAL_KEY_BASE | env._sequence, self))
                env._sequence += 1
                return
            except BaseException as exc:  # generator crashed
                self._ok = False
                self._value = exc
                env = self.env
                heapq.heappush(
                    env._queue,
                    (env._now, _NORMAL_KEY_BASE | env._sequence, self))
                env._sequence += 1
                return

            if not isinstance(next_event, Event):
                crash = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                self._ok = False
                self._value = crash
                self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
                return

            cbs = next_event._callbacks
            if cbs is None:
                # Already fired: loop immediately with its value.
                event = next_event
                continue
            if type(cbs) is list:
                cbs.append(self._resume)
            elif cbs is _NO_WAITERS:
                next_event._callbacks = self._resume
            else:
                next_event._callbacks = [cbs, self._resume]
            self._waiting_on = next_event
            return

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"


class AllOf(Event):
    """Triggers when every child event has succeeded (fails fast on failure).

    The value is a list of child values in the order the children were given.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children: List[Event] = list(events)
        self._pending = 0
        for child in self._children:
            if child.processed:
                if not child._ok:
                    self._fail_once(child._value)
                continue
            self._pending += 1
            child._attach(self._on_child)
        if self._ok is None and self._pending == 0:
            self.succeed([c._value for c in self._children])

    def _fail_once(self, exc: BaseException) -> None:
        if self._ok is None:
            self.fail(exc)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        if not child._ok:
            child._defused = True
            self._fail_once(child._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child triggers (success or failure).

    The value is ``(child, child_value)`` of the winner.
    """

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        done = next((c for c in self._children if c.processed), None)
        if done is not None:
            self._settle(done)
            return
        for child in self._children:
            child._attach(self._on_child)

    def _settle(self, child: Event) -> None:
        if child._ok:
            self.succeed((child, child._value))
        else:
            child._defused = True
            self.fail(child._value)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        self._settle(child)


class Environment:
    """Holds simulated time and the event queue, and executes events."""

    #: Compact the heap once at least this many cancelled entries linger
    #: *and* they outnumber the live ones (amortised O(1) per cancellation).
    COMPACT_THRESHOLD = 64

    __slots__ = ("_now", "_queue", "_sequence", "_cancelled",
                 "events_processed", "active_process", "_time_hooks")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        #: Count of events actually processed (cancelled ones excluded);
        #: perf harnesses report throughput as events_processed / wall-clock.
        self.events_processed = 0
        self.active_process: Optional[Process] = None
        #: Observers of monotonic time advancement, ``hook(old_ms, new_ms)``.
        self._time_hooks: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- time observation -------------------------------------------------------

    def add_time_hook(self, hook: Callable[[float, float], None]) -> None:
        """Register ``hook(old_ms, new_ms)``, called whenever time advances.

        Hooks are pure observers (metrics gauges, trace clocks): they run
        after the clock moves and before the events at the new time are
        processed, and must not schedule or trigger events.
        """
        self._time_hooks.append(hook)

    def remove_time_hook(self, hook: Callable[[float, float], None]) -> None:
        self._time_hooks.remove(hook)

    def _advance(self, to: float) -> None:
        """Move the clock monotonically to *to*, notifying time hooks."""
        if to <= self._now:
            return
        old = self._now
        self._now = to
        for hook in self._time_hooks:
            hook(old, to)

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a pending one-shot event (trigger with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* ms."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that triggers at absolute time *when* (>= now).

        Unlike ``timeout(when - now)``, the firing time is *when* exactly —
        no float round-trip through a relative delay — which callers that
        accumulate boundary times sequentially (slice coalescing) rely on
        for bit-identical schedules.
        """
        if when < self._now:
            raise ValueError(f"timeout at={when} is in the past "
                             f"(now={self._now})")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout._callbacks = _NO_WAITERS
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout.delay = when - self._now
        timeout.cancelled = False
        heapq.heappush(self._queue,
                       (when, _NORMAL_KEY_BASE | self._sequence, timeout))
        self._sequence += 1
        return timeout

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a process driving *generator* at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(
            self._queue,
            (self._now + delay,
             (priority << _PRIORITY_SHIFT) | self._sequence, event))
        self._sequence += 1

    def defer(self, callback: Callable[[], None]) -> None:
        """Run *callback* at the current simulated time, urgently.

        The callback is wrapped in an urgent event at ``now``, so it runs
        before the clock advances and before any normal-priority event at
        this instant.  Services use this to coalesce several same-instant
        updates into one pass (e.g. the CPU engine folding a burst of
        batch-expansion submits into a single reallocation).
        """
        event = Event(self)
        event._ok = True
        event._callbacks = lambda _event: callback()
        heapq.heappush(self._queue, (self._now, self._sequence, event))
        self._sequence += 1

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 > len(self._queue)):
            retained = []
            for entry in self._queue:
                if entry[2].cancelled:
                    entry[2]._callbacks = None  # mark processed
                else:
                    retained.append(entry)
            # In place: run()/run_process() hold the list as a bound local,
            # so the queue object's identity must never change.
            self._queue[:] = retained
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _discard_cancelled(self) -> None:
        """Drop cancelled entries sitting at the head of the heap."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)[2]._callbacks = None
            self._cancelled -= 1

    def peek(self) -> float:
        """Time of the next scheduled *live* event, or +inf when idle."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)[2]._callbacks = None
            self._cancelled -= 1
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (advancing time to it).

        This is the reference implementation of event dispatch;
        :meth:`run` / :meth:`run_process` inline the same sequence.
        """
        self._discard_cancelled()
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _key, event = heapq.heappop(self._queue)
        if when < self._now - 1e-9:
            raise SimulationError("event scheduled in the past")
        self._advance(when)
        callbacks = event._callbacks
        event._callbacks = None  # mark processed
        assert callbacks is not None
        self.events_processed += 1
        if type(callbacks) is list:
            for callback in callbacks:
                callback(event)
            had_waiters = bool(callbacks)
        elif callbacks is _NO_WAITERS:
            had_waiters = False
        else:
            callbacks(event)
            had_waiters = True
        if not event._ok and not event._defused and not had_waiters:
            # A failure nobody waited on must not pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        queue = self._queue
        pop = heapq.heappop
        hooks = self._time_hooks
        no_waiters = _NO_WAITERS
        while queue:
            entry = queue[0]
            event = entry[2]
            if event.cancelled:
                pop(queue)
                event._callbacks = None
                self._cancelled -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                break
            pop(queue)
            if when > self._now:
                if hooks:
                    self._advance(when)
                else:
                    self._now = when
            elif when < self._now - 1e-9:
                raise SimulationError("event scheduled in the past")
            callbacks = event._callbacks
            event._callbacks = None
            self.events_processed += 1
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused and not callbacks:
                    raise event._value
            elif callbacks is no_waiters:
                if not event._ok and not event._defused:
                    raise event._value
            else:
                callbacks(event)
        if until is not None:
            self._advance(until)

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until *process* completes; return its value or raise."""
        queue = self._queue
        pop = heapq.heappop
        hooks = self._time_hooks
        no_waiters = _NO_WAITERS
        draining = False
        while True:
            if process._ok is not None and not draining:
                # Drain the zero-delay completion event so joiners observe
                # it too, then stop.
                draining = True
            entry = None
            while queue:
                entry = queue[0]
                if entry[2].cancelled:
                    pop(queue)
                    entry[2]._callbacks = None
                    self._cancelled -= 1
                    entry = None
                    continue
                break
            if entry is None:
                if draining:
                    break
                raise SimulationError(
                    f"deadlock: {process!r} cannot complete, queue empty")
            when = entry[0]
            if draining and when > self._now:
                break
            if not draining and until is not None and when > until:
                raise SimulationError(
                    f"{process!r} did not finish by t={until}")
            pop(queue)
            event = entry[2]
            if when > self._now:
                if hooks:
                    self._advance(when)
                else:
                    self._now = when
            elif when < self._now - 1e-9:
                raise SimulationError("event scheduled in the past")
            callbacks = event._callbacks
            event._callbacks = None
            self.events_processed += 1
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused and not callbacks:
                    raise event._value
            elif callbacks is no_waiters:
                if not event._ok and not event._defused:
                    raise event._value
            else:
                callbacks(event)
        if process._ok:
            return process._value
        raise process._value
