"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-style kernel: simulated *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  The kernel is deliberately minimal but complete enough
to model a serverless platform: timeouts, one-shot events, process joining,
interrupts, and composite all-of/any-of events.

Determinism
-----------
Events scheduled for the same simulated time fire in FIFO order of
scheduling (a monotone sequence number breaks ties), so a run is a pure
function of its inputs.  All times are in milliseconds
(:mod:`repro.common.units`).

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.common.errors import (
    EventAlreadyTriggered,
    ProcessInterrupted,
    SimulationError,
)

#: Type of the generator a :class:`Process` drives.
ProcessGenerator = Generator["Event", Any, Any]

#: Scheduling priorities; URGENT fires before NORMAL at equal times.  Used by
#: the kernel to ensure interrupts pre-empt normal resumptions.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Life-cycle: *pending* → *triggered* (value or exception attached and the
    event is queued) → *processed* (callbacks ran).  Triggering twice raises
    :class:`EventAlreadyTriggered`.
    """

    #: Lazily-cancelled events stay in the heap but are discarded unprocessed
    #: (no callbacks, no clock advancement).  Only Timeout supports it.
    cancelled = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception attached to the event."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
        return self

    def defuse(self) -> "Event":
        """Allow this event's failure to pass with no waiters attached.

        By default a failure nobody waited on is re-raised by the kernel (a
        lost error is a simulation bug).  Broadcast-style events — e.g. an
        in-flight build aborted by a container crash, whose waiters may all
        have been interrupted away — opt out with ``fail(err).defuse()``:
        any remaining waiters still receive the exception, but zero waiters
        is no longer an error.
        """
        self._defused = True  # type: ignore[attr-defined]
        return self

    # -- composition -------------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers *delay* milliseconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay=delay, priority=PRIORITY_NORMAL)

    def cancel(self) -> None:
        """Abandon this timeout: the kernel discards it without processing.

        Cancellation is *lazy* — the heap entry stays until the kernel would
        pop it, at which point it is dropped without running callbacks or
        advancing the clock (and without counting as a processed event).
        Services that re-arm wake-up timers on every state change use this so
        abandoned timers stop costing heap space and no-op wake-ups.
        Cancelling an already-processed timeout is a no-op.
        """
        if self.callbacks is None or self.cancelled:
            return
        self.cancelled = True
        self.env._note_cancelled()

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._enqueue(self, delay=0.0, priority=PRIORITY_URGENT)


class Interruption(Event):
    """Internal event that throws ProcessInterrupted into a process."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self.process = process
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._value = ProcessInterrupted(cause)
        self.env._enqueue(self, delay=0.0, priority=PRIORITY_URGENT)

    def _interrupt(self, event: Event) -> None:
        if self.process.triggered:
            return  # terminated before the interrupt was delivered
        target = self.process._waiting_on
        if target is not None and not target.processed:
            # Detach so the original event no longer resumes the process.
            assert target.callbacks is not None
            if self.process._resume in target.callbacks:
                target.callbacks.remove(self.process._resume)
        self.process._waiting_on = None
        self.process._resume(self)


class Process(Event):
    """Drives a generator; itself an event that triggers when it returns.

    The generator's ``return`` value becomes the process's ``value``.  If the
    generator raises, the process fails with that exception (which propagates
    to joiners, or out of :meth:`Environment.run` if nobody joined).
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process."""
        Interruption(self, cause)

    # -- generator driving ------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        event: Optional[Event] = trigger
        while True:
            assert event is not None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    exc = event._value
                    # Mark delivered so an unhandled failure is reported once.
                    event._defused = True  # type: ignore[attr-defined]
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
                return
            except BaseException as exc:  # generator crashed
                self._ok = False
                self._value = exc
                self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
                return

            if not isinstance(next_event, Event):
                crash = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                self._ok = False
                self._value = crash
                self.env._enqueue(self, delay=0.0, priority=PRIORITY_NORMAL)
                return

            if next_event.processed:
                # Already fired: loop immediately with its value.
                event = next_event
                continue
            assert next_event.callbacks is not None
            next_event.callbacks.append(self._resume)
            self._waiting_on = next_event
            return

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"


class AllOf(Event):
    """Triggers when every child event has succeeded (fails fast on failure).

    The value is a list of child values in the order the children were given.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children: List[Event] = list(events)
        self._pending = 0
        for child in self._children:
            if child.processed:
                if not child._ok:
                    self._fail_once(child._value)
                continue
            self._pending += 1
            assert child.callbacks is not None
            child.callbacks.append(self._on_child)
        if self._ok is None and self._pending == 0:
            self.succeed([c._value for c in self._children])

    def _fail_once(self, exc: BaseException) -> None:
        if self._ok is None:
            self.fail(exc)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        if not child._ok:
            child._defused = True  # type: ignore[attr-defined]
            self._fail_once(child._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child triggers (success or failure).

    The value is ``(child, child_value)`` of the winner.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        done = next((c for c in self._children if c.processed), None)
        if done is not None:
            self._settle(done)
            return
        for child in self._children:
            assert child.callbacks is not None
            child.callbacks.append(self._on_child)

    def _settle(self, child: Event) -> None:
        if child._ok:
            self.succeed((child, child._value))
        else:
            child._defused = True  # type: ignore[attr-defined]
            self.fail(child._value)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        self._settle(child)


class Environment:
    """Holds simulated time and the event queue, and executes events."""

    #: Compact the heap once at least this many cancelled entries linger
    #: *and* they outnumber the live ones (amortised O(1) per cancellation).
    COMPACT_THRESHOLD = 64

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        #: Count of events actually processed (cancelled ones excluded);
        #: perf harnesses report throughput as events_processed / wall-clock.
        self.events_processed = 0
        self.active_process: Optional[Process] = None
        #: Observers of monotonic time advancement, ``hook(old_ms, new_ms)``.
        self._time_hooks: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- time observation -------------------------------------------------------

    def add_time_hook(self, hook: Callable[[float, float], None]) -> None:
        """Register ``hook(old_ms, new_ms)``, called whenever time advances.

        Hooks are pure observers (metrics gauges, trace clocks): they run
        after the clock moves and before the events at the new time are
        processed, and must not schedule or trigger events.
        """
        self._time_hooks.append(hook)

    def remove_time_hook(self, hook: Callable[[float, float], None]) -> None:
        self._time_hooks.remove(hook)

    def _advance(self, to: float) -> None:
        """Move the clock monotonically to *to*, notifying time hooks."""
        if to <= self._now:
            return
        old = self._now
        self._now = to
        for hook in self._time_hooks:
            hook(old, to)

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a pending one-shot event (trigger with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* ms."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a process driving *generator* at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self._sequence, event))
        self._sequence += 1

    def defer(self, callback: Callable[[], None]) -> None:
        """Run *callback* at the current simulated time, urgently.

        The callback is wrapped in an urgent event at ``now``, so it runs
        before the clock advances and before any normal-priority event at
        this instant.  Services use this to coalesce several same-instant
        updates into one pass (e.g. the CPU engine folding a burst of
        batch-expansion submits into a single reallocation).
        """
        event = Event(self)
        event._ok = True
        assert event.callbacks is not None
        event.callbacks.append(lambda _event: callback())
        self._enqueue(event, delay=0.0, priority=PRIORITY_URGENT)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 > len(self._queue)):
            retained = []
            for entry in self._queue:
                if entry[3].cancelled:
                    entry[3].callbacks = None  # mark processed
                else:
                    retained.append(entry)
            heapq.heapify(retained)
            self._queue = retained
            self._cancelled = 0

    def _discard_cancelled(self) -> None:
        """Drop cancelled entries sitting at the head of the heap."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)[3].callbacks = None
            self._cancelled -= 1

    def peek(self) -> float:
        """Time of the next scheduled *live* event, or +inf when idle."""
        self._discard_cancelled()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (advancing time to it)."""
        self._discard_cancelled()
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now - 1e-9:
            raise SimulationError("event scheduled in the past")
        self._advance(when)
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        self.events_processed += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False) \
                and not callbacks:
            # A failure nobody waited on must not pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self.peek() != float("inf"):
            if until is not None and self._queue[0][0] > until:
                self._advance(until)
                return
            self.step()
        if until is not None:
            self._advance(until)

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until *process* completes; return its value or raise."""
        while not process.triggered:
            when = self.peek()
            if when == float("inf"):
                raise SimulationError(
                    f"deadlock: {process!r} cannot complete, queue empty")
            if until is not None and when > until:
                raise SimulationError(
                    f"{process!r} did not finish by t={until}")
            self.step()
        # Drain the zero-delay completion event so joiners observe it too.
        while self.peek() <= self._now:
            self.step()
        if process.ok:
            return process.value
        raise process.value
