"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-style kernel: simulated *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  The kernel is deliberately minimal but complete enough
to model a serverless platform: timeouts, one-shot events, process joining,
interrupts, and composite all-of/any-of events.

Determinism
-----------
Events scheduled for the same simulated time fire in FIFO order of
scheduling (urgent events before normal ones, creation order within each
class), so a run is a pure function of its inputs.  All times are in
milliseconds (:mod:`repro.common.units`).

Hot-path design
---------------
A 50k-invocation bench run pushes millions of events through this module,
so the event queue is split by *when the event fires*, keeping the exact
event ordering of the historical single-heap implementation:

* **Current-instant events** — the overwhelming majority (process starts,
  interrupts, ``succeed``/``fail`` triggers, zero-delay timeouts) — never
  touch an ordered structure at all.  They go to two plain deques,
  ``_urgent`` and ``_immediate``: appends and pops are O(1) with no key
  composition and no sequence-number allocation, because deque order *is*
  creation order.  This is the batch-arrival fast path: a dispatch window
  of same-instant events costs one ``extend`` (:meth:`Environment.
  schedule_batch` / :meth:`Environment.process_batch`).
* **Future events** — only normal-priority timeouts can carry a timestamp
  beyond ``now`` (urgent events are always scheduled at the current
  instant) — live in a pluggable structure behind the ``EventQueue``
  protocol (:mod:`repro.sim.calendar_queue`): a calendar queue by default
  (O(1) amortized push/pop for the dense, near-uniform timestamp
  distributions these workloads produce), with the classic binary heap
  selectable for A/B benchmarking via ``Environment(queue="heap")`` or
  ``REPRO_SIM_QUEUE=heap``.
* Dispatch order at one instant is: the urgent deque, then future-queue
  entries that have reached their time (they were created at earlier
  instants, hence earlier in FIFO terms), then the immediate deque —
  exactly the ``(when, priority, seq)`` total order of the old heap.
* Timer cancellation stays lazy: a cancelled :class:`Timeout` becomes a
  tombstone wherever it sits and is dropped unprocessed when surfaced;
  once tombstones outnumber live entries past ``COMPACT_THRESHOLD`` they
  are swept, bounding memory exactly as the old heap compaction did.
* Every event class declares ``__slots__``; callback lists are allocated
  lazily (a shared empty sentinel, then a bare callable for a single
  waiter, a list only for several); :meth:`Environment.run` and
  :meth:`Environment.run_process` inline the pop/advance/dispatch sequence
  with bound locals (``step()`` remains the single-event reference
  implementation); timeout-heavy services recycle processed
  :class:`Timeout` objects with :meth:`Timeout.reset`.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import os
from collections import deque
from typing import (
    Any, Callable, Generator, Iterable, List, Optional, Sequence, Tuple,
)

from repro.common.errors import (
    EventAlreadyTriggered,
    ProcessInterrupted,
    SimulationError,
)
from repro.sim.calendar_queue import DEFAULT_QUEUE, make_queue

#: Type of the generator a :class:`Process` drives.
ProcessGenerator = Generator["Event", Any, Any]

#: Scheduling priorities; URGENT fires before NORMAL at equal times.  Used by
#: the kernel to ensure interrupts pre-empt normal resumptions.  (With the
#: split queue these name the two current-instant deques rather than bits of
#: a heap key, but the observable order is unchanged.)
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Environment variable consulted for the default future-event structure.
QUEUE_ENV_VAR = "REPRO_SIM_QUEUE"

#: Shared sentinel for "pending, no waiters attached yet" (``None`` still
#: means processed).  Being falsy and immutable, one instance serves every
#: event that never acquires a waiter.
_NO_WAITERS: Tuple = ()

_INF = float("inf")


class Event:
    """A one-shot occurrence that processes can wait on.

    Life-cycle: *pending* → *triggered* (value or exception attached and the
    event is queued) → *processed* (callbacks ran).  Triggering twice raises
    :class:`EventAlreadyTriggered`.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_defused")

    #: Lazily-cancelled events become tombstones and are discarded
    #: unprocessed (no callbacks, no clock advancement).  Only Timeout
    #: supports it.
    cancelled = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: Any = _NO_WAITERS
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending
        self._defused = False

    # -- callbacks ------------------------------------------------------------

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Waiter callbacks, or ``None`` once the event has been processed.

        Internally waiters are stored compactly (no list until one exists);
        reading this property materializes — and keeps — a real list so the
        historical contract (``callbacks is None`` means processed, appends
        attach waiters) is fully preserved.
        """
        cbs = self._callbacks
        if cbs is None or type(cbs) is list:
            return cbs
        fresh: List[Callable[["Event"], None]] = \
            [] if cbs is _NO_WAITERS else [cbs]
        self._callbacks = fresh
        return fresh

    @callbacks.setter
    def callbacks(self, value: Optional[List[Callable[["Event"], None]]]) -> None:
        self._callbacks = value

    def _attach(self, callback: Callable[["Event"], None]) -> None:
        """Attach a waiter without materializing a list for the first one."""
        cbs = self._callbacks
        if type(cbs) is list:
            cbs.append(callback)
        elif cbs is _NO_WAITERS:
            self._callbacks = callback
        else:
            self._callbacks = [cbs, callback]

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception attached to the event."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._immediate.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._immediate.append(self)
        return self

    def defuse(self) -> "Event":
        """Allow this event's failure to pass with no waiters attached.

        By default a failure nobody waited on is re-raised by the kernel (a
        lost error is a simulation bug).  Broadcast-style events — e.g. an
        in-flight build aborted by a container crash, whose waiters may all
        have been interrupted away — opt out with ``fail(err).defuse()``:
        any remaining waiters still receive the exception, but zero waiters
        is no longer an error.
        """
        self._defused = True
        return self

    # -- composition -------------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "pending"
        if self._ok is not None:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers *delay* milliseconds after creation."""

    __slots__ = ("delay", "cancelled")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self._callbacks: Any = _NO_WAITERS
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # The slot shadows the Event class attribute for Timeout instances,
        # so initialize it explicitly.
        self.cancelled = False
        when = env._now + delay
        if when > env._now:
            env._future.push(when, env._sequence, self)
            env._sequence += 1
        else:
            env._immediate.append(self)

    def cancel(self) -> None:
        """Abandon this timeout: the kernel discards it without processing.

        Cancellation is *lazy* — the queue entry stays as a tombstone until
        the kernel would surface it, at which point it is dropped without
        running callbacks or advancing the clock (and without counting as a
        processed event).  Services that re-arm wake-up timers on every
        state change use this so abandoned timers stop costing queue space
        and no-op wake-ups.  Cancelling an already-processed timeout is a
        no-op.
        """
        if self._callbacks is None or self.cancelled:
            return
        self.cancelled = True
        self.env._note_cancelled()

    def reset(self, delay: float, value: Any = None,
              at: Optional[float] = None) -> "Timeout":
        """Re-arm an already-processed timeout instead of allocating a new one.

        Only the owner of a timeout that has been fully processed (its
        callbacks ran and nobody else holds it as a pending event) may
        recycle it; resetting a pending or cancelled timeout raises.  With
        ``at`` the timeout fires at that exact absolute time — callers that
        accumulate boundary times sequentially use it to avoid re-deriving
        the firing time from a delay (which would round differently).
        Timeout-per-slice services (the SFS discipline) use this to elide
        one event allocation per slice.
        """
        if self._callbacks is not None or self.cancelled:
            raise SimulationError("reset() of a pending or cancelled timeout")
        env = self.env
        if at is None:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            when = env._now + delay
        else:
            if at < env._now:
                raise ValueError(f"timeout at={at} is in the past "
                                 f"(now={env._now})")
            when = at
        self._callbacks = _NO_WAITERS
        self._value = value
        self._defused = False
        self.delay = when - env._now
        if when > env._now:
            env._future.push(when, env._sequence, self)
            env._sequence += 1
        else:
            env._immediate.append(self)
        return self

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self._callbacks = process._resume
        self._value = None
        self._ok = True
        self._defused = False
        env._urgent.append(self)


class Interruption(Event):
    """Internal event that throws ProcessInterrupted into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        if process._ok is not None:
            raise SimulationError("cannot interrupt a terminated process")
        env = process.env
        self.env = env
        self.process = process
        self._callbacks = self._interrupt
        self._value = ProcessInterrupted(cause)
        self._ok = False
        self._defused = False
        env._urgent.append(self)

    def _interrupt(self, event: Event) -> None:
        if self.process._ok is not None:
            return  # terminated before the interrupt was delivered
        target = self.process._waiting_on
        if target is not None and not target.processed:
            # Detach so the original event no longer resumes the process.
            callbacks = target.callbacks
            assert callbacks is not None
            if self.process._resume in callbacks:
                callbacks.remove(self.process._resume)
        self.process._waiting_on = None
        self.process._resume(self)


class Process(Event):
    """Drives a generator; itself an event that triggers when it returns.

    The generator's ``return`` value becomes the process's ``value``.  If the
    generator raises, the process fails with that exception (which propagates
    to joiners, or out of :meth:`Environment.run` if nobody joined).
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process."""
        Interruption(self, cause)

    # -- generator driving ------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        send = self._generator.send
        throw = self._generator.throw
        event: Optional[Event] = trigger
        while True:
            assert event is not None
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    exc = event._value
                    # Mark delivered so an unhandled failure is reported once.
                    event._defused = True
                    next_event = throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._immediate.append(self)
                return
            except BaseException as exc:  # generator crashed
                self._ok = False
                self._value = exc
                self.env._immediate.append(self)
                return

            if not isinstance(next_event, Event):
                crash = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                self._ok = False
                self._value = crash
                self.env._immediate.append(self)
                return

            cbs = next_event._callbacks
            if cbs is None:
                # Already fired: loop immediately with its value.
                event = next_event
                continue
            if type(cbs) is list:
                cbs.append(self._resume)
            elif cbs is _NO_WAITERS:
                next_event._callbacks = self._resume
            else:
                next_event._callbacks = [cbs, self._resume]
            self._waiting_on = next_event
            return

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"


class AllOf(Event):
    """Triggers when every child event has succeeded (fails fast on failure).

    The value is a list of child values in the order the children were given.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children: List[Event] = list(events)
        self._pending = 0
        for child in self._children:
            if child.processed:
                if not child._ok:
                    self._fail_once(child._value)
                continue
            self._pending += 1
            child._attach(self._on_child)
        if self._ok is None and self._pending == 0:
            self.succeed([c._value for c in self._children])

    def _fail_once(self, exc: BaseException) -> None:
        if self._ok is None:
            self.fail(exc)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        if not child._ok:
            child._defused = True
            self._fail_once(child._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child triggers (success or failure).

    The value is ``(child, child_value)`` of the winner.
    """

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        done = next((c for c in self._children if c.processed), None)
        if done is not None:
            self._settle(done)
            return
        for child in self._children:
            child._attach(self._on_child)

    def _settle(self, child: Event) -> None:
        if child._ok:
            self.succeed((child, child._value))
        else:
            child._defused = True
            self.fail(child._value)

    def _on_child(self, child: Event) -> None:
        if self._ok is not None:
            return
        self._settle(child)


class Environment:
    """Holds simulated time and the event queues, and executes events."""

    #: Compact the queues once at least this many cancelled entries linger
    #: *and* they outnumber the live ones (amortised O(1) per cancellation).
    COMPACT_THRESHOLD = 64

    __slots__ = ("_now", "_urgent", "_immediate", "_future", "_sequence",
                 "_cancelled", "events_processed", "active_process",
                 "_time_hooks", "queue_name")

    def __init__(self, initial_time: float = 0.0,
                 queue: Optional[str] = None) -> None:
        self._now = initial_time
        #: Current-instant deques: urgent (process starts, interrupts,
        #: deferred callbacks) fires before immediate (normal triggers).
        self._urgent: deque = deque()
        self._immediate: deque = deque()
        if queue is None:
            queue = os.environ.get(QUEUE_ENV_VAR) or DEFAULT_QUEUE
        #: Future-event structure (calendar queue or heap); holds only
        #: normal-priority entries with ``when > now`` at creation.
        self._future = make_queue(queue)
        #: Which future-event structure this environment runs on.
        self.queue_name = queue
        self._sequence = 0
        self._cancelled = 0
        #: Count of events actually processed (cancelled ones excluded);
        #: perf harnesses report throughput as events_processed / wall-clock.
        self.events_processed = 0
        self.active_process: Optional[Process] = None
        #: Observers of monotonic time advancement, ``hook(old_ms, new_ms)``.
        self._time_hooks: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def _queue(self) -> List[Tuple[float, int, Event]]:
        """Snapshot of pending *future* entries (live + tombstones).

        Kept for introspection and the historical tests that bound queue
        growth; current-instant deques are not included.
        """
        return self._future.entries()

    # -- time observation -------------------------------------------------------

    def add_time_hook(self, hook: Callable[[float, float], None]) -> None:
        """Register ``hook(old_ms, new_ms)``, called whenever time advances.

        Hooks are pure observers (metrics gauges, trace clocks): they run
        after the clock moves and before the events at the new time are
        processed, and must not schedule or trigger events.
        """
        self._time_hooks.append(hook)

    def remove_time_hook(self, hook: Callable[[float, float], None]) -> None:
        self._time_hooks.remove(hook)

    def _advance(self, to: float) -> None:
        """Move the clock monotonically to *to*, notifying time hooks."""
        if to <= self._now:
            return
        old = self._now
        self._now = to
        for hook in self._time_hooks:
            hook(old, to)

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a pending one-shot event (trigger with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* ms."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that triggers at absolute time *when* (>= now).

        Unlike ``timeout(when - now)``, the firing time is *when* exactly —
        no float round-trip through a relative delay — which callers that
        accumulate boundary times sequentially (slice coalescing) rely on
        for bit-identical schedules.
        """
        if when < self._now:
            raise ValueError(f"timeout at={when} is in the past "
                             f"(now={self._now})")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout._callbacks = _NO_WAITERS
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout.delay = when - self._now
        timeout.cancelled = False
        if when > self._now:
            self._future.push(when, self._sequence, timeout)
            self._sequence += 1
        else:
            self._immediate.append(timeout)
        return timeout

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a process driving *generator* at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- batch-arrival fast path -------------------------------------------------

    def schedule_batch(self, events: Sequence[Event],
                       value: Any = None) -> Sequence[Event]:
        """Trigger *events* successfully at the current instant in one append.

        Equivalent to calling ``event.succeed(value)`` on each in order —
        FIFO dispatch order is preserved — but the whole batch costs a
        single deque ``extend`` instead of N scheduling calls.  Producers
        that release a dispatch window of same-instant events (store put
        fan-out, window dispatch) use this to make the arrival burst O(1)
        per event with no ordered-structure traffic at all.
        """
        for event in events:
            if event._ok is not None:
                raise EventAlreadyTriggered(f"{event!r} already triggered")
            event._ok = True
            event._value = value
        self._immediate.extend(events)
        return events

    def timeout_batch(self, whens: Sequence[float],
                      value: Any = None) -> List[Timeout]:
        """Create timeouts at non-decreasing absolute times in one bulk push.

        Equivalent to ``[timeout_at(w, value) for w in whens]`` — identical
        events, identical ordering — but the future-queue insertion happens
        once for the whole monotone run (one bucket append per entry in the
        calendar queue, a single sorted-merge in the heap), which is what
        makes replaying a pre-sorted arrival schedule cheap.
        """
        now = self._now
        previous = now
        timeouts: List[Timeout] = []
        entries: List[Tuple[float, int, Timeout]] = []
        seq = self._sequence
        for when in whens:
            if when < now:
                raise ValueError(f"timeout at={when} is in the past "
                                 f"(now={now})")
            if when < previous:
                raise ValueError("timeout_batch times must be non-decreasing")
            previous = when
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout._callbacks = _NO_WAITERS
            timeout._value = value
            timeout._ok = True
            timeout._defused = False
            timeout.delay = when - now
            timeout.cancelled = False
            if when > now:
                entries.append((when, seq, timeout))
                seq += 1
            else:
                self._immediate.append(timeout)
            timeouts.append(timeout)
        self._sequence = seq
        if entries:
            self._future.push_batch(entries)
        return timeouts

    def process_batch(self, generators: Sequence[ProcessGenerator],
                      names: Optional[Sequence[str]] = None) -> List[Process]:
        """Start several processes at the current time in one bulk append.

        Equivalent to ``[process(g) for g in generators]`` — each process
        gets its own start event, dispatched in order — but the start
        events land on the urgent deque in a single ``extend``.  The
        dispatch pipeline uses this to launch a whole batch-expansion of
        per-invocation tasks at once.
        """
        processes: List[Process] = []
        starts: List[Initialize] = []
        for index, generator in enumerate(generators):
            process = Process.__new__(Process)
            process.env = self
            process._callbacks = _NO_WAITERS
            process._value = None
            process._ok = None
            process._defused = False
            process._generator = generator
            process.name = (names[index] if names is not None
                            else getattr(generator, "__name__", "process"))
            process._waiting_on = None
            start = Initialize.__new__(Initialize)
            start.env = self
            start._callbacks = process._resume
            start._value = None
            start._ok = True
            start._defused = False
            processes.append(process)
            starts.append(start)
        self._urgent.extend(starts)
        return processes

    # -- scheduling -----------------------------------------------------------

    def defer(self, callback: Callable[[], None]) -> None:
        """Run *callback* at the current simulated time, urgently.

        The callback is wrapped in an urgent event at ``now``, so it runs
        before the clock advances and before any normal-priority event at
        this instant.  Services use this to coalesce several same-instant
        updates into one pass (e.g. the CPU engine folding a burst of
        batch-expansion submits into a single reallocation).
        """
        event = Event(self)
        event._ok = True
        event._callbacks = lambda _event: callback()
        self._urgent.append(event)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 > (len(self._future)
                                           + len(self._immediate))):
            self._cancelled -= self._future.compact()
            if self._cancelled > 0 and self._immediate:
                immediate = self._immediate
                live = [e for e in immediate if not e.cancelled]
                dropped = len(immediate) - len(live)
                if dropped:
                    for event in immediate:
                        if event.cancelled:
                            event._callbacks = None
                    immediate.clear()
                    immediate.extend(live)
                    self._cancelled -= dropped

    def peek(self) -> float:
        """Time of the next scheduled *live* event, or +inf when idle."""
        if self._urgent:
            return self._now  # urgent events are never cancellable
        for event in self._immediate:
            if not event.cancelled:
                return self._now
        return self._future.min_when()

    def step(self) -> None:
        """Process exactly one live event (advancing time to it).

        This is the reference implementation of event dispatch;
        :meth:`run` / :meth:`run_process` inline the same sequence.
        """
        while True:
            if self._urgent:
                event = self._urgent.popleft()
            else:
                when = self._future.min_when()
                if when <= self._now:
                    event = self._future.pop()
                elif self._immediate:
                    event = self._immediate.popleft()
                elif when == _INF:
                    raise SimulationError("step() on an empty event queue")
                else:
                    self._advance(when)
                    event = self._future.pop()
            if event.cancelled:
                event._callbacks = None
                self._cancelled -= 1
                continue
            break
        callbacks = event._callbacks
        event._callbacks = None  # mark processed
        assert callbacks is not None
        self.events_processed += 1
        if type(callbacks) is list:
            for callback in callbacks:
                callback(event)
            had_waiters = bool(callbacks)
        elif callbacks is _NO_WAITERS:
            had_waiters = False
        else:
            callbacks(event)
            had_waiters = True
        if not event._ok and not event._defused and not had_waiters:
            # A failure nobody waited on must not pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time reaches *until*."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        urgent = self._urgent
        immediate = self._immediate
        future_next = self._future.next_due
        future_pop = self._future.pop_until
        pop_urgent = urgent.popleft
        pop_immediate = immediate.popleft
        hooks = self._time_hooks
        no_waiters = _NO_WAITERS
        limit = _INF if until is None else until
        now = self._now
        processed = 0
        try:
            while True:
                if urgent:
                    # Urgent events are never cancellable: no tombstone check.
                    event = pop_urgent()
                elif immediate:
                    event = future_next(now)
                    if type(event) is float:  # head beyond now
                        event = pop_immediate()
                        if event.cancelled:
                            event._callbacks = None
                            self._cancelled -= 1
                            continue
                elif hooks:
                    # Hooks may schedule events while the clock advances, so
                    # keep the two-phase peek/advance/re-pop sequence.
                    event = future_next(now)
                    if type(event) is float:
                        when = event
                        if when == _INF or when > limit:
                            break
                        self._advance(when)
                        now = when
                        event = future_next(now)
                else:
                    # Fused peek/advance/pop: the returned entry carries the
                    # timestamp the clock must advance to.
                    entry = future_pop(limit)
                    if type(entry) is float:  # empty, or head beyond until
                        break
                    when = entry[0]
                    if when > now:
                        self._now = when
                        now = when
                    event = entry[2]
                callbacks = event._callbacks
                event._callbacks = None
                processed += 1
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused and not callbacks:
                        raise event._value
                elif callbacks is no_waiters:
                    if not event._ok and not event._defused:
                        raise event._value
                else:
                    callbacks(event)
        finally:
            self.events_processed += processed
        if until is not None:
            self._advance(until)

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until *process* completes; return its value or raise."""
        urgent = self._urgent
        immediate = self._immediate
        future_next = self._future.next_due
        future_pop = self._future.pop_until
        pop_urgent = urgent.popleft
        pop_immediate = immediate.popleft
        hooks = self._time_hooks
        no_waiters = _NO_WAITERS
        limit = _INF if until is None else until
        draining = False
        now = self._now
        processed = 0
        try:
            while True:
                if not draining and process._ok is not None:
                    # Drain the remaining events at this instant so joiners
                    # observe the completion too, then stop.
                    draining = True
                if urgent:
                    # Urgent events are never cancellable: no tombstone check.
                    event = pop_urgent()
                elif immediate:
                    event = future_next(now)
                    if type(event) is float:  # head beyond now
                        event = pop_immediate()
                        if event.cancelled:
                            event._callbacks = None
                            self._cancelled -= 1
                            continue
                elif hooks:
                    # Hooks may schedule events while the clock advances, so
                    # keep the two-phase peek/advance/re-pop sequence.
                    event = future_next(now)
                    if type(event) is float:
                        if draining:
                            break
                        when = event
                        if when == _INF:
                            raise SimulationError(
                                f"deadlock: {process!r} cannot complete, "
                                "queue empty")
                        if when > limit:
                            raise SimulationError(
                                f"{process!r} did not finish by t={until}")
                        self._advance(when)
                        now = when
                        event = future_next(now)
                else:
                    # Fused peek/advance/pop: the returned entry carries the
                    # timestamp the clock must advance to.  While draining,
                    # bound at `now` so only events at this instant pop.
                    entry = future_pop(now if draining else limit)
                    if type(entry) is float:
                        if draining:
                            break
                        if entry == _INF:
                            raise SimulationError(
                                f"deadlock: {process!r} cannot complete, "
                                "queue empty")
                        raise SimulationError(
                            f"{process!r} did not finish by t={until}")
                    when = entry[0]
                    if when > now:
                        self._now = when
                        now = when
                    event = entry[2]
                callbacks = event._callbacks
                event._callbacks = None
                processed += 1
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused and not callbacks:
                        raise event._value
                elif callbacks is no_waiters:
                    if not event._ok and not event._defused:
                        raise event._value
                else:
                    callbacks(event)
        finally:
            self.events_processed += processed
        if process._ok:
            return process._value
        raise process._value
