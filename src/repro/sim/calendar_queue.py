"""Pluggable future-event structures for the simulation kernel.

The kernel splits its pending events into two tiers: *current-instant*
events live in plain deques inside :class:`~repro.sim.kernel.Environment`
(urgent before normal, FIFO within each class), and *future* events — the
only ones that ever carry a timestamp beyond ``now`` — live in one of the
structures defined here, selected per environment via the
:class:`EventQueue` protocol (mirroring the ``CpuEngine`` registry pattern).

Two implementations are provided:

``HeapQueue``
    The classic binary heap (the kernel's historical structure): O(log n)
    push and pop over flat ``(when, seq, event)`` triples.  Kept as the
    A/B baseline and fallback — it wins at very small pending counts and
    for pathologically clustered timestamps.

``CalendarQueue``
    A calendar queue (Brown 1988): a ring of ``N`` buckets (``N`` a power
    of two) of width ``w`` milliseconds (``w`` a power of two), where an
    event at time ``t`` lives in virtual bucket ``floor(t / w)``, mapped
    onto the ring by ``vb & (N - 1)``.  The bucket currently being drained
    (the *front window*) is kept sorted; pushes landing inside it bisect
    in, pushes beyond it append to their bucket unsorted — O(1).  When the
    front drains, the ring is scanned forward for the next non-empty
    window (one lap at most; a fruitless lap falls back to a direct
    minimum search, which handles far-future outliers a whole "year"
    ahead).  Lazy resize keeps occupancy near one entry per bucket:
    crossing the occupancy threshold rebuilds with a power-of-two bucket
    count sized to the entry count and a power-of-two width derived from
    the observed average gap.

Ordering contract (both implementations): pops come out in ascending
``(when, seq)`` — *seq* is the kernel's monotone sequence number, so events
scheduled for the same instant preserve FIFO creation order, bit-identical
to the historical single-heap kernel.

Cancellation is lazy in both structures: a cancelled :class:`Timeout`
stays as a *tombstone* until the structure would surface it (dropped and
accounted against ``env._cancelled``) or until :meth:`compact` sweeps it
(called by the environment once tombstones outnumber live entries, which
bounds memory exactly as the historical heap compaction did).
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import (Any, Callable, Dict, List, Protocol, Tuple,
                    TYPE_CHECKING, runtime_checkable)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.kernel import Event

#: One pending future event: ``(when_ms, sequence, event)``.  The sequence
#: is unique, so tuple comparison never reaches the event object.
Entry = Tuple[float, int, "Event"]

_INF = float("inf")


@runtime_checkable
class EventQueue(Protocol):
    """The future-event structure an :class:`Environment` requires.

    Both implementations honour the ordering contract in the module
    docstring: pops ascend by ``(when, seq)``, tombstones are dropped
    lazily at the surface (accounted against ``env._cancelled``) or swept
    by :meth:`compact`.
    """

    name: str

    def __len__(self) -> int: ...

    def push(self, when: float, seq: int, event: "Event") -> None: ...

    def push_batch(self, entries: List[Entry]) -> None: ...

    def min_when(self) -> float: ...

    def pop(self) -> "Event": ...

    def next_due(self, now: float) -> Any: ...

    def pop_until(self, bound: float) -> Any: ...

    def compact(self) -> int: ...

    def entries(self) -> List[Entry]: ...


class HeapQueue:
    """Binary-heap future-event structure (the pre-calendar kernel queue)."""

    name = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, when: float, seq: int, event: "Event") -> None:
        heapq.heappush(self._heap, (when, seq, event))

    def push_batch(self, entries: List[Entry]) -> None:
        """Bulk push of entries sorted by ``(when, seq)`` ascending."""
        heap = self._heap
        if not heap:
            # A sorted list satisfies the heap invariant as-is.
            heap.extend(entries)
            return
        for entry in entries:
            heapq.heappush(heap, entry)

    def min_when(self) -> float:
        """Time of the earliest live entry (+inf when empty).

        Tombstones surfacing at the head are dropped here, accounted
        against their environment's cancellation counter.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if not event.cancelled:
                return entry[0]
            heapq.heappop(heap)
            event._callbacks = None
            event.env._cancelled -= 1
        return _INF

    def pop(self) -> "Event":
        """Remove and return the earliest live event."""
        heap = self._heap
        while True:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
            event._callbacks = None
            event.env._cancelled -= 1

    def next_due(self, now: float) -> "Any":
        """Pop and return the earliest live event if due (``when <= now``);
        otherwise return its firing time as a float (``inf`` when empty),
        leaving it queued.

        Fuses the kernel's ``min_when`` + ``pop`` pair into one call on
        the dispatch hot path; the caller type-switches on the result
        (``float`` means "not yet").
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                event._callbacks = None
                event.env._cancelled -= 1
                continue
            when = entry[0]
            if when <= now:
                heapq.heappop(heap)
                return event
            return when
        return _INF

    def pop_until(self, bound: float) -> "Any":
        """Pop and return the earliest live *entry* if ``when <= bound``;
        otherwise return its firing time as a float (``inf`` when empty).

        The hook-free kernel loop uses this to fuse "peek, advance the
        clock, pop" into one call: the returned ``(when, seq, event)``
        tuple carries the timestamp the clock must advance to, so an
        advance-then-dispatch costs a single queue operation instead of
        two ``next_due`` calls and an extra loop lap.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                event._callbacks = None
                event.env._cancelled -= 1
                continue
            if entry[0] <= bound:
                heapq.heappop(heap)
                return entry
            return entry[0]
        return _INF

    def compact(self) -> int:
        """Physically drop every tombstone; returns the number removed."""
        heap = self._heap
        retained = [entry for entry in heap if not entry[2].cancelled]
        removed = len(heap) - len(retained)
        if removed:
            for entry in heap:
                if entry[2].cancelled:
                    entry[2]._callbacks = None
            heap[:] = retained
            heapq.heapify(heap)
        return removed

    def entries(self) -> List[Entry]:
        """Snapshot of pending entries (live + tombstones), unordered."""
        return list(self._heap)


class CalendarQueue:
    """Calendar-queue future-event structure (see module docstring)."""

    name = "calendar"

    #: Bucket-count bounds (both powers of two).
    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 16
    #: Bucket-width bounds in milliseconds (both powers of two).
    MIN_WIDTH = 2.0 ** -20
    MAX_WIDTH = 2.0 ** 30

    __slots__ = ("_buckets", "_mask", "_width", "_inv_width", "_count",
                 "_front", "_front_pos", "_front_vb")

    def __init__(self, width: float = 1.0,
                 buckets: int = MIN_BUCKETS) -> None:
        if buckets < 1 or buckets & (buckets - 1):
            raise ValueError(f"buckets must be a power of two, got {buckets}")
        mantissa, _exp = math.frexp(width)
        if width <= 0 or mantissa != 0.5:
            raise ValueError(f"width must be a power of two, got {width}")
        self._width = width
        self._inv_width = 1.0 / width  # exact for powers of two
        self._buckets: List[List[Entry]] = [[] for _ in range(buckets)]
        self._mask = buckets - 1
        #: Entries held (live + tombstones), across buckets and the
        #: unconsumed tail of the front window.
        self._count = 0
        #: The sorted front window (virtual bucket ``_front_vb``) with a
        #: consumption cursor; pushes at or before this window bisect in.
        self._front: List[Entry] = []
        self._front_pos = 0
        self._front_vb = 0

    def __len__(self) -> int:
        return self._count

    # -- scheduling ------------------------------------------------------------

    def push(self, when: float, seq: int, event: "Event") -> None:
        if int(when * self._inv_width) <= self._front_vb:
            # Inside (or before) the open front window: keep it sorted.
            insort(self._front, (when, seq, event), self._front_pos)
        else:
            self._buckets[int(when * self._inv_width) & self._mask].append(
                (when, seq, event))
        self._count += 1
        if (self._count > (self._mask + 1) << 2
                and self._mask + 1 < self.MAX_BUCKETS):
            self._resize()

    def push_batch(self, entries: List[Entry]) -> None:
        """Bulk push of entries sorted by ``(when, seq)`` ascending.

        Entries beyond the front window append straight to their buckets
        (the per-push resize/occupancy checks run once for the batch);
        same-bucket runs cost one append each with no comparisons at all.
        """
        front_vb = self._front_vb
        inv_width = self._inv_width
        buckets = self._buckets
        mask = self._mask
        for entry in entries:
            vb = int(entry[0] * inv_width)
            if vb <= front_vb:
                insort(self._front, entry, self._front_pos)
            else:
                buckets[vb & mask].append(entry)
        self._count += len(entries)
        if (self._count > (mask + 1) << 2
                and mask + 1 < self.MAX_BUCKETS):
            self._resize()

    # -- draining --------------------------------------------------------------

    def min_when(self) -> float:
        """Time of the earliest live entry (+inf when empty).

        Tombstones surfacing at the front cursor are dropped here,
        accounted against their environment's cancellation counter.
        """
        while True:
            front = self._front
            pos = self._front_pos
            length = len(front)
            while pos < length:
                entry = front[pos]
                event = entry[2]
                if not event.cancelled:
                    self._front_pos = pos
                    return entry[0]
                event._callbacks = None
                event.env._cancelled -= 1
                self._count -= 1
                pos += 1
            if length:
                self._front = []
            self._front_pos = 0
            if not self._count:
                return _INF
            self._fill_front()

    def pop(self) -> "Event":
        """Remove and return the earliest live event."""
        while True:
            front = self._front
            pos = self._front_pos
            if pos < len(front):
                event = front[pos][2]
                self._front_pos = pos + 1
                self._count -= 1
                if not event.cancelled:
                    return event
                event._callbacks = None
                event.env._cancelled -= 1
                continue
            if front:
                self._front = []
            self._front_pos = 0
            if not self._count:
                raise IndexError("pop from an empty CalendarQueue")
            self._fill_front()

    def next_due(self, now: float) -> "Any":
        """Pop and return the earliest live event if due (``when <= now``);
        otherwise return its firing time as a float (``inf`` when empty),
        leaving it queued.

        Fuses the kernel's ``min_when`` + ``pop`` pair into one call on
        the dispatch hot path; the common case (a live entry at the front
        cursor) is a few list index operations either way.
        """
        while True:
            front = self._front
            pos = self._front_pos
            if pos < len(front):
                entry = front[pos]
                event = entry[2]
                if not event.cancelled:
                    when = entry[0]
                    if when <= now:
                        self._front_pos = pos + 1
                        self._count -= 1
                        return event
                    return when
                self._front_pos = pos + 1
                self._count -= 1
                event._callbacks = None
                event.env._cancelled -= 1
                continue
            if front:
                self._front = []
            self._front_pos = 0
            if not self._count:
                return _INF
            self._fill_front()

    def pop_until(self, bound: float) -> "Any":
        """Pop and return the earliest live *entry* if ``when <= bound``;
        otherwise return its firing time as a float (``inf`` when empty).

        See :meth:`HeapQueue.pop_until` — the hook-free kernel loop's
        fused peek/advance/pop operation.
        """
        while True:
            front = self._front
            pos = self._front_pos
            if pos < len(front):
                entry = front[pos]
                event = entry[2]
                if not event.cancelled:
                    if entry[0] <= bound:
                        self._front_pos = pos + 1
                        self._count -= 1
                        return entry
                    return entry[0]
                self._front_pos = pos + 1
                self._count -= 1
                event._callbacks = None
                event.env._cancelled -= 1
                continue
            if front:
                self._front = []
            self._front_pos = 0
            if not self._count:
                return _INF
            self._fill_front()

    def _fill_front(self) -> None:
        """Advance the window to the next non-empty virtual bucket.

        Scans at most one lap of the ring; a fruitless lap means every
        pending entry is at least a full "year" ahead (far-future
        outliers), so fall back to a direct minimum search and jump.
        Precondition: ``_count > 0`` and the front is consumed.
        """
        mask = self._mask
        if self._count < (mask + 1) >> 3 and mask + 1 > self.MIN_BUCKETS:
            self._resize()
            mask = self._mask
        buckets = self._buckets
        inv_width = self._inv_width
        vb = self._front_vb + 1
        for _ in range(mask + 1):
            bucket = buckets[vb & mask]
            if bucket:
                matched = [e for e in bucket if int(e[0] * inv_width) == vb]
                if matched:
                    if len(matched) == len(bucket):
                        bucket.clear()
                    else:
                        bucket[:] = [e for e in bucket
                                     if int(e[0] * inv_width) != vb]
                    matched.sort()
                    self._front = matched
                    self._front_vb = vb
                    return
            vb += 1
        # Year rollover: everything pending lives beyond one full lap.
        vb = min(int(e[0] * inv_width)
                 for bucket in buckets for e in bucket)
        bucket = buckets[vb & mask]
        matched = [e for e in bucket if int(e[0] * inv_width) == vb]
        bucket[:] = [e for e in bucket if int(e[0] * inv_width) != vb]
        matched.sort()
        self._front = matched
        self._front_vb = vb

    # -- maintenance ------------------------------------------------------------

    def compact(self) -> int:
        """Physically drop every tombstone; returns the number removed."""
        removed = 0
        for bucket in self._buckets:
            live = [e for e in bucket if not e[2].cancelled]
            if len(live) != len(bucket):
                for e in bucket:
                    if e[2].cancelled:
                        e[2]._callbacks = None
                removed += len(bucket) - len(live)
                bucket[:] = live
        front = self._front
        pos = self._front_pos
        if pos < len(front):
            tail = [e for e in front[pos:] if not e[2].cancelled]
            dropped = len(front) - pos - len(tail)
            if dropped:
                for e in front[pos:]:
                    if e[2].cancelled:
                        e[2]._callbacks = None
                removed += dropped
                front[pos:] = tail
        self._count -= removed
        return removed

    def _resize(self) -> None:
        """Rebuild with bucket count/width matched to current occupancy.

        Targets about one live entry per bucket, with a power-of-two
        width near twice the observed average gap (so a window holds a
        couple of events).  Tombstones are swept for free on the way.
        """
        live: List[Entry] = []
        for entry in self.entries():
            event = entry[2]
            if event.cancelled:
                event._callbacks = None
                event.env._cancelled -= 1
            else:
                live.append(entry)
        count = len(live)
        live.sort()
        buckets_wanted = self.MIN_BUCKETS
        while buckets_wanted < count and buckets_wanted < self.MAX_BUCKETS:
            buckets_wanted <<= 1
        width = self._width
        if count >= 2:
            span = live[-1][0] - live[0][0]
            if span > 0.0:
                # Smallest power of two >= 2 * average gap.
                _m, exp = math.frexp(2.0 * span / (count - 1))
                width = min(max(2.0 ** exp, self.MIN_WIDTH), self.MAX_WIDTH)
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets = [[] for _ in range(buckets_wanted)]
        self._mask = buckets_wanted - 1
        self._count = 0
        self._front = []
        self._front_pos = 0
        if live:
            self._front_vb = int(live[0][0] * self._inv_width) - 1
            self.push_batch(live)
        else:
            self._front_vb = 0

    def entries(self) -> List[Entry]:
        """Snapshot of pending entries (live + tombstones), unordered."""
        out = self._front[self._front_pos:]
        for bucket in self._buckets:
            out.extend(bucket)
        return out


#: Future-event structures selectable by name (``Environment(queue=...)``
#: or the ``REPRO_SIM_QUEUE`` environment variable); "calendar" is the
#: default, "heap" the A/B baseline — mirroring the ``CPU_ENGINES`` map.
EVENT_QUEUES: Dict[str, Callable[[], Any]] = {
    "calendar": CalendarQueue,
    "heap": HeapQueue,
}

DEFAULT_QUEUE = "calendar"


def make_queue(name: str) -> Any:
    """Construct the named future-event structure."""
    try:
        factory = EVENT_QUEUES[name]
    except KeyError:
        raise ValueError(
            f"unknown event queue {name!r}; "
            f"expected one of {sorted(EVENT_QUEUES)}") from None
    return factory()


__all__ = ["CalendarQueue", "HeapQueue", "EVENT_QUEUES", "DEFAULT_QUEUE",
           "make_queue"]
