"""Memory accounting for the worker machine.

The paper reports total system memory (Figs. 13a/14a), per-client memory
footprints (Fig. 14d) and container memory.  This module provides a simple
allocate/free account with a time series of usage and peak tracking.  It does
not model paging: exceeding physical capacity raises
:class:`~repro.common.errors.CapacityExceeded`, which in the paper's own
evaluation manifested as "worker VM downtime" under the full I/O burst —
our experiments size workloads the same way the paper did to stay below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.errors import CapacityExceeded, SimulationError
from repro.sim.kernel import Environment


@dataclass(frozen=True, slots=True)
class MemorySample:
    """Memory usage (MB) observed at a simulated time (ms)."""

    time_ms: float
    used_mb: float


class MemoryAccount:
    """Tracks named memory allocations on one machine.

    ``retain_series=False`` drops the per-change usage series (peak and
    current usage stay exact) — the million-invocation regime, where one
    sample per allocate/free would grow without bound
    (~4 samples/invocation; see ``docs/scale.md``).
    """

    def __init__(self, env: Environment, capacity_mb: float,
                 strict: bool = True, retain_series: bool = True) -> None:
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity_mb}")
        self.env = env
        self.capacity_mb = capacity_mb
        self.strict = strict
        self.retain_series = retain_series
        self._allocations: Dict[str, float] = {}
        self._used = 0.0
        self._peak = 0.0
        self._series: List[MemorySample] = [MemorySample(env.now, 0.0)]
        #: Observers of usage changes, ``hook(used_mb)`` — the OOM-fault
        #: watch point.  None installed → zero overhead on the hot path.
        self._usage_hooks: List[Callable[[float], None]] = []

    def add_usage_hook(self, hook: Callable[[float], None]) -> None:
        """Call ``hook(used_mb)`` after every allocate/free.

        Hooks must not allocate or free synchronously (re-entrancy); an OOM
        watcher should schedule a zero-delay process to act instead.
        """
        self._usage_hooks.append(hook)

    @property
    def used_mb(self) -> float:
        return self._used

    @property
    def peak_mb(self) -> float:
        return self._peak

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used

    def allocate(self, owner: str, amount_mb: float) -> None:
        """Charge *amount_mb* to *owner* (amounts accumulate per owner)."""
        if amount_mb < 0:
            raise ValueError(f"negative allocation: {amount_mb}")
        if self.strict and self._used + amount_mb > self.capacity_mb:
            raise CapacityExceeded(
                f"allocating {amount_mb:.1f} MB for {owner!r} exceeds "
                f"capacity ({self._used:.1f}/{self.capacity_mb:.1f} MB used)")
        self._allocations[owner] = self._allocations.get(owner, 0.0) + amount_mb
        self._used += amount_mb
        self._peak = max(self._peak, self._used)
        self._record()

    def free(self, owner: str, amount_mb: float | None = None) -> None:
        """Release *amount_mb* from *owner* (all of it when None)."""
        held = self._allocations.get(owner)
        if held is None:
            raise SimulationError(f"{owner!r} holds no memory")
        if amount_mb is None:
            amount_mb = held
        if amount_mb < 0 or amount_mb > held + 1e-9:
            raise SimulationError(
                f"{owner!r} cannot free {amount_mb} MB (holds {held} MB)")
        remaining = held - amount_mb
        if remaining <= 1e-9:
            del self._allocations[owner]
            amount_mb = held
        else:
            self._allocations[owner] = remaining
        self._used -= amount_mb
        self._record()

    def held_by(self, owner: str) -> float:
        return self._allocations.get(owner, 0.0)

    def owners(self) -> Dict[str, float]:
        """Snapshot of current allocations by owner."""
        return dict(self._allocations)

    def series(self) -> List[MemorySample]:
        """The recorded usage series (one sample per change).

        Only the initial sample when ``retain_series=False``.
        """
        return list(self._series)

    def _record(self) -> None:
        if self.retain_series:
            self._series.append(MemorySample(self.env.now, self._used))
        for hook in self._usage_hooks:
            hook(self._used)
