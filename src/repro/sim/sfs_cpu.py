"""SFS-style CPU scheduling discipline.

SFS (SC'22, cited as [23] in the FaaSBatch paper) is a user-space CPU
scheduler for serverless workers: every function invocation is pinned to a
per-core *channel* and served with **adaptive time slices** so that short
functions approximate shortest-job-first without knowing durations in
advance.  Long functions are demoted to a background FIFO that only runs when
no short work is pending — "SFS improves the performance of short functions
at the expense of increasing the execution time of long functions" (§IV).

Model implemented here (a faithful small-scale reconstruction):

* ``cores`` worker cores, each running at most one task at a time
  (no processor sharing — SFS deliberately avoids preemptive sharing).
* New tasks enter the **foreground** round-robin queue.  A task runs for one
  time slice; if it finishes within its slice it leaves; otherwise its
  cumulative service is charged and it is re-queued — to the foreground when
  still below ``promotion_threshold_ms`` of total service, otherwise to the
  **background** FIFO.
* Background tasks are only dispatched when the foreground queue is empty
  and then receive ``background_slice_factor`` × the foreground slice.
* The foreground slice adapts to the recent request inter-arrival time
  (EWMA), clamped to ``[min_slice_ms, max_slice_ms]`` — SFS's "dynamically
  perceiving IaT of requests and assigning an adaptive size of time slices".

The class implements the :class:`repro.sim.engine.CpuEngine` protocol
(``create_group``/``submit``/accounting, shared scaffolding from
:class:`repro.sim.engine.CpuEngineBase`) so a machine can be constructed
with either discipline.  Group caps are accepted but not enforced: SFS
schedules function *processes* onto cores directly, bypassing container
cgroup shares (matching its user-space design).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import Ewma
from repro.common.units import TIME_EPSILON, clamp
from repro.sim.engine import CpuEngineBase
from repro.sim.kernel import Environment, Event, Timeout
from repro.sim.primitives import Store


class SfsTask:
    """A task moving through the SFS foreground/background queues."""

    __slots__ = ("work_total", "remaining", "served", "done", "label",
                 "started_at", "arrived_at", "group_name", "aborted")

    def __init__(self, work: float, done: Event, label: str,
                 arrived_at: float, group_name: str) -> None:
        self.work_total = work
        self.remaining = work
        self.served = 0.0
        self.done = done
        self.label = label
        self.started_at: Optional[float] = None
        self.arrived_at = arrived_at
        self.group_name = group_name
        self.aborted = False

    def __repr__(self) -> str:
        return f"<SfsTask {self.label} remaining={self.remaining:.3f}>"


class SfsCpu(CpuEngineBase):
    """Worker CPU scheduled by the SFS discipline (see module docstring).

    Group caps are accepted but not enforced (SFS bypasses cgroup shares);
    ``create_group``/``remove_group``/lookup come from
    :class:`~repro.sim.engine.CpuEngineBase`.
    """

    def __init__(self, env: Environment, cores: int,
                 min_slice_ms: float = 1.0,
                 max_slice_ms: float = 50.0,
                 initial_slice_ms: float = 5.0,
                 promotion_threshold_ms: float = 100.0,
                 background_slice_factor: float = 10.0,
                 iat_alpha: float = 0.3,
                 coalesce: bool = True) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if min_slice_ms <= 0 or max_slice_ms < min_slice_ms:
            raise ValueError("invalid slice bounds")
        super().__init__(env, int(cores))
        #: Elide provably-unobservable kernel events (see _core_loop); the
        #: flag exists so the regression tests can run the uncoalesced
        #: discipline side by side and assert identical schedules.
        self._coalesce = coalesce
        self.min_slice_ms = min_slice_ms
        self.max_slice_ms = max_slice_ms
        self.promotion_threshold_ms = promotion_threshold_ms
        self.background_slice_factor = background_slice_factor
        self._slice = clamp(initial_slice_ms, min_slice_ms, max_slice_ms)
        self._iat = Ewma(alpha=iat_alpha)
        self._last_arrival: Optional[float] = None
        self._foreground: Deque[SfsTask] = deque()
        self._background: Deque[SfsTask] = deque()
        self._signal: Store[int] = Store(env)
        #: Wake-up signals whose task was aborted out of the queues.
        self._stale_signals = 0
        self._core_machines: List[_SfsCore] = [
            _SfsCore(self) for _ in range(self.cores)]

    # -- CpuEngine interface ----------------------------------------------------

    def set_group_cap(self, name: str, cap: Optional[float]) -> None:
        """Record a new cap (accepted, not enforced — see module doc).

        SFS schedules function processes onto cores directly, so a cgroup
        cap change has no effect on its dispatch order; the interface exists
        so fault plans run unchanged under every CPU discipline.
        """
        if cap is not None and cap <= 0:
            raise ValueError(f"group cap must be > 0, got {cap}")
        self.group(name).cap = cap

    def abort_group_tasks(self, name: str) -> int:
        """Drop every task of *name* without firing its done event.

        Queued tasks are removed (their wake-up signals become stale and are
        swallowed by the core loops); a task currently running its slice is
        flagged and discarded when the slice ends.
        """
        if name not in self._groups:
            raise SimulationError(f"unknown CPU group {name!r}")
        dropped = 0
        for queue_ in (self._foreground, self._background):
            keep = [t for t in queue_ if t.group_name != name]
            removed = len(queue_) - len(keep)
            if removed:
                queue_.clear()
                queue_.extend(keep)
                self._stale_signals += removed
                dropped += removed
        for core in self._core_machines:
            task = core.task
            if (task is not None and task.group_name == name
                    and not task.aborted):
                task.aborted = True
                dropped += 1
        return dropped

    def submit(self, work: float, group: str = CpuEngineBase.HOST_GROUP,
               max_share: float = 1.0, label: str = "") -> Event:
        """Enqueue *work* core-ms; the returned event fires on completion."""
        self._validate_work(work)
        if group not in self._groups:
            raise SimulationError(f"unknown CPU group {group!r}")
        if work == 0.0:
            return self._completed_event()
        self._observe_arrival()
        self._task_sequence += 1
        task = SfsTask(work=work, done=self.env.event(),
                       label=label or f"sfs-task-{self._task_sequence}",
                       arrived_at=self.env.now, group_name=group)
        self._foreground.append(task)
        self._signal.put(1)
        return task.done

    @property
    def active_tasks(self) -> int:
        running = sum(1 for core in self._core_machines
                      if core.task is not None)
        return len(self._foreground) + len(self._background) + running

    def busy_core_ms(self) -> float:
        """Completed core-ms (whole slices; running slices charge at end)."""
        return self._busy_core_ms

    def current_rate(self) -> float:
        """Cores currently executing a task."""
        return float(sum(1 for core in self._core_machines
                         if core.task is not None))

    @property
    def current_slice_ms(self) -> float:
        """The adaptive foreground time slice currently in force."""
        return self._slice

    # -- internals -----------------------------------------------------------

    def _observe_arrival(self) -> None:
        now = self.env.now
        if self._last_arrival is not None:
            self._iat.observe(max(now - self._last_arrival, 0.0))
            self._slice = clamp(self._iat.value,
                                self.min_slice_ms, self.max_slice_ms)
        self._last_arrival = now

    def _pick(self) -> tuple:
        """Pop the next task per discipline; returns (task, quantum)."""
        if self._foreground:
            task = self._foreground.popleft()
            quantum = self._slice
        elif self._background:
            task = self._background.popleft()
            quantum = self._slice * self.background_slice_factor
        elif self._stale_signals > 0:
            # The signalled task was aborted out of the queue; swallow.
            self._stale_signals -= 1
            return None, 0.0
        else:
            raise SimulationError("SFS signalled with no queued task")
        return task, min(quantum, task.remaining)

    def _merge_slices(self, task: SfsTask, quantum: float, fire: float,
                      horizon: float) -> Tuple[Optional[List[float]], float]:
        """Plan the run of back-to-back slices *task* gets from one timer.

        Returns ``(slices, fire_at)``: the per-slice charges (``None`` when
        only the first slice fits — the common contended case, spared the
        list allocation) and the absolute firing time of the single merged
        timer.  The plan extends beyond the first slice only while every
        additional slice boundary falls *strictly before* *horizon* — the
        next scheduled kernel event; the caller has already established
        that both queues are empty, no signals are in flight and no time
        hooks are installed.  Under those conditions the sequential
        discipline would provably run the same task for the same
        back-to-back slices with nothing able to observe (or perturb) the
        intermediate boundaries, so merging them into one timer elides
        their events without changing any slice boundary a task observes.
        Boundary times accumulate sequentially (``fire += slice``), exactly
        the float chain the per-slice timers would have produced.
        """
        slices = [quantum]
        remaining = task.remaining - quantum
        served = task.served + quantum
        slice_ms = self._slice
        bg_quantum = slice_ms * self.background_slice_factor
        promotion = self.promotion_threshold_ms
        while True:
            nxt = bg_quantum if served >= promotion else slice_ms
            if remaining < nxt:
                nxt = remaining
            boundary = fire + nxt
            if boundary >= horizon:
                break
            slices.append(nxt)
            fire = boundary
            remaining -= nxt
            served += nxt
            if remaining <= TIME_EPSILON:
                break
        if len(slices) == 1:
            return None, fire
        return slices, fire


class _SfsCore:
    """One worker core as an event-callback state machine.

    Historically each core was a generator process (``yield signal.get()``
    / ``yield timer``); with millions of slice events per run the generator
    machinery (send/yield, Process bookkeeping) dominated the SFS bench
    cell.  The state machine drives the *same* events — one Store ``get``
    per idle wait, one (merged) timer per slice run, the same pick order,
    the same signal hand-off — by attaching its methods directly as the
    events' callbacks, so the observable schedule is bit-identical while
    each slice costs one callback invocation instead of a generator resume.

    Each cycle: ``_on_signal`` pops the signalled task and arms the slice
    timer; ``_on_timer`` charges the merged slices and either completes the
    task, re-queues it (taking the next task directly when the wake-up
    signal would be the sole event at this instant — order-preserving,
    since the elided wake event would have been the next event processed
    and core identity is not observable), or goes back to waiting.
    """

    __slots__ = ("cpu", "task", "quantum", "slices", "timer")

    def __init__(self, cpu: "SfsCpu") -> None:
        self.cpu = cpu
        self.task: Optional[SfsTask] = None
        self.quantum = 0.0
        self.slices: Optional[List[float]] = None
        self.timer: Optional[Timeout] = None
        self._await_signal()

    def _await_signal(self) -> None:
        event = self.cpu._signal.get()
        # Fresh get events have no waiters; attach the bare callback.
        event._callbacks = self._on_signal

    def _on_signal(self, _event: Event) -> None:
        task, quantum = self.cpu._pick()
        if task is None:
            self._await_signal()
            return
        self.task = task
        self.quantum = quantum
        self._arm()

    def _arm(self) -> None:
        """Arm one timer covering one or more merged slices of the task.

        The merge gate is inlined (conservative peek: treating a
        tombstone-only immediate deque as pending work only skips an
        elision, never changes the schedule), and the timer re-arm inlines
        ``Timeout.reset`` minus its guards — this core owns the timer, it
        is fully processed, never cancelled, and fires in the future.
        """
        cpu = self.cpu
        env = cpu.env
        task = self.task
        quantum = self.quantum
        now = env._now
        if task.started_at is None:
            task.started_at = now
        fire = now + quantum
        slices = None
        if (cpu._coalesce
                and not cpu._foreground and not cpu._background
                and not cpu._stale_signals and not cpu._signal._items
                and not env._time_hooks
                and not env._urgent and not env._immediate
                and task.remaining - quantum > TIME_EPSILON):
            horizon = env._future.min_when()
            if fire < horizon:
                slices, fire = cpu._merge_slices(task, quantum, fire, horizon)
        self.slices = slices
        timer = self.timer
        if timer is not None and timer._callbacks is None:
            timer.delay = fire - now
            if fire > now:
                env._future.push(fire, env._sequence, timer)
                env._sequence += 1
            else:
                env._immediate.append(timer)
        else:
            timer = env.timeout_at(fire)
            self.timer = timer
        timer._callbacks = self._on_timer

    def _on_timer(self, _event: Event) -> None:
        cpu = self.cpu
        env = cpu.env
        task = self.task
        slices = self.slices
        if slices is None:
            # Single slice (the common contended case): charge directly.
            charge = self.quantum
            task.remaining -= charge
            task.served += charge
            cpu._busy_core_ms += charge
        else:
            # Merged run: charge sequentially, preserving the float chain.
            busy = cpu._busy_core_ms
            for charge in slices:
                task.remaining -= charge
                task.served += charge
                busy += charge
            cpu._busy_core_ms = busy
        if task.aborted:
            # Crashed mid-slice: discard without completing.
            self.task = None
            self._await_signal()
            return
        if task.remaining <= TIME_EPSILON:
            task.done.succeed(env._now - task.arrived_at)
            self.task = None
            self._await_signal()
            return
        foreground = cpu._foreground
        if task.served >= cpu.promotion_threshold_ms:
            cpu._background.append(task)
        else:
            foreground.append(task)
        if (cpu._coalesce and not env._urgent and not env._immediate
                and env._future.min_when() > env._now):
            # The wake-up signal would be the sole event at this instant:
            # elide the round-trip and pick the next task directly (inline
            # _pick; a queue is non-empty — the task was just re-queued —
            # and the conservative peek is order-preserving as in _arm).
            if foreground:
                task = foreground.popleft()
                quantum = cpu._slice
            else:
                task = cpu._background.popleft()
                quantum = cpu._slice * cpu.background_slice_factor
            remaining = task.remaining
            self.task = task
            self.quantum = quantum if quantum < remaining else remaining
            self._arm()
            return
        self.task = None
        cpu._signal.put(1)
        self._await_signal()
