"""SFS-style CPU scheduling discipline.

SFS (SC'22, cited as [23] in the FaaSBatch paper) is a user-space CPU
scheduler for serverless workers: every function invocation is pinned to a
per-core *channel* and served with **adaptive time slices** so that short
functions approximate shortest-job-first without knowing durations in
advance.  Long functions are demoted to a background FIFO that only runs when
no short work is pending — "SFS improves the performance of short functions
at the expense of increasing the execution time of long functions" (§IV).

Model implemented here (a faithful small-scale reconstruction):

* ``cores`` worker cores, each running at most one task at a time
  (no processor sharing — SFS deliberately avoids preemptive sharing).
* New tasks enter the **foreground** round-robin queue.  A task runs for one
  time slice; if it finishes within its slice it leaves; otherwise its
  cumulative service is charged and it is re-queued — to the foreground when
  still below ``promotion_threshold_ms`` of total service, otherwise to the
  **background** FIFO.
* Background tasks are only dispatched when the foreground queue is empty
  and then receive ``background_slice_factor`` × the foreground slice.
* The foreground slice adapts to the recent request inter-arrival time
  (EWMA), clamped to ``[min_slice_ms, max_slice_ms]`` — SFS's "dynamically
  perceiving IaT of requests and assigning an adaptive size of time slices".

The class implements the :class:`repro.sim.engine.CpuEngine` protocol
(``create_group``/``submit``/accounting, shared scaffolding from
:class:`repro.sim.engine.CpuEngineBase`) so a machine can be constructed
with either discipline.  Group caps are accepted but not enforced: SFS
schedules function *processes* onto cores directly, bypassing container
cgroup shares (matching its user-space design).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import Ewma
from repro.common.units import TIME_EPSILON, clamp
from repro.sim.engine import CpuEngineBase
from repro.sim.kernel import Environment, Event, Timeout
from repro.sim.primitives import Store


class SfsTask:
    """A task moving through the SFS foreground/background queues."""

    __slots__ = ("work_total", "remaining", "served", "done", "label",
                 "started_at", "arrived_at", "group_name", "aborted")

    def __init__(self, work: float, done: Event, label: str,
                 arrived_at: float, group_name: str) -> None:
        self.work_total = work
        self.remaining = work
        self.served = 0.0
        self.done = done
        self.label = label
        self.started_at: Optional[float] = None
        self.arrived_at = arrived_at
        self.group_name = group_name
        self.aborted = False

    def __repr__(self) -> str:
        return f"<SfsTask {self.label} remaining={self.remaining:.3f}>"


class SfsCpu(CpuEngineBase):
    """Worker CPU scheduled by the SFS discipline (see module docstring).

    Group caps are accepted but not enforced (SFS bypasses cgroup shares);
    ``create_group``/``remove_group``/lookup come from
    :class:`~repro.sim.engine.CpuEngineBase`.
    """

    def __init__(self, env: Environment, cores: int,
                 min_slice_ms: float = 1.0,
                 max_slice_ms: float = 50.0,
                 initial_slice_ms: float = 5.0,
                 promotion_threshold_ms: float = 100.0,
                 background_slice_factor: float = 10.0,
                 iat_alpha: float = 0.3,
                 coalesce: bool = True) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if min_slice_ms <= 0 or max_slice_ms < min_slice_ms:
            raise ValueError("invalid slice bounds")
        super().__init__(env, int(cores))
        #: Elide provably-unobservable kernel events (see _core_loop); the
        #: flag exists so the regression tests can run the uncoalesced
        #: discipline side by side and assert identical schedules.
        self._coalesce = coalesce
        self.min_slice_ms = min_slice_ms
        self.max_slice_ms = max_slice_ms
        self.promotion_threshold_ms = promotion_threshold_ms
        self.background_slice_factor = background_slice_factor
        self._slice = clamp(initial_slice_ms, min_slice_ms, max_slice_ms)
        self._iat = Ewma(alpha=iat_alpha)
        self._last_arrival: Optional[float] = None
        self._foreground: Deque[SfsTask] = deque()
        self._background: Deque[SfsTask] = deque()
        self._signal: Store[int] = Store(env)
        self._running: Set[SfsTask] = set()
        #: Wake-up signals whose task was aborted out of the queues.
        self._stale_signals = 0
        for core_index in range(self.cores):
            env.process(self._core_loop(core_index), name=f"sfs-core-{core_index}")

    # -- CpuEngine interface ----------------------------------------------------

    def set_group_cap(self, name: str, cap: Optional[float]) -> None:
        """Record a new cap (accepted, not enforced — see module doc).

        SFS schedules function processes onto cores directly, so a cgroup
        cap change has no effect on its dispatch order; the interface exists
        so fault plans run unchanged under every CPU discipline.
        """
        if cap is not None and cap <= 0:
            raise ValueError(f"group cap must be > 0, got {cap}")
        self.group(name).cap = cap

    def abort_group_tasks(self, name: str) -> int:
        """Drop every task of *name* without firing its done event.

        Queued tasks are removed (their wake-up signals become stale and are
        swallowed by the core loops); a task currently running its slice is
        flagged and discarded when the slice ends.
        """
        if name not in self._groups:
            raise SimulationError(f"unknown CPU group {name!r}")
        dropped = 0
        for queue_ in (self._foreground, self._background):
            keep = [t for t in queue_ if t.group_name != name]
            removed = len(queue_) - len(keep)
            if removed:
                queue_.clear()
                queue_.extend(keep)
                self._stale_signals += removed
                dropped += removed
        for task in self._running:
            if task.group_name == name and not task.aborted:
                task.aborted = True
                dropped += 1
        return dropped

    def submit(self, work: float, group: str = CpuEngineBase.HOST_GROUP,
               max_share: float = 1.0, label: str = "") -> Event:
        """Enqueue *work* core-ms; the returned event fires on completion."""
        self._validate_work(work)
        if group not in self._groups:
            raise SimulationError(f"unknown CPU group {group!r}")
        if work == 0.0:
            return self._completed_event()
        self._observe_arrival()
        self._task_sequence += 1
        task = SfsTask(work=work, done=self.env.event(),
                       label=label or f"sfs-task-{self._task_sequence}",
                       arrived_at=self.env.now, group_name=group)
        self._foreground.append(task)
        self._signal.put(1)
        return task.done

    @property
    def active_tasks(self) -> int:
        return (len(self._foreground) + len(self._background)
                + len(self._running))

    def busy_core_ms(self) -> float:
        """Completed core-ms (whole slices; running slices charge at end)."""
        return self._busy_core_ms

    def current_rate(self) -> float:
        """Cores currently executing a task."""
        return float(len(self._running))

    @property
    def current_slice_ms(self) -> float:
        """The adaptive foreground time slice currently in force."""
        return self._slice

    # -- internals -----------------------------------------------------------

    def _observe_arrival(self) -> None:
        now = self.env.now
        if self._last_arrival is not None:
            self._iat.observe(max(now - self._last_arrival, 0.0))
            self._slice = clamp(self._iat.value,
                                self.min_slice_ms, self.max_slice_ms)
        self._last_arrival = now

    def _pick(self) -> tuple:
        """Pop the next task per discipline; returns (task, quantum)."""
        if self._foreground:
            task = self._foreground.popleft()
            quantum = self._slice
        elif self._background:
            task = self._background.popleft()
            quantum = self._slice * self.background_slice_factor
        elif self._stale_signals > 0:
            # The signalled task was aborted out of the queue; swallow.
            self._stale_signals -= 1
            return None, 0.0
        else:
            raise SimulationError("SFS signalled with no queued task")
        return task, min(quantum, task.remaining)

    def _plan_slices(self, task: SfsTask,
                     quantum: float) -> Tuple[List[float], float]:
        """Plan the run of back-to-back slices *task* gets from one timer.

        Returns ``(slices, fire_at)``: the per-slice charges and the
        absolute firing time of the single merged timer.  The plan extends
        beyond the first slice only while every additional slice boundary
        falls *strictly before* the next scheduled kernel event
        (``env.peek()``) with both queues empty, no signals in flight and
        no time hooks installed — under those conditions the sequential
        discipline would provably run the same task for the same
        back-to-back slices with nothing able to observe (or perturb) the
        intermediate boundaries, so merging them into one timer elides
        their events without changing any slice boundary a task observes.
        Boundary times accumulate sequentially (``fire += slice``), exactly
        the float chain the per-slice timers would have produced.
        """
        env = self.env
        fire = env.now + quantum
        slices = [quantum]
        remaining = task.remaining - quantum
        if (remaining <= TIME_EPSILON
                or self._foreground or self._background
                or self._stale_signals or len(self._signal)
                or env._time_hooks):
            return slices, fire
        horizon = env.peek()
        if fire >= horizon:
            return slices, fire
        served = task.served + quantum
        slice_ms = self._slice
        bg_quantum = slice_ms * self.background_slice_factor
        promotion = self.promotion_threshold_ms
        while True:
            nxt = bg_quantum if served >= promotion else slice_ms
            if remaining < nxt:
                nxt = remaining
            boundary = fire + nxt
            if boundary >= horizon:
                return slices, fire
            slices.append(nxt)
            fire = boundary
            remaining -= nxt
            served += nxt
            if remaining <= TIME_EPSILON:
                return slices, fire

    def _core_loop(self, core_index: int):
        env = self.env
        signal = self._signal
        running = self._running
        coalesce = self._coalesce
        timer: Optional[Timeout] = None
        while True:
            yield signal.get()
            task, quantum = self._pick()
            if task is None:
                continue
            # Inner loop: consecutive slices on this core.  Each iteration
            # arms one timer covering one or more merged slices; when the
            # end-of-slice wake-up would be the sole event at this instant,
            # the signal round-trip is elided and the next task is picked
            # directly (order-preserving: the elided wake event would have
            # been the next event processed, and core identity is not
            # observable).
            while True:
                if task.started_at is None:
                    task.started_at = env.now
                running.add(task)
                if coalesce:
                    slices, fire = self._plan_slices(task, quantum)
                else:
                    slices, fire = [quantum], env.now + quantum
                if timer is not None and timer._callbacks is None:
                    timer.reset(0.0, at=fire)
                else:
                    timer = env.timeout_at(fire)
                yield timer
                running.discard(task)
                busy = self._busy_core_ms
                for charge in slices:
                    task.remaining -= charge
                    task.served += charge
                    busy += charge
                self._busy_core_ms = busy
                if task.aborted:
                    break  # crashed mid-slice: discard without completing
                if task.remaining <= TIME_EPSILON:
                    task.done.succeed(env.now - task.arrived_at)
                    break
                if task.served >= self.promotion_threshold_ms:
                    self._background.append(task)
                else:
                    self._foreground.append(task)
                if coalesce and env.peek() > env.now:
                    task, quantum = self._pick()
                    continue
                signal.put(1)
                break
