"""Waitable primitives built on the kernel: Resource, Store, Gate.

These are the coordination primitives the platform model is written against:

* :class:`Resource` — a counted resource (e.g. "at most N concurrent cold
  starts"); FIFO grant order.
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``;
  this is the request queue the gateway listens on.
* :class:`Gate` — a reusable open/close barrier (used for keep-alive
  expiry and shutdown signalling).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generic, List, Optional, TypeVar

from repro.common.errors import SimulationError
from repro.sim.kernel import Environment, Event

T = TypeVar("T")

_MISSING = object()


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._on_request(self)

    def release(self) -> None:
        """Give the unit back (idempotent-unsafe: call exactly once)."""
        self.resource._on_release(self)


class Resource:
    """A counted resource with FIFO grant order.

    Usage from a process::

        request = resource.request()
        yield request          # waits until a unit is free
        ...                    # critical section
        request.release()
    """

    __slots__ = ("env", "capacity", "_granted", "_waiting")

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        # Insertion-ordered holders; a dict gives O(1) release instead of a
        # list scan (grant order is unaffected: _waiting stays FIFO).
        self._granted: Dict[Request, None] = {}
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return len(self._granted)

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Create a pending acquisition (an event to yield on)."""
        return Request(self)

    def cancel(self, request: Request) -> None:
        """Withdraw *request*, whether it is still queued or already granted.

        Needed when the process that issued the request is interrupted (a
        timeout or a container crash) while waiting for its unit: plain
        ``release()`` raises for an ungranted request.  Cancelling an
        already-granted request behaves like ``release()``.
        """
        if request in self._granted:
            self._on_release(request)
            return
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    # -- internal protocol -----------------------------------------------------

    def _on_request(self, request: Request) -> None:
        if len(self._granted) < self.capacity:
            self._granted[request] = None
            request.succeed(self)
        else:
            self._waiting.append(request)

    def _on_release(self, request: Request) -> None:
        if self._granted.pop(request, _MISSING) is _MISSING:
            raise SimulationError("release of a request that holds no unit")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._granted[nxt] = None
            nxt.succeed(self)


class Store(Generic[T]):
    """Unbounded FIFO item queue with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event whose value is the item.
    Waiters are served FIFO.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: T) -> None:
        """Add *item*; wakes the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that yields the next item (FIFO)."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending getter created by :meth:`get`.

        No-op when the event already received an item (it may have raced);
        the caller must then consume ``event.value`` itself.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def get_nowait(self) -> Optional[T]:
        """Pop the next item immediately, or return None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> List[T]:
        """Remove and return all queued items (does not wake getters)."""
        items = list(self._items)
        self._items.clear()
        return items


class Gate:
    """A reusable open/closed barrier.

    ``wait()`` returns an event that triggers immediately when the gate is
    open, or when it next opens.  Re-closing resets the barrier.
    """

    __slots__ = ("env", "_open", "_waiters")

    def __init__(self, env: Environment, open_: bool = False) -> None:
        self.env = env
        self._open = open_
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = self.env.event()
        if self._open:
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def open(self, value: Any = None) -> None:
        """Open the gate, releasing all current waiters."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(value)

    def close(self) -> None:
        """Close the gate; subsequent waiters block until next open()."""
        self._open = False
