"""The pre-refactor fair-share CPU engine, kept verbatim.

This is the two-level max-min fair engine exactly as it existed before the
incremental reallocation refactor: every submit/finish event re-sorts and
re-waterfills *every* group and task (O(total tasks) per event), and stale
wake-up timers are left in the heap to fire as no-ops.

It stays in the tree for two reasons:

* **Perf baseline** — ``python -m repro bench`` runs the same scenario on
  this engine and on :class:`repro.sim.fair_share.FairShareCpu` and records
  the speedup in ``BENCH_sim.json``.
* **Equivalence oracle** — the golden-trace tests assert that the
  incremental engine produces byte-identical traces, event logs and metrics
  against this reference implementation.

Do not "improve" this module: its value is being frozen.  Its private
``_waterfill`` intentionally keeps the original quadratic active-set filter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.units import TIME_EPSILON
from repro.sim.engine import CpuGroup, CpuTask
from repro.sim.kernel import Environment, Event


def _waterfill(capacity: float, demands: List[float]) -> List[float]:
    """The original max-min water-filling loop, pre inner-loop fix."""
    n = len(demands)
    allocation = [0.0] * n
    if n == 0 or capacity <= 0:
        return allocation
    remaining = capacity
    active = [i for i in range(n) if demands[i] > 0]
    while active and remaining > TIME_EPSILON:
        share = remaining / len(active)
        bounded = [i for i in active if demands[i] - allocation[i] <= share]
        if bounded:
            for i in bounded:
                grant = demands[i] - allocation[i]
                allocation[i] = demands[i]
                remaining -= grant
            active = [i for i in active if i not in set(bounded)]
        else:
            for i in active:
                allocation[i] += share
            remaining = 0.0
    return allocation


class LegacyFairShareCpu:
    """The pre-refactor two-level processor-sharing CPU (frozen)."""

    HOST_GROUP = "host"

    def __init__(self, env: Environment, cores: float) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be > 0, got {cores}")
        self.env = env
        self.cores = float(cores)
        self._groups: Dict[str, CpuGroup] = {
            self.HOST_GROUP: CpuGroup(self.HOST_GROUP, cap=None)}
        self._tasks: Dict[CpuTask, None] = {}
        self._last_update = env.now
        self._busy_core_ms = 0.0
        self._wake_version = 0
        self._task_sequence = 0

    # -- groups ----------------------------------------------------------------

    def create_group(self, name: str, cap: Optional[float]) -> CpuGroup:
        """Create a capped group (one per container)."""
        if name in self._groups:
            raise SimulationError(f"CPU group {name!r} already exists")
        if cap is not None:
            cap = min(cap, self.cores)
        group = CpuGroup(name, cap)
        self._groups[name] = group
        return group

    def remove_group(self, name: str) -> None:
        """Remove an (empty) group when its container is torn down."""
        if name == self.HOST_GROUP:
            raise SimulationError("cannot remove the host group")
        group = self._groups.pop(name, None)
        if group is None:
            raise SimulationError(f"unknown CPU group {name!r}")
        if group.tasks:
            raise SimulationError(
                f"CPU group {name!r} still has {len(group.tasks)} tasks")

    def group(self, name: str) -> CpuGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise SimulationError(f"unknown CPU group {name!r}") from None

    def has_group(self, name: str) -> bool:
        return name in self._groups

    def set_group_cap(self, name: str, cap: Optional[float]) -> None:
        """Re-cap *name* at runtime (the straggler-slowdown fault hook)."""
        if cap is not None:
            if cap <= 0:
                raise ValueError(f"group cap must be > 0, got {cap}")
            cap = min(cap, self.cores)
        group = self.group(name)
        self._settle_elapsed()
        group.cap = cap
        self._reallocate_and_arm()

    def abort_group_tasks(self, name: str) -> int:
        """Drop every runnable task of *name* without firing its done event."""
        group = self.group(name)
        if not group.tasks:
            return 0
        self._settle_elapsed()
        dropped = 0
        for task in list(group.tasks):
            self._tasks.pop(task, None)
            group.tasks.pop(task, None)
            task.rate = 0.0
            dropped += 1
        self._reallocate_and_arm()
        return dropped

    # -- work submission ---------------------------------------------------------

    def submit(self, work: float, group: str = HOST_GROUP,
               max_share: float = 1.0, label: str = "") -> Event:
        """Execute *work* core-ms in *group*; the event fires on completion."""
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if max_share <= 0:
            raise ValueError(f"max_share must be > 0, got {max_share}")
        done = self.env.event()
        if work == 0.0:
            done.succeed(0.0)
            return done
        self._settle_elapsed()
        self._task_sequence += 1
        task = CpuTask(work=work, max_share=max_share,
                       group=self.group(group), done=done,
                       started_at=self.env.now,
                       label=label or f"task-{self._task_sequence}")
        task.group.tasks[task] = None
        self._tasks[task] = None
        self._reallocate_and_arm()
        return done

    # -- accounting ----------------------------------------------------------------

    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def busy_core_ms(self) -> float:
        """Total core-milliseconds of work completed so far."""
        self._settle_elapsed()
        return self._busy_core_ms

    def current_rate(self) -> float:
        """Aggregate core usage right now (cores being consumed)."""
        return sum(task.rate for task in self._tasks)

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self.current_rate() / self.cores

    def runnable_group_count(self) -> int:
        """Groups with at least one runnable task (a telemetry probe)."""
        return sum(1 for group in self._groups.values() if group.tasks)

    # -- internals ----------------------------------------------------------------

    def _settle_elapsed(self) -> None:
        """Deduct work done since the last update at the current rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        for task in self._tasks:
            task.remaining -= task.rate * dt
            self._busy_core_ms += task.rate * dt
        self._last_update = now

    def _time_resolution(self) -> float:
        """Smallest representable clock advance at the current sim time."""
        return max(TIME_EPSILON, 4.0 * math.ulp(self.env.now))

    def _reallocate_and_arm(self) -> None:
        """Recompute rates, complete finished tasks, arm the next wake-up."""
        resolution = self._time_resolution()
        finished = [t for t in self._tasks
                    if t.remaining <= TIME_EPSILON
                    or (t.rate > 0.0 and t.remaining / t.rate <= resolution)]
        for task in finished:
            self._tasks.pop(task, None)
            task.group.tasks.pop(task, None)
            task.rate = 0.0
            task.remaining = 0.0
            task.finished_at = self.env.now
            task.done.succeed(self.env.now - task.started_at)
        self._recompute_rates()
        self._arm_wakeup()

    def _recompute_rates(self) -> None:
        groups = [g for g in self._groups.values() if g.tasks]
        demands = [g.demand for g in groups]
        group_alloc = _waterfill(self.cores, demands)
        for group, alloc in zip(groups, group_alloc):
            tasks = sorted(group.tasks, key=lambda t: t.label)
            task_alloc = _waterfill(alloc, [t.max_share for t in tasks])
            for task, rate in zip(tasks, task_alloc):
                task.rate = rate

    def _arm_wakeup(self) -> None:
        self._wake_version += 1
        version = self._wake_version
        horizon = math.inf
        for task in self._tasks:
            if task.rate > 0:
                horizon = min(horizon, task.remaining / task.rate)
        if math.isinf(horizon):
            if self._tasks and all(t.rate <= 0 for t in self._tasks):
                raise SimulationError(
                    "CPU starvation: runnable tasks but zero allocation")
            return
        horizon = max(horizon, self._time_resolution())
        timeout = self.env.timeout(horizon)
        assert timeout.callbacks is not None
        timeout.callbacks.append(lambda _ev: self._on_wakeup(version))

    def _on_wakeup(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer allocation
        self._settle_elapsed()
        self._reallocate_and_arm()
