"""The worker machine: CPU + memory + a 1 Hz resource sampler.

The paper's evaluation runs on "a large worker VM with 32 vCPUs and 64 GB
memory" and samples host resource utilisation "at a frequency of once per
second" (§V-B).  :class:`Machine` bundles a CPU model (fair-share by default,
SFS optionally), a memory account and a periodic sampler that produces the
series behind Figs. 13 and 14.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.common.units import SECOND, gigabytes
from repro.sim.engine import CpuEngine
from repro.sim.fair_share import FairShareCpu
from repro.sim.kernel import Environment
from repro.sim.legacy_cpu import LegacyFairShareCpu
from repro.sim.memory import MemoryAccount
from repro.sim.sfs_cpu import SfsCpu

#: Anything satisfying the CpuEngine protocol (kept under the historical
#: alias so annotations across platformsim/ and cluster/ stay valid).
CpuService = CpuEngine

#: Fair-share engine implementations selectable by name; "incremental" is
#: the default, "legacy" is the frozen pre-refactor engine (bench baseline
#: and equivalence oracle).
CPU_ENGINES = {
    "incremental": FairShareCpu,
    "legacy": LegacyFairShareCpu,
}


class CpuDiscipline(enum.Enum):
    """Which CPU scheduling discipline a worker machine runs.

    Every policy in the paper runs on the kernel's fair-share scheduling
    except SFS, which installs its own user-space discipline.
    """

    FAIR_SHARE = "fair-share"
    SFS = "sfs"


def build_cpu(env: Environment, discipline: "CpuDiscipline",
              cores: int, engine: str = "incremental") -> CpuEngine:
    """Construct the CPU service implementing *discipline*.

    ``engine`` picks the fair-share implementation ("incremental" or
    "legacy"); both produce bit-identical schedules.  SFS has a single
    implementation, so the engine choice does not apply to it.
    """
    if discipline is CpuDiscipline.SFS:
        return SfsCpu(env, cores)
    try:
        factory = CPU_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown CPU engine {engine!r}; "
            f"expected one of {sorted(CPU_ENGINES)}") from None
    return factory(env, cores)


@dataclass(frozen=True)
class ResourceSample:
    """One periodic host observation (the paper samples at 1 Hz)."""

    time_ms: float
    memory_mb: float
    cpu_utilization: float  # in [0, 1]
    cpu_busy_core_ms: float  # cumulative


class Machine:
    """A single worker VM with CPU, memory and periodic sampling."""

    def __init__(self, env: Environment,
                 cores: int = 32,
                 memory_gb: float = 64.0,
                 cpu: Optional[CpuService] = None,
                 sample_period_ms: float = SECOND,
                 strict_memory: bool = True,
                 retain_memory_series: bool = True) -> None:
        self.env = env
        self.cores = cores
        self.cpu: CpuService = cpu if cpu is not None else FairShareCpu(env, cores)
        self.memory = MemoryAccount(env, capacity_mb=gigabytes(memory_gb),
                                    strict=strict_memory,
                                    retain_series=retain_memory_series)
        self.sample_period_ms = sample_period_ms
        self._samples: List[ResourceSample] = []
        self._sampling = False

    # -- sampling ------------------------------------------------------------

    def start_sampler(self, horizon_ms: float) -> None:
        """Sample resources every period until *horizon_ms* of run time."""
        if self._sampling:
            return
        self._sampling = True
        self.env.process(self._sample_loop(horizon_ms), name="machine-sampler")

    def _sample_loop(self, horizon_ms: float):
        deadline = self.env.now + horizon_ms
        while self.env.now <= deadline:
            self._samples.append(ResourceSample(
                time_ms=self.env.now,
                memory_mb=self.memory.used_mb,
                cpu_utilization=self.cpu.utilization(),
                cpu_busy_core_ms=self.cpu.busy_core_ms()))
            yield self.env.timeout(self.sample_period_ms)

    def samples(self) -> List[ResourceSample]:
        """The recorded 1 Hz observations."""
        return list(self._samples)

    # -- convenience metrics ----------------------------------------------------

    def average_memory_mb(self) -> float:
        """Mean of the sampled memory series (paper's 'total memory usage')."""
        if not self._samples:
            raise ValueError("no samples recorded; call start_sampler()")
        return sum(s.memory_mb for s in self._samples) / len(self._samples)

    def average_cpu_utilization(self) -> float:
        """Mean of the sampled utilisation series."""
        if not self._samples:
            raise ValueError("no samples recorded; call start_sampler()")
        return (sum(s.cpu_utilization for s in self._samples)
                / len(self._samples))

    def peak_memory_mb(self) -> float:
        return self.memory.peak_mb

    def total_cpu_core_ms(self) -> float:
        """Total computation completed on this machine."""
        return self.cpu.busy_core_ms()
