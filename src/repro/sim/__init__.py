"""Discrete-event simulation substrate: kernel, primitives, CPU, memory."""

from repro.sim.cpu import CpuGroup, CpuTask, FairShareCpu, waterfill
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.machine import (
    CpuDiscipline,
    CpuService,
    Machine,
    ResourceSample,
    build_cpu,
)
from repro.sim.memory import MemoryAccount, MemorySample
from repro.sim.primitives import Gate, Request, Resource, Store
from repro.sim.sfs_cpu import SfsCpu, SfsTask

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuDiscipline",
    "CpuGroup",
    "build_cpu",
    "CpuService",
    "CpuTask",
    "Environment",
    "Event",
    "FairShareCpu",
    "Gate",
    "Machine",
    "MemoryAccount",
    "MemorySample",
    "Process",
    "Request",
    "Resource",
    "ResourceSample",
    "SfsCpu",
    "SfsTask",
    "Store",
    "Timeout",
    "waterfill",
]
