"""Discrete-event simulation substrate: kernel, primitives, CPU, memory."""

from repro.sim.engine import (
    CpuEngine,
    CpuEngineBase,
    CpuGroup,
    CpuTask,
    waterfill,
)
from repro.sim.fair_share import FairShareCpu
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.legacy_cpu import LegacyFairShareCpu
from repro.sim.machine import (
    CPU_ENGINES,
    CpuDiscipline,
    CpuService,
    Machine,
    ResourceSample,
    build_cpu,
)
from repro.sim.memory import MemoryAccount, MemorySample
from repro.sim.primitives import Gate, Request, Resource, Store
from repro.sim.sfs_cpu import SfsCpu, SfsTask

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU_ENGINES",
    "CpuDiscipline",
    "CpuEngine",
    "CpuEngineBase",
    "CpuGroup",
    "build_cpu",
    "CpuService",
    "CpuTask",
    "Environment",
    "Event",
    "FairShareCpu",
    "Gate",
    "LegacyFairShareCpu",
    "Machine",
    "MemoryAccount",
    "MemorySample",
    "Process",
    "Request",
    "Resource",
    "ResourceSample",
    "SfsCpu",
    "SfsTask",
    "Store",
    "Timeout",
    "waterfill",
]
