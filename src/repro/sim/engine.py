"""CPU-engine substrate shared by every CPU scheduling discipline.

A worker machine's CPU is modeled by a *CPU engine*: a service that accepts
units of work (:class:`CpuTask`) grouped into container cgroups
(:class:`CpuGroup`) and decides how fast each one runs.  The repo ships
three engines with one interface (:class:`CpuEngine`):

* :class:`repro.sim.fair_share.FairShareCpu` — two-level max-min fair
  processor sharing with incremental reallocation (the default).
* :class:`repro.sim.sfs_cpu.SfsCpu` — the SFS user-space discipline
  (per-core adaptive time slices).
* :class:`repro.sim.legacy_cpu.LegacyFairShareCpu` — the pre-refactor
  fair-share engine, kept verbatim as the perf-bench baseline and the
  reference implementation for equivalence tests.

:class:`CpuEngineBase` holds the scaffolding every engine repeats —
group bookkeeping, validation, utilization accounting — so concrete
engines only implement their scheduling policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.common.errors import SimulationError
from repro.common.units import TIME_EPSILON
from repro.sim.kernel import Environment, Event


class CpuTask:
    """One unit of computation being serviced by the CPU."""

    __slots__ = ("work_total", "remaining", "max_share", "group", "done",
                 "rate", "started_at", "finished_at", "label", "seq")

    def __init__(self, work: float, max_share: float, group: "CpuGroup",
                 done: Event, started_at: float, label: str) -> None:
        self.work_total = work
        self.remaining = work
        self.max_share = max_share
        self.group = group
        self.done = done
        self.rate = 0.0
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.label = label
        #: Global submission rank, set by engines that complete tasks via
        #: per-group scans: sorting candidates by ``seq`` reproduces the
        #: all-tasks (submission-ordered) completion order exactly.
        self.seq = 0

    def __repr__(self) -> str:
        return (f"<CpuTask {self.label} remaining={self.remaining:.3f} "
                f"rate={self.rate:.3f}>")


class CpuGroup:
    """A set of tasks sharing a cap (a container, or the uncapped host).

    The trailing underscore-prefixed slots are caches owned by the
    incremental fair-share engine (invalidated on any membership, cap or
    rate change); other engines simply never read them.
    """

    __slots__ = ("name", "cap", "tasks", "_seq",
                 "_demand_cache", "_alloc_cache", "_sorted_cache",
                 "_shares_cache", "_shares_sum", "_uniform_share",
                 "_ttf_cache", "_min_rate_cache", "_ttf_epoch", "_ushare")

    def __init__(self, name: str, cap: Optional[float]) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"group cap must be > 0, got {cap}")
        self.name = name
        self.cap = cap  # None = unbounded (host group)
        # Insertion-ordered on purpose: CpuTask hashes by identity, so a
        # set's iteration order would vary run-to-run and leak into float
        # accumulation and same-instant completion order (nondeterminism).
        self.tasks: Dict[CpuTask, None] = {}
        #: Creation rank within the owning engine; lets the incremental
        #: engine visit its *runnable* groups in creation order (the order
        #: the group-level waterfill is float-sensitive to) without
        #: scanning every group ever created.
        self._seq = 0
        self._demand_cache: Optional[float] = None
        self._alloc_cache: Optional[float] = None
        self._sorted_cache: Optional[List[CpuTask]] = None
        self._shares_cache: Optional[List[float]] = None
        self._shares_sum = 0.0
        self._uniform_share: Optional[float] = None
        self._ttf_cache: Optional[float] = None
        self._min_rate_cache: float = 0.0
        self._ttf_epoch = -1
        #: The common ``max_share`` of every current member, or ``None``
        #: once a differing share joins (poisoned until the group empties).
        #: Maintained by the incremental fair-share engine's mutation sites;
        #: lets reallocation skip the label sort outright, since uniform
        #: shares make the waterfill output uniform and therefore
        #: assignment-order independent.
        self._ushare: Optional[float] = None

    @property
    def demand(self) -> float:
        """Aggregate core demand of this group's runnable tasks."""
        total = sum(task.max_share for task in self.tasks)
        if self.cap is not None:
            total = min(total, self.cap)
        return total

    def __repr__(self) -> str:
        return f"<CpuGroup {self.name} cap={self.cap} tasks={len(self.tasks)}>"


def waterfill(capacity: float, demands: List[float]) -> List[float]:
    """Max-min fair allocation of *capacity* across entities with caps.

    Each entity i receives at most ``demands[i]``; leftover capacity is
    shared equally among unsatisfied entities (classic progressive filling).
    Returns the per-entity allocation; sums to min(capacity, sum(demands)).
    """
    n = len(demands)
    allocation = [0.0] * n
    if n == 0 or capacity <= 0:
        return allocation
    if capacity > TIME_EPSILON and sum(demands) <= capacity:
        # Under-subscribed: every entity is granted exactly its demand (the
        # general loop bounds each entity with a grant of ``demands[i]``),
        # so the result is the demand vector itself.
        return list(demands)
    first = demands[0]
    if first > 0.0 and all(d == first for d in demands):
        # Uniform demands (the common case: n tasks of max_share 1.0)
        # resolve in one round; the results are float-identical to the
        # general loop below (same grant/equal-split expressions).
        if capacity <= TIME_EPSILON:
            return allocation
        share = capacity / n
        if first <= share:
            return [first] * n
        return [share] * n
    remaining = capacity
    active = [i for i in range(n) if demands[i] > 0]
    while active and remaining > TIME_EPSILON:
        share = remaining / len(active)
        bounded = [i for i in active if demands[i] - allocation[i] <= share]
        if bounded:
            bounded_set = set(bounded)
            for i in bounded:
                grant = demands[i] - allocation[i]
                allocation[i] = demands[i]
                remaining -= grant
            active = [i for i in active if i not in bounded_set]
        else:
            for i in active:
                allocation[i] += share
            remaining = 0.0
    return allocation


@runtime_checkable
class CpuEngine(Protocol):
    """The interface a worker machine requires of its CPU service.

    All three engines (fair-share, SFS, legacy fair-share) satisfy it;
    :func:`repro.sim.machine.build_cpu` returns one.
    """

    HOST_GROUP: str
    env: Environment
    cores: float

    def create_group(self, name: str, cap: Optional[float]) -> CpuGroup: ...

    def remove_group(self, name: str) -> None: ...

    def group(self, name: str) -> CpuGroup: ...

    def has_group(self, name: str) -> bool: ...

    def set_group_cap(self, name: str, cap: Optional[float]) -> None: ...

    def abort_group_tasks(self, name: str) -> int: ...

    def submit(self, work: float, group: str = ...,
               max_share: float = ..., label: str = ...) -> Event: ...

    @property
    def active_tasks(self) -> int: ...

    def busy_core_ms(self) -> float: ...

    def current_rate(self) -> float: ...

    def utilization(self) -> float: ...

    def runnable_group_count(self) -> int: ...


class CpuEngineBase:
    """Group bookkeeping and accounting shared by the concrete engines.

    Subclasses implement the scheduling policy (``submit`` and friends);
    this base owns the group registry, the validation rules and the
    utilization arithmetic that were previously duplicated per engine.
    """

    HOST_GROUP = "host"

    def __init__(self, env: Environment, cores: float) -> None:
        self.env = env
        self.cores = cores
        self._groups: Dict[str, CpuGroup] = {
            self.HOST_GROUP: CpuGroup(self.HOST_GROUP, cap=None)}
        self._group_sequence = 0  # the host group holds rank 0
        self._task_sequence = 0
        self._busy_core_ms = 0.0

    # -- groups ----------------------------------------------------------------

    def _clamp_cap(self, cap: float) -> float:
        """Bound a non-None group cap; identity unless a subclass overrides."""
        return cap

    def create_group(self, name: str, cap: Optional[float]) -> CpuGroup:
        """Create a capped group (one per container)."""
        if name in self._groups:
            raise SimulationError(f"CPU group {name!r} already exists")
        if cap is not None:
            cap = self._clamp_cap(cap)
        group = CpuGroup(name, cap)
        self._group_sequence += 1
        group._seq = self._group_sequence
        self._groups[name] = group
        return group

    def remove_group(self, name: str) -> None:
        """Remove an (empty) group when its container is torn down."""
        if name == self.HOST_GROUP:
            raise SimulationError("cannot remove the host group")
        group = self._groups.pop(name, None)
        if group is None:
            raise SimulationError(f"unknown CPU group {name!r}")
        if group.tasks:
            raise SimulationError(
                f"CPU group {name!r} still has {len(group.tasks)} tasks")

    def group(self, name: str) -> CpuGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise SimulationError(f"unknown CPU group {name!r}") from None

    def has_group(self, name: str) -> bool:
        return name in self._groups

    # -- shared validation / helpers --------------------------------------------

    @staticmethod
    def _validate_work(work: float) -> None:
        if work < 0:
            raise ValueError(f"negative work: {work}")

    def _completed_event(self) -> Event:
        """A zero-work submission: completes via a zero-delay event."""
        done = self.env.event()
        done.succeed(0.0)
        return done

    # -- accounting --------------------------------------------------------------

    def current_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self.current_rate() / self.cores

    def runnable_group_count(self) -> int:
        """Groups with at least one runnable task (a telemetry probe)."""
        return sum(1 for group in self._groups.values() if group.tasks)
