"""Incremental two-level max-min fair (water-filling) CPU engine.

This is the substrate that makes the paper's latency effects emerge:

* The worker VM has ``cores`` physical cores.
* Every running computation is a :class:`CpuTask` with a remaining amount of
  *work* in core-milliseconds and a per-task cap (``max_share``, normally 1.0
  because one thread can use at most one core).
* Tasks belong to a :class:`CpuGroup` (a container, or the host group for
  platform work).  A group can be capped (``cpuset_cpus`` / ``cpu_count`` in
  the paper's prototype).
* Capacity is divided by **two-level water-filling**: max-min fairness across
  groups (each group's demand is the sum of its tasks' caps, bounded by the
  group cap), then max-min fairness across the tasks inside each group.

This approximates Linux CFS with cgroup cpusets closely enough to reproduce
the paper's observations: e.g. when Vanilla launches hundreds of containers,
platform scheduling work and cold-start work contend with function execution
and *everything* slows down proportionally; whereas FaaSBatch's single
container receives the same aggregate core share as hundreds of Monopoly
containers would for the same work (Fig. 1's "Sharing ≈ Monopoly").

The model is work-conserving: as long as total demand >= capacity, exactly
``cores`` core-ms of work complete per millisecond.

Incremental reallocation
------------------------
The pre-refactor engine (kept verbatim in :mod:`repro.sim.legacy_cpu`)
re-sorted and re-waterfilled *every* group's tasks on *every* submit and
wake-up — O(total tasks) per event.  This engine produces bit-identical
schedules with three structural savings:

1. **Dirty-group tracking.**  Group-level water-filling is cheap (one float
   per group) and always recomputed, but the task-level sort + waterfill
   inside a group is skipped whenever the group's membership is unchanged
   *and* its group-level allocation came out exactly equal — ``waterfill``
   is a deterministic pure function, so the cached task rates are the very
   floats a recompute would produce.
2. **Coalesced reallocation.**  The K same-timestamp submits produced by a
   batch expansion each mark their group dirty and schedule a single
   *urgent flush* event at the current instant (``Environment.defer``).
   The kernel guarantees the flush runs before the clock advances and
   before any normal-priority event at that instant, so one reallocation
   pass replaces K — and nothing can observe the not-yet-filled rates
   (synchronous readers go through :meth:`_flush_if_pending`).
3. **Lazy wake-up timers.**  Re-arming cancels the superseded timer
   (:meth:`repro.sim.kernel.Timeout.cancel`) instead of leaving it to fire
   as a stale no-op, keeping the event heap proportional to live work.
4. **Runnable-group index.**  Keep-alive containers accumulate thousands
   of empty groups over a run; reallocation and wake-up arming visit only
   the non-empty ones (tracked incrementally, iterated in creation order
   because the group-level waterfill's float results are order-sensitive).
5. **Persistent demand vector.**  The group-level demand vector is kept
   alive across recomputes — rebuilt only when the runnable-group set
   changes, patched in place for dirty groups otherwise — and a recompute
   with no dirty groups returns immediately (the vector is unchanged and
   waterfill is pure, so every group would hit its alloc-cache skip).

The finished-task scan is also elided when provably empty, two ways:

* ``_needs_scan``: rates only ever *decrease* between scans on the submit
  path (adding demand never raises a pre-existing task's rate), so a task
  that survived the last scan cannot have crossed the completion threshold
  until work is actually settled (``dt > 0``) or a
  completion/cap-change/abort frees capacity.
* Armed horizon: every rate change immediately re-arms the wake-up timer,
  so rates are constant between armings and each task's time-to-finish
  shrinks exactly with elapsed time.  The arming snapshots the minimum
  time-to-finish; until elapsed time approaches it (minus a slack that
  dominates the predicate thresholds and float drift) the scan cannot find
  anything.  The wake-up itself fires exactly at that horizon, so real
  completions always get a full scan.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional, Set

from repro.common.errors import SimulationError
from repro.common.units import TIME_EPSILON
from repro.sim.engine import CpuEngineBase, CpuGroup, CpuTask, waterfill
from repro.sim.kernel import Environment, Event, Timeout


def _by_label(task: CpuTask) -> str:
    return task.label


#: Sentinel stored in ``_sorted_cache`` by the uniform-share fast path: a
#: non-None marker meaning "shares-sum cache valid, no sorted order needed".
#: Groups only leave the uniform path through a mutation that re-Nones the
#: cache, so the marker is never read as a real task list.
_UNIFORM: List[CpuTask] = []


class FairShareCpu(CpuEngineBase):
    """The two-level processor-sharing CPU of one worker machine.

    Public operations:

    * :meth:`create_group` / :meth:`remove_group` — container cgroups.
    * :meth:`submit` — run ``work`` core-ms in a group; returns an event that
      triggers when the work completes.
    * :attr:`utilization` / :meth:`busy_core_ms` — accounting for the paper's
      CPU-cost figures (13c / 14c).

    Scheduling decisions are bit-identical to the pre-refactor engine
    (:class:`repro.sim.legacy_cpu.LegacyFairShareCpu`); see the module
    docstring for how reallocation work is elided without changing them.
    """

    def __init__(self, env: Environment, cores: float) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be > 0, got {cores}")
        super().__init__(env, float(cores))
        self._tasks: Dict[CpuTask, None] = {}
        self._last_update = env.now
        self._wake_version = 0
        self._wake_timer: Optional[Timeout] = None
        #: Groups whose membership/cap changed since the last rate recompute.
        self._dirty: Set[CpuGroup] = set()
        #: Runnable (non-empty) groups in creation order — the only groups
        #: reallocation and wake-up arming ever need to visit.  Keep-alive
        #: containers leave thousands of *empty* groups in ``_groups``;
        #: scanning them per event is the legacy engine's other O(all
        #: groups) cost.
        self._active: List[CpuGroup] = []
        self._active_set: Set[CpuGroup] = set()
        #: Creation ranks parallel to ``_active``; lets membership updates
        #: and dirty-demand patching locate a group's slot by bisection
        #: instead of an O(groups) identity scan.
        self._active_seqs: List[int] = []
        #: Demand vector parallel to ``_active``, reused across recomputes;
        #: rebuilt only when the runnable-group membership changes, patched
        #: in place for dirty groups otherwise (no per-event list churn).
        self._demands: List[float] = []
        self._membership_changed = False
        #: Copy of the last group-level allocation vector over an unchanged
        #: ``_active``; when a recompute reproduces it exactly (C-level list
        #: compare), every non-dirty group would hit its alloc-cache skip,
        #: so only the dirty groups are visited.  ``None`` after any
        #: membership change (slots shifted, the compare would be
        #: meaningless).
        self._prev_alloc: Optional[List[float]] = None
        #: True while a coalescing flush event is scheduled at `now`.
        self._flush_scheduled = False
        #: Invalidates in-flight flush events superseded by a full realloc.
        self._flush_token = 0
        #: True when the next submit must run the finished-task scan (work
        #: was settled, or rates may have risen since the last scan).
        self._needs_scan = True
        #: Bumped on every dt>0 settle; versions the per-group ttf caches.
        self._settle_epoch = 0
        #: Snapshot of (time, min time-to-finish, min positive rate) taken
        #: every time the wake-up is armed; lets the finished-task scan be
        #: elided while provably empty (see _complete_finished).
        self._armed_at = env.now
        self._armed_ttf = -math.inf
        self._armed_min_rate = math.inf

    # -- groups ----------------------------------------------------------------

    def _clamp_cap(self, cap: float) -> float:
        return min(cap, self.cores)

    def set_group_cap(self, name: str, cap: Optional[float]) -> None:
        """Re-cap *name* at runtime (the straggler-slowdown fault hook).

        Settles elapsed work at the old rates first, then reallocates, so a
        mid-flight cap change charges exactly the work done before it.
        """
        if cap is not None:
            if cap <= 0:
                raise ValueError(f"group cap must be > 0, got {cap}")
            cap = min(cap, self.cores)
        group = self.group(name)
        self._settle_elapsed()
        group.cap = cap
        self._invalidate_group(group)
        # Raising a cap can raise rates, so the next scan cannot be elided.
        self._reallocate_and_arm(raises_rates=True)

    def abort_group_tasks(self, name: str) -> int:
        """Drop every runnable task of *name* without firing its done event.

        Used by container-crash teardown: the processes waiting on those
        events were interrupted (and detached from them), so the events must
        *not* fire — the work simply vanishes.  Returns the number dropped.
        """
        group = self.group(name)
        if not group.tasks:
            return 0
        self._settle_elapsed()
        dropped = 0
        for task in list(group.tasks):
            self._tasks.pop(task, None)
            group.tasks.pop(task, None)
            task.rate = 0.0
            dropped += 1
        self._invalidate_group(group)
        # Freed capacity can raise surviving rates: keep the scan armed.
        self._reallocate_and_arm(raises_rates=True)
        return dropped

    # -- work submission ---------------------------------------------------------

    def submit(self, work: float, group: str = CpuEngineBase.HOST_GROUP,
               max_share: float = 1.0, label: str = "") -> Event:
        """Execute *work* core-ms in *group*; the event fires on completion.

        ``max_share`` caps how many cores this task can use at once (1.0 for
        a single thread).  Zero work completes after a zero-delay event.
        """
        self._validate_work(work)
        if max_share <= 0:
            raise ValueError(f"max_share must be > 0, got {max_share}")
        if work == 0.0:
            return self._completed_event()
        self._settle_elapsed()
        self._task_sequence += 1
        task = CpuTask(work=work, max_share=max_share,
                       group=self.group(group), done=self.env.event(),
                       started_at=self.env.now,
                       label=label or f"task-{self._task_sequence}")
        task.seq = self._task_sequence
        group_obj = task.group
        gtasks = group_obj.tasks
        gtasks[task] = None
        if len(gtasks) == 1:
            group_obj._ushare = max_share
        elif max_share != group_obj._ushare:
            group_obj._ushare = None
        self._tasks[task] = None
        self._invalidate_group(group_obj)
        if self._needs_scan or work <= TIME_EPSILON:
            # The scan may complete tasks (or this sub-epsilon one): run the
            # full reallocation eagerly, exactly like the legacy engine.
            # A sub-epsilon task postdates the armed horizon, so the scan
            # that must complete it cannot be elided.
            self._reallocate_and_arm(force_scan=work <= TIME_EPSILON)
        else:
            # Fast path: the scan is provably empty and rates only fall, so
            # defer one coalesced recompute to the end of this instant.
            self._schedule_flush()
        return task.done

    # -- accounting ----------------------------------------------------------------

    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def busy_core_ms(self) -> float:
        """Total core-milliseconds of work completed so far."""
        self._settle_elapsed()
        return self._busy_core_ms

    def current_rate(self) -> float:
        """Aggregate core usage right now (cores being consumed)."""
        self._flush_if_pending()
        return sum(task.rate for task in self._tasks)

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return self.current_rate() / self.cores

    # -- internals ----------------------------------------------------------------

    def _settle_elapsed(self) -> None:
        """Deduct work done since the last update at the current rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        busy = self._busy_core_ms
        for task in self._tasks:
            rate = task.rate
            if rate != 0.0:
                # Skipping the zero-rate write is exact: step would be 0.0
                # and ``x - 0.0 == x`` for every float (rates are >= 0).
                step = rate * dt
                task.remaining -= step
                busy += step
        self._busy_core_ms = busy
        self._last_update = now
        # Remaining-work changed: finished-task scans and cached per-group
        # time-to-finish minima are stale from here on.
        self._needs_scan = True
        self._settle_epoch += 1

    def _invalidate_group(self, group: CpuGroup) -> None:
        group._demand_cache = None
        group._sorted_cache = None
        group._ttf_cache = None
        self._dirty.add(group)
        # Called on every membership change, so it also maintains the
        # runnable-group index (sorted by creation rank to preserve the
        # legacy engine's float-sensitive waterfill order).
        if group.tasks:
            if group not in self._active_set:
                self._active_set.add(group)
                seqs = self._active_seqs
                pos = bisect.bisect_left(seqs, group._seq)
                seqs.insert(pos, group._seq)
                self._active.insert(pos, group)
                # Open the matching demand slot in place (filled by the
                # dirty patch — this group is always dirty here), so the
                # recompute never rebuilds the whole vector.
                self._demands.insert(pos, 0.0)
                self._membership_changed = True
        elif group in self._active_set:
            self._active_set.discard(group)
            seqs = self._active_seqs
            pos = bisect.bisect_left(seqs, group._seq)
            del seqs[pos]
            del self._active[pos]
            del self._demands[pos]
            self._membership_changed = True

    @staticmethod
    def _group_demand(group: CpuGroup) -> float:
        """``group.demand`` with the O(tasks) sum elided for uniform shares.

        A sequential sum of *n* equal floats is reproduced exactly by
        ``sum([u] * n)`` (same left-to-right chain), and for the common
        ``max_share == 1.0`` case every partial sum is an exact small
        integer, so ``float(n)`` is the identical result.
        """
        u = group._ushare
        if u is None:
            return group.demand
        n = len(group.tasks)
        total = float(n) if u == 1.0 else sum([u] * n)
        cap = group.cap
        if cap is not None and cap < total:
            total = cap
        return total

    def _time_resolution(self) -> float:
        """Smallest representable clock advance at the current sim time.

        At large clock values (hours of simulated milliseconds) a wake-up
        delay below one ulp of ``now`` would not advance time at all and
        the kernel would spin forever; any task whose time-to-finish is
        below this resolution is complete for all observable purposes.
        """
        return max(TIME_EPSILON, 4.0 * math.ulp(self.env.now))

    def _schedule_flush(self) -> None:
        """Arrange one reallocation at the end of the current instant."""
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        token = self._flush_token
        self.env.defer(lambda: self._on_flush(token))

    def _on_flush(self, token: int) -> None:
        if token != self._flush_token:
            return  # superseded by a full reallocation in the meantime
        self._flush_now()

    def _flush_if_pending(self) -> None:
        """Recompute rates immediately for a synchronous observer."""
        if self._flush_scheduled:
            self._flush_now()

    def _flush_now(self) -> None:
        self._flush_token += 1
        self._flush_scheduled = False
        self._recompute_rates()
        self._arm_wakeup()

    def _reallocate_and_arm(self, raises_rates: bool = False,
                            force_scan: bool = False) -> None:
        """Scan for finished tasks, recompute rates, arm the next wake-up.

        ``raises_rates`` marks triggers (cap raise, abort) after which task
        rates may *increase*, so the elided-scan invariant does not hold and
        the next submit must scan again.  ``force_scan`` disables the
        armed-horizon scan elision (needed when a task was added that the
        armed snapshot does not cover).
        """
        self._flush_token += 1  # absorb any pending coalesced flush
        self._flush_scheduled = False
        finished = self._complete_finished(force=force_scan)
        self._recompute_rates()
        self._arm_wakeup()
        # Completions free capacity (rates may rise): keep scanning until a
        # scan comes up empty after a rates-only-fall stretch.
        self._needs_scan = bool(finished) or raises_rates

    def _complete_finished(self, force: bool = False) -> List[CpuTask]:
        if not force:
            # Rates are constant between wake-up armings (every rate change
            # immediately re-arms), so each task's time-to-finish shrinks
            # exactly with elapsed time.  Until the armed minimum is within
            # ``slack`` of being reached, no surviving task can satisfy the
            # completion predicate below and the O(tasks) scan is provably
            # empty.  ``slack`` dominates both predicate thresholds — the
            # clock resolution and the epsilon-remaining band (whose width
            # in elapsed time is TIME_EPSILON / slowest rate) — plus an
            # absolute margin orders of magnitude above float drift.
            elapsed = self.env.now - self._armed_at
            slack = max(self._time_resolution(),
                        TIME_EPSILON / self._armed_min_rate) + 1e-6
            if elapsed < self._armed_ttf - slack:
                return []
            # Per-group refinement of the same invariant: every active
            # group's ttf/min-rate caches were refreshed by the arming and
            # rates are unchanged since, so a group whose armed minimum
            # time-to-finish exceeds elapsed by more than its own slack
            # cannot contain a finishing task — only groups near the
            # horizon are scanned.  Within one group rates are either all
            # positive or all zero (waterfill grants every positive-demand
            # task a positive share whenever the group's allocation is),
            # so an infinite min-rate marks the all-zero case, which is
            # scanned unconditionally.  Candidates are re-ordered by
            # global submission rank, reproducing the all-tasks scan's
            # completion order exactly.
            resolution = self._time_resolution()
            eps = TIME_EPSILON
            finished = []
            for group in self._active:
                # The skip needs both caches valid as of the last arming: a
                # None ttf (group invalidated since) or a non-positive /
                # infinite min-rate (all-zero rates, or a cache never
                # refreshed) disables it — scanning a group unnecessarily
                # is always safe.
                ttf = group._ttf_cache
                min_rate = group._min_rate_cache
                if ttf is not None and 0.0 < min_rate < math.inf:
                    group_slack = max(resolution, eps / min_rate) + 1e-6
                    if elapsed < ttf - group_slack:
                        continue
                for t in group.tasks:
                    if t.remaining <= eps or (
                            t.rate > 0.0
                            and t.remaining / t.rate <= resolution):
                        finished.append(t)
            if len(finished) > 1:
                finished.sort(key=lambda t: t.seq)
            for task in finished:
                self._tasks.pop(task, None)
                task.group.tasks.pop(task, None)
                self._invalidate_group(task.group)
                task.rate = 0.0
                task.remaining = 0.0
                task.finished_at = self.env.now
                task.done.succeed(self.env.now - task.started_at)
            return finished
        resolution = self._time_resolution()
        eps = TIME_EPSILON
        finished = [t for t in self._tasks
                    if t.remaining <= eps
                    or (t.rate > 0.0 and t.remaining / t.rate <= resolution)]
        for task in finished:
            self._tasks.pop(task, None)
            task.group.tasks.pop(task, None)
            self._invalidate_group(task.group)
            task.rate = 0.0
            task.remaining = 0.0
            task.finished_at = self.env.now
            task.done.succeed(self.env.now - task.started_at)
        return finished

    def _recompute_rates(self) -> None:
        # Group-level water-filling always runs (one float per group, and
        # float-identical allocations require the full demand vector in the
        # groups' original creation order); the expensive per-group task
        # sort + waterfill only runs for groups that changed.
        dirty = self._dirty
        if not dirty:
            # No membership or cap change since the last recompute: the
            # demand vector is unchanged, waterfill is a pure function, and
            # every group below would hit its alloc-cache skip — the whole
            # pass is a provable no-op (spurious wake-ups land here).
            return
        groups = self._active  # non-empty groups, creation order
        if self._membership_changed:
            self._membership_changed = False
            self._prev_alloc = None
        # The demand vector tracks membership structurally (slots opened and
        # closed by _invalidate_group), so only dirty groups can hold a
        # stale value: patch them in place, located by bisecting the
        # parallel creation-rank list.  Each patch writes an independent
        # slot — the set's iteration order cannot affect the result.
        demands = self._demands
        seqs = self._active_seqs
        active_set = self._active_set
        for group in dirty:
            if group._demand_cache is None and group in active_set:
                demand = self._group_demand(group)
                group._demand_cache = demand
                demands[bisect.bisect_left(seqs, group._seq)] = demand
        if demands:
            first_demand = demands[0]
            uniform = demands.count(first_demand) == len(demands)
        else:
            first_demand = 0.0
            uniform = True
        cores = self.cores
        if uniform and demands and first_demand > 0.0 \
                and cores > TIME_EPSILON:
            # At saturation the demand vector is usually uniform (one
            # 1.0-demand group per container).  Uniformity was tracked for
            # free while building the vector, so replicate waterfill's
            # under-subscribed and uniform branches here — byte-identical
            # expressions — without its extra O(groups) uniformity pass.
            if sum(demands) <= cores:
                group_alloc = demands  # granted exactly (read-only alias)
            else:
                share = cores / len(demands)
                if first_demand <= share:
                    group_alloc = [first_demand] * len(demands)
                else:
                    group_alloc = [share] * len(demands)
        else:
            group_alloc = waterfill(cores, demands)
        epoch = self._settle_epoch
        prev_alloc = self._prev_alloc
        if prev_alloc is not None and group_alloc == prev_alloc:
            # Identical allocation vector over identical membership: every
            # non-dirty group would skip below, so visit only the dirty
            # ones (independent slots — the set's order cannot matter).
            seqs = self._active_seqs
            active_set = self._active_set
            pairs = [(g, group_alloc[bisect.bisect_left(seqs, g._seq)])
                     for g in dirty if g in active_set]
        else:
            self._prev_alloc = list(group_alloc)
            pairs = zip(groups, group_alloc)
        for group, alloc in pairs:
            if group not in dirty and alloc == group._alloc_cache:
                continue  # same inputs ⇒ waterfill would return the same rates
            if len(group.tasks) == 1:
                # One task (every Vanilla/Kraken container): the whole
                # sort + waterfill collapses to ``waterfill(alloc, [d])``
                # evaluated by hand — under-subscribed grants d, the
                # over-subscribed single-entity share is alloc itself.
                (task,) = group.tasks
                d = task.max_share
                if alloc > TIME_EPSILON:
                    rate = d if d <= alloc else alloc
                else:
                    rate = 0.0
                task.rate = rate
                if rate > 0.0:
                    ttf = task.remaining / rate
                    group._min_rate_cache = rate
                else:
                    ttf = math.inf
                    group._min_rate_cache = math.inf
                group._alloc_cache = alloc
                group._ttf_cache = ttf
                group._ttf_epoch = epoch
                continue
            u = group._ushare
            if u is not None:
                # Uniform shares: the task-level waterfill output is one
                # common rate, so the label-sorted assignment order is
                # immaterial and the sort is skipped outright.  The branch
                # mirrors the cached-uniform branch below expression for
                # expression; ``min(remaining)/rate`` equals the per-task
                # ``min(remaining/rate)`` exactly because division by a
                # positive float is monotone.
                gtasks = group.tasks
                if group._sorted_cache is None:
                    n = len(gtasks)
                    ssum = float(n) if u == 1.0 else sum([u] * n)
                    group._shares_sum = ssum
                    group._sorted_cache = _UNIFORM
                    group._shares_cache = None
                    group._uniform_share = u
                else:
                    ssum = group._shares_sum
                if alloc <= 0:
                    rate = 0.0
                elif alloc > TIME_EPSILON and ssum <= alloc:
                    rate = u
                elif alloc <= TIME_EPSILON:
                    rate = 0.0
                else:
                    share = alloc / len(gtasks)
                    rate = u if u <= share else share
                if rate > 0.0:
                    lowest = math.inf
                    for task in gtasks:
                        task.rate = rate
                        remaining = task.remaining
                        if remaining < lowest:
                            lowest = remaining
                    ttf = lowest / rate
                    group._min_rate_cache = rate
                else:
                    for task in gtasks:
                        task.rate = 0.0
                    ttf = math.inf
                    group._min_rate_cache = math.inf
                group._alloc_cache = alloc
                group._ttf_cache = ttf
                group._ttf_epoch = epoch
                continue
            tasks = group._sorted_cache
            if tasks is None:
                # Rebuild the membership-keyed caches together: the task
                # order, their shares vector, its sum, and (when the shares
                # are uniform-positive, e.g. the host group's 1.0-share
                # cold-start tasks) the common share — so repeat recomputes
                # with a changed alloc skip waterfill's O(tasks) scans.
                tasks = sorted(group.tasks, key=_by_label)
                group._sorted_cache = tasks
                shares = [t.max_share for t in tasks]
                group._shares_cache = shares
                group._shares_sum = sum(shares)
                first_share = shares[0]
                if first_share > 0.0 \
                        and all(s == first_share for s in shares):
                    group._uniform_share = first_share
                else:
                    group._uniform_share = None
            else:
                shares = group._shares_cache
            common = group._uniform_share
            if common is None:
                task_alloc = waterfill(alloc, shares)
            elif alloc <= 0:
                task_alloc = [0.0] * len(shares)
            elif alloc > TIME_EPSILON and group._shares_sum <= alloc:
                task_alloc = shares  # everyone granted (read-only alias)
            elif alloc <= TIME_EPSILON:
                task_alloc = [0.0] * len(shares)
            else:
                # waterfill's uniform over-subscribed branch, verbatim.
                share = alloc / len(shares)
                if common <= share:
                    task_alloc = [common] * len(shares)
                else:
                    task_alloc = [share] * len(shares)
            # Fused min-time-to-finish: the rates are final for this
            # settle epoch, so computing the group's wake-up horizon here
            # saves _arm_wakeup a second pass over the same tasks (min is
            # order-independent, so the cached value is exact).
            ttf = math.inf
            slowest = math.inf
            for task, rate in zip(tasks, task_alloc):
                task.rate = rate
                if rate > 0.0:
                    if rate < slowest:
                        slowest = rate
                    candidate = task.remaining / rate
                    if candidate < ttf:
                        ttf = candidate
            group._alloc_cache = alloc
            group._ttf_cache = ttf
            group._min_rate_cache = slowest
            group._ttf_epoch = epoch
        dirty.clear()

    def _arm_wakeup(self) -> None:
        self._wake_version += 1
        version = self._wake_version
        epoch = self._settle_epoch
        horizon = math.inf
        min_rate = math.inf
        for group in self._active:
            if group._ttf_epoch != epoch:
                ttf = math.inf
                slowest = math.inf
                for task in group.tasks:
                    rate = task.rate
                    if rate > 0:
                        if rate < slowest:
                            slowest = rate
                        candidate = task.remaining / rate
                        if candidate < ttf:
                            ttf = candidate
                group._ttf_cache = ttf
                group._min_rate_cache = slowest
                group._ttf_epoch = epoch
            else:
                ttf = group._ttf_cache
            if ttf < horizon:
                horizon = ttf
            if group._min_rate_cache < min_rate:
                min_rate = group._min_rate_cache
        self._armed_at = self.env.now
        self._armed_ttf = horizon
        self._armed_min_rate = min_rate
        if math.isinf(horizon):
            if self._tasks:
                raise SimulationError(
                    "CPU starvation: runnable tasks but zero allocation")
            self._cancel_wake_timer()
            return
        # Never arm below the clock's resolution: a delay smaller than one
        # ulp of `now` would not advance time (see _time_resolution).
        horizon = max(horizon, self._time_resolution())
        self._cancel_wake_timer()
        timer = self.env.timeout(horizon)
        self._wake_timer = timer
        assert timer.callbacks is not None
        timer.callbacks.append(self._wake_callback(version))

    def _wake_callback(self, version: int) -> Callable[[Event], None]:
        return lambda _event: self._on_wakeup(version)

    def _cancel_wake_timer(self) -> None:
        if self._wake_timer is not None:
            self._wake_timer.cancel()
            self._wake_timer = None

    def _on_wakeup(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer allocation
        self._wake_timer = None
        self._settle_elapsed()
        self._reallocate_and_arm()
