"""Per-function dispatch-window queues on the gateway event loop.

The FaaSBatch Invoke Mapper, applied to live requests: the first request
for a function opens a window timer; requests arriving inside the window
join its pending list; when the timer fires the whole list is flushed as
one group to the platform (one container, inline-parallel threads).

Batching happens *here*, on the asyncio loop, not in the platform's
dispatcher thread — the gateway calls
:meth:`repro.local.LocalPlatform.submit_group`, which skips the
platform's own window (the grouping decision is already made) but shares
its warm pool, retries, timeouts and accounting.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.windowing import WindowPolicy


@dataclass
class PendingRequest:
    """One live request parked in (or dispatched from) a window queue."""

    request_id: str
    function: str
    payload: Any
    future: "asyncio.Future[Any]"
    enqueued_at: float
    #: Dispatch mode the degradation monitor chose ("batch" | "vanilla").
    mode: str = "batch"
    #: Wall-clock the group was flushed to the platform (loop time).
    dispatched_at: Optional[float] = None


#: Callback receiving ``(function, [PendingRequest])`` when a window closes.
DispatchFn = Callable[[str, List[PendingRequest]], None]


@dataclass
class FunctionBatcher:
    """One function's dispatch-window queue (event-loop confined)."""

    function: str
    window_seconds: float
    dispatch: DispatchFn
    loop: asyncio.AbstractEventLoop
    #: Optional shared window-sizing policy (see
    #: :mod:`repro.core.windowing`).  ``None`` keeps the historical
    #: constant ``window_seconds``; with a policy, each arrival is
    #: observed (keyed by function name) and the window opening now is
    #: sized by ``policy.window_ms(function)``.  The same policy object is
    #: shared across all of a gateway's batchers, mirroring how the
    #: simulator shares one policy across windows.
    policy: Optional[WindowPolicy] = None
    pending: List[PendingRequest] = field(default_factory=list)
    windows_flushed: int = 0
    _timer: Optional[asyncio.TimerHandle] = None

    @property
    def depth(self) -> int:
        return len(self.pending)

    def current_window_seconds(self) -> float:
        """Length of the window that would open now (policy-aware)."""
        if self.policy is None:
            return self.window_seconds
        return self.policy.window_ms(self.function) / 1000.0

    def enqueue(self, request: PendingRequest) -> None:
        """Park *request*; the first arrival opens the window timer."""
        if self.policy is not None:
            self.policy.observe_arrival(self.function,
                                        self.loop.time() * 1000.0)
        self.pending.append(request)
        if self._timer is None:
            self._timer = self.loop.call_later(self.current_window_seconds(),
                                               self.flush)

    def evict_oldest(self) -> PendingRequest:
        """Drop the head of the queue (oldest-first shedding)."""
        victim = self.pending.pop(0)
        if not self.pending and self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return victim

    def flush(self) -> None:
        """Close the window: hand every pending request to ``dispatch``."""
        self._timer = None
        if not self.pending:
            return
        batch, self.pending = self.pending, []
        self.windows_flushed += 1
        self.dispatch(self.function, batch)

    def close(self) -> None:
        """Cancel the timer and flush whatever is still parked."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.flush()
