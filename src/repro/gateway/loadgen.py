"""Seeded open-loop load generation against the gateway.

**Open loop** is the property that matters: arrivals follow the seeded
schedule regardless of how the server is doing, exactly like real users.
A closed-loop driver (fire, wait, fire) self-throttles under overload
and hides every queueing pathology the admission layer exists to handle.

Two transports share one schedule format:

* ``inproc`` — drives :meth:`Gateway.invoke` directly as coroutines on
  the event loop.  No sockets, no serialisation: this is how the bench
  sustains tens of thousands of RPS on one machine.
* ``http``   — a minimal stdlib HTTP/1.1 client over a pool of
  keep-alive connections, exercising the full wire path.

Results roll up into a ``gateway_cells`` bench row (schema v4) and a
record stream (``gateway-cell`` / ``gateway-cdf`` / ``gateway-series`` /
``gateway-flip``) that :mod:`repro.obs.report` renders as per-policy
latency CDFs and goodput-over-time panels.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.gateway.server import Gateway, GatewayServer

_ARRIVALS = ("poisson", "uniform")

DEFAULT_MIX: Mapping[str, float] = {"io": 0.6, "echo": 0.3, "fib": 0.1}


@dataclass(frozen=True)
class LoadgenConfig:
    """One load cell: rate, duration, mix — all derived from one seed."""

    rps: float
    duration_seconds: float
    seed: int = 13
    arrival: str = "poisson"
    mix: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX))
    #: Goodput-over-time bucketing for the report series.
    bucket_seconds: float = 0.25
    #: HTTP transport: size of the keep-alive connection pool.
    max_connections: int = 32

    def __post_init__(self) -> None:
        if self.rps <= 0:
            raise ConfigurationError(f"rps must be > 0, got {self.rps}")
        if self.duration_seconds <= 0:
            raise ConfigurationError(
                f"duration_seconds must be > 0, got {self.duration_seconds}")
        if self.arrival not in _ARRIVALS:
            raise ConfigurationError(
                f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}")
        if not self.mix or any(w <= 0 for w in self.mix.values()):
            raise ConfigurationError("mix needs positive weights")
        if self.bucket_seconds <= 0:
            raise ConfigurationError(
                f"bucket_seconds must be > 0, got {self.bucket_seconds}")
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {self.max_connections}")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which function, what payload."""

    offset_seconds: float
    function: str
    payload: Any


def _payload_for(function: str, rng: random.Random) -> Any:
    if function == "echo":
        return {"n": rng.randrange(1000)}
    if function == "sleep":
        return {"ms": round(rng.uniform(0.5, 2.0), 3)}
    if function == "fib":
        return {"n": rng.randrange(150, 400)}
    if function == "io":
        return {"key": f"k{rng.randrange(64)}"}
    return None


def build_schedule(config: LoadgenConfig,
                   start_offset_seconds: float = 0.0) -> List[Arrival]:
    """The full arrival schedule — a pure function of the config."""
    rng = random.Random(config.seed)
    functions = sorted(config.mix)
    weights = [config.mix[name] for name in functions]
    mean_gap = 1.0 / config.rps
    arrivals: List[Arrival] = []
    now = 0.0
    while True:
        if config.arrival == "poisson":
            now += rng.expovariate(config.rps)
        else:
            now += mean_gap
        if now >= config.duration_seconds:
            break
        [function] = rng.choices(functions, weights=weights)
        arrivals.append(Arrival(now + start_offset_seconds, function,
                                _payload_for(function, rng)))
    return arrivals


def build_phased_schedule(phases: List[LoadgenConfig]) -> List[Arrival]:
    """Concatenate per-phase schedules back to back.

    Traffic that *changes shape* mid-run is what exercises the
    degradation monitor: e.g. an io-heavy phase (batching wins), an
    echo-only phase (the window is pure tax → flip to vanilla), then
    io again (probes rediscover the batching edge → flip back).
    """
    if not phases:
        raise ConfigurationError("at least one phase required")
    arrivals: List[Arrival] = []
    offset = 0.0
    for phase in phases:
        arrivals.extend(build_schedule(phase, start_offset_seconds=offset))
        offset += phase.duration_seconds
    return arrivals


@dataclass
class RequestSample:
    """Measured outcome of one fired request."""

    offset_seconds: float
    lateness_ms: float
    status: int
    latency_ms: float
    mode: Optional[str]


class LoadResult:
    """All samples of one cell plus the gateway's own counters."""

    def __init__(self, label: str, policy: str, transport: str,
                 config: LoadgenConfig,
                 samples: List[RequestSample],
                 wall_seconds: float,
                 gateway_stats: dict) -> None:
        self.label = label
        self.policy = policy
        self.transport = transport
        self.config = config
        self.samples = samples
        self.wall_seconds = wall_seconds
        self.gateway_stats = gateway_stats

    # -- aggregation -------------------------------------------------------------

    def _ok(self) -> List[RequestSample]:
        return [s for s in self.samples if s.status == 200]

    @staticmethod
    def _latency_summary(latencies: List[float]) -> dict:
        if not latencies:
            return {"count": 0}
        ordered = sorted(latencies)

        def pct(q: float) -> float:
            rank = max(1, -(-len(ordered) * q // 100))
            return round(ordered[int(rank) - 1], 3)

        return {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 3),
            "p50": pct(50), "p95": pct(95), "p99": pct(99),
            "max": round(ordered[-1], 3),
        }

    def cell(self) -> dict:
        """The ``gateway_cells`` bench row for this run."""
        ok = self._ok()
        shed = sum(1 for s in self.samples if s.status == 429)
        timeouts = sum(1 for s in self.samples if s.status == 504)
        errors = sum(1 for s in self.samples
                     if s.status not in (200, 429, 504))
        requests = len(self.samples)
        wall = max(self.wall_seconds, 1e-9)
        degradation = self.gateway_stats.get("degradation", {})
        batches = self.gateway_stats.get("batches_dispatched", 0)
        batched = self.gateway_stats.get("batched_requests", 0)
        return {
            "cell": self.label,
            "policy": self.policy,
            "transport": self.transport,
            "config": {
                "rps": self.config.rps,
                "duration_s": self.config.duration_seconds,
                "seed": self.config.seed,
                "arrival": self.config.arrival,
                "mix": dict(sorted(self.config.mix.items())),
            },
            "offered_rps": round(self.config.rps, 3),
            "requests": requests,
            "completed": len(ok),
            "shed": shed,
            "timeouts": timeouts,
            "errors": errors,
            "achieved_rps": round(requests / wall, 3),
            "goodput_rps": round(len(ok) / wall, 3),
            "goodput_ratio": (round(len(ok) / requests, 6)
                              if requests else 0.0),
            "latency_ms": self._latency_summary(
                [s.latency_ms for s in ok]),
            "lateness_ms": self._latency_summary(
                [s.lateness_ms for s in self.samples]),
            "mode_flips": list(degradation.get("flips", [])),
            "final_mode": degradation.get("mode"),
            "batches_dispatched": batches,
            "mean_batch_size": (round(batched / batches, 3)
                                if batches else 0.0),
        }

    def cdf_points(self, max_points: int = 128) -> List[List[float]]:
        """Downsampled empirical CDF of successful-response latency."""
        ordered = sorted(s.latency_ms for s in self._ok())
        if not ordered:
            return []
        n = len(ordered)
        step = max(1, n // max_points)
        points = [[round(ordered[i], 3), round((i + 1) / n, 5)]
                  for i in range(0, n, step)]
        if points[-1][1] != 1.0:
            points.append([round(ordered[-1], 3), 1.0])
        return points

    def goodput_series(self) -> Dict[str, List[List[float]]]:
        """Per-bucket offered/goodput/shed rates over the run."""
        bucket = self.config.bucket_seconds
        buckets: Dict[int, Dict[str, int]] = {}
        for sample in self.samples:
            index = int(sample.offset_seconds / bucket)
            row = buckets.setdefault(index, {"offered": 0, "ok": 0,
                                             "shed": 0})
            row["offered"] += 1
            if sample.status == 200:
                row["ok"] += 1
            elif sample.status == 429:
                row["shed"] += 1
        series: Dict[str, List[List[float]]] = {
            "offered_rps": [], "goodput_rps": [], "shed_rps": []}
        for index in sorted(buckets):
            t = round((index + 0.5) * bucket, 3)
            row = buckets[index]
            series["offered_rps"].append([t, round(row["offered"] / bucket, 3)])
            series["goodput_rps"].append([t, round(row["ok"] / bucket, 3)])
            series["shed_rps"].append([t, round(row["shed"] / bucket, 3)])
        return series

    def report_records(self) -> List[dict]:
        """Record stream consumed by :mod:`repro.obs.report`."""
        records: List[dict] = [{"type": "gateway-cell", "cell": self.cell()}]
        points = self.cdf_points()
        if points:
            records.append({"type": "gateway-cdf", "policy": self.label,
                            "points": points})
        for name, points in self.goodput_series().items():
            records.append({"type": "gateway-series", "policy": self.label,
                            "name": name, "points": points})
        for flip in self.gateway_stats.get(
                "degradation", {}).get("flips", []):
            records.append({"type": "gateway-flip", "policy": self.label,
                            "seq": flip["seq"], "from": flip["from"],
                            "to": flip["to"]})
        return records


# -- drivers ---------------------------------------------------------------------


async def run_inproc(gateway: Gateway, schedule: List[Arrival],
                     label: str, policy: str,
                     config: LoadgenConfig) -> LoadResult:
    """Fire *schedule* at the gateway core directly (no sockets)."""

    loop = gateway.loop
    samples: List[RequestSample] = []
    start = loop.time()

    async def fire(arrival: Arrival, fired_at: float) -> None:
        response = await gateway.invoke(arrival.function, arrival.payload)
        samples.append(RequestSample(
            offset_seconds=arrival.offset_seconds,
            lateness_ms=(fired_at - start
                         - arrival.offset_seconds) * 1000.0,
            status=response.status,
            latency_ms=response.latency_ms,
            mode=response.mode))

    await _pace(loop, schedule, start, fire)
    wall = loop.time() - start
    return LoadResult(label, policy, "inproc", config, samples, wall,
                      gateway.stats())


async def run_http(server: GatewayServer, schedule: List[Arrival],
                   label: str, policy: str,
                   config: LoadgenConfig) -> LoadResult:
    """Fire *schedule* through real HTTP connections (keep-alive pool)."""

    loop = asyncio.get_event_loop()
    pool = HttpPool(server.host, server.port,
                    size=config.max_connections)
    await pool.start()
    samples: List[RequestSample] = []
    start = loop.time()

    async def fire(arrival: Arrival, fired_at: float) -> None:
        t0 = loop.time()
        status, headers, _body = await pool.request(
            f"/invoke/{arrival.function}", arrival.payload)
        samples.append(RequestSample(
            offset_seconds=arrival.offset_seconds,
            lateness_ms=(fired_at - start
                         - arrival.offset_seconds) * 1000.0,
            status=status,
            latency_ms=(loop.time() - t0) * 1000.0,
            mode=headers.get("x-dispatch-mode")))

    try:
        await _pace(loop, schedule, start, fire)
    finally:
        wall = loop.time() - start
        await pool.close()
    return LoadResult(label, policy, "http", config, samples, wall,
                      server.gateway.stats())


async def _pace(loop: asyncio.AbstractEventLoop, schedule: List[Arrival],
                start: float, fire) -> None:
    """Open-loop pacing: spawn each request at its scheduled offset."""
    tasks = []
    for arrival in schedule:
        delay = start + arrival.offset_seconds - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(fire(arrival, loop.time())))
    if tasks:
        await asyncio.gather(*tasks)


class HttpPool:
    """A fixed pool of keep-alive HTTP/1.1 connections (stdlib only)."""

    def __init__(self, host: str, port: int, size: int = 32) -> None:
        self.host = host
        self.port = port
        self.size = size
        self._free: "asyncio.Queue[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]" = (
            asyncio.Queue())
        self._all: List[asyncio.StreamWriter] = []

    async def start(self) -> None:
        for _ in range(self.size):
            reader, writer = await asyncio.open_connection(
                self.host, self.port)
            self._all.append(writer)
            self._free.put_nowait((reader, writer))

    async def close(self) -> None:
        for writer in self._all:
            writer.close()
        for writer in self._all:
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._all.clear()

    async def request(self, path: str, payload: Any
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """POST *payload* as JSON; returns (status, headers, body)."""
        body = b"" if payload is None else json.dumps(
            payload, separators=(",", ":")).encode("utf-8")
        head = (f"POST {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n").encode("latin-1")
        reader, writer = await self._free.get()
        try:
            writer.write(head + body)
            await writer.drain()
            status, headers, response_body = await self._read_response(
                reader)
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            # The server dropped the connection; replace it in the pool
            # and report the request as a transport-level 503.
            writer.close()
            reader, writer = await asyncio.open_connection(
                self.host, self.port)
            return 503, {}, b""
        finally:
            self._free.put_nowait((reader, writer))
        return status, headers, response_body

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader
                             ) -> Tuple[int, Dict[str, str], bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, headers, body
