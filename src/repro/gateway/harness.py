"""Cell harness: build a serving stack, drive a seeded load, tear down.

One **cell** = one policy × one transport × one seeded load config,
served by a fresh demo platform + gateway.  The three stock policies:

* ``faasbatch`` — dispatch windows on, degradation monitor off (pure
  paper policy, the batching arm of the comparison);
* ``vanilla``   — zero window, serial containers, no multiplexer (the
  paper's baseline);
* ``adaptive``  — FaaSBatch windows plus the degradation monitor, free
  to flip to vanilla dispatch and back.

`repro loadgen` and the CI smoke both run through :func:`run_cell`, so
the committed artifact and the smoke artifact are the same code path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.gateway.degradation import DegradationConfig
from repro.gateway.functions import DEFAULT_CLIENT_COST_SECONDS, demo_platform
from repro.gateway.loadgen import (
    LoadgenConfig,
    LoadResult,
    build_phased_schedule,
    build_schedule,
    run_http,
    run_inproc,
)
from repro.gateway.server import (
    AdmissionConfig,
    Gateway,
    GatewayConfig,
    GatewayServer,
)
from repro.local import LocalPlatform, LocalPlatformConfig
from repro.obs import Observability

POLICY_CELLS = ("faasbatch", "vanilla", "adaptive")
_TRANSPORTS = ("inproc", "http")


@dataclass(frozen=True)
class CellSpec:
    """Everything needed to reproduce one load cell."""

    label: str
    policy: str
    load: LoadgenConfig
    #: Optional multi-phase traffic: when non-empty the schedule is the
    #: concatenation of these configs (``load`` still supplies bucketing
    #: and connection-pool knobs).  Shape-shifting traffic is what makes
    #: the degradation monitor flip and recover.
    phases: Tuple[LoadgenConfig, ...] = ()
    transport: str = "inproc"
    window_seconds: float = 0.02
    deadline_seconds: float = 5.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    degradation: DegradationConfig = field(
        default_factory=lambda: DegradationConfig(enabled=False))
    cold_start_seconds: float = 0.002
    client_cost_seconds: float = DEFAULT_CLIENT_COST_SECONDS
    request_timeout_seconds: Optional[float] = 2.0
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.policy not in POLICY_CELLS:
            raise ConfigurationError(
                f"policy must be one of {POLICY_CELLS}, got {self.policy!r}")
        if self.transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {_TRANSPORTS}, "
                f"got {self.transport!r}")


def platform_config_for(spec: CellSpec) -> LocalPlatformConfig:
    """The LocalPlatformConfig backing one cell's policy."""
    if spec.policy == "vanilla":
        return LocalPlatformConfig(
            policy="vanilla", window_seconds=0.0,
            container_concurrency=1, use_multiplexer=False,
            cold_start_seconds=spec.cold_start_seconds,
            request_timeout_seconds=spec.request_timeout_seconds,
            max_attempts=spec.max_attempts)
    return LocalPlatformConfig(
        policy="faasbatch", window_seconds=spec.window_seconds,
        cold_start_seconds=spec.cold_start_seconds,
        use_multiplexer=True,
        request_timeout_seconds=spec.request_timeout_seconds,
        max_attempts=spec.max_attempts)


def build_stack(spec: CellSpec,
                obs: Optional[Observability] = None
                ) -> Tuple[LocalPlatform, Gateway]:
    """Fresh demo platform + gateway wired for *spec* (loop must exist)."""
    platform = demo_platform(
        platform_config_for(spec), obs=obs,
        client_cost_seconds=spec.client_cost_seconds)
    gateway_policy = "vanilla" if spec.policy == "vanilla" else "faasbatch"
    degradation = (DegradationConfig(
        enabled=True,
        window_size=spec.degradation.window_size,
        min_samples=spec.degradation.min_samples,
        probe_every=spec.degradation.probe_every,
        margin=spec.degradation.margin,
        cooldown=spec.degradation.cooldown)
        if spec.policy == "adaptive" else spec.degradation)
    config = GatewayConfig(
        policy=gateway_policy,
        window_seconds=(0.0 if spec.policy == "vanilla"
                        else spec.window_seconds),
        deadline_seconds=spec.deadline_seconds,
        admission=spec.admission,
        degradation=degradation)
    return platform, Gateway(platform, config)


async def run_cell(spec: CellSpec,
                   obs: Optional[Observability] = None) -> LoadResult:
    """Serve one full cell: build, load, drain, tear down."""
    if spec.phases:
        schedule = build_phased_schedule(list(spec.phases))
    else:
        schedule = build_schedule(spec.load)
    platform, gateway = build_stack(spec, obs=obs)
    server: Optional[GatewayServer] = None
    try:
        if spec.transport == "http":
            server = GatewayServer(gateway, port=0)
            await server.start()
            result = await run_http(server, schedule, spec.label,
                                    spec.policy, spec.load)
        else:
            result = await run_inproc(gateway, schedule, spec.label,
                                      spec.policy, spec.load)
        # Let in-window stragglers finish before reading final stats.
        gateway.close()
        await asyncio.sleep(0)
        result.gateway_stats = gateway.stats()
        return result
    finally:
        if server is not None:
            await server.stop()
        await asyncio.get_event_loop().run_in_executor(
            None, platform.shutdown)


def default_cells(policies: List[str], load: LoadgenConfig,
                  transport: str = "inproc",
                  window_seconds: float = 0.02,
                  admission: Optional[AdmissionConfig] = None,
                  deadline_seconds: float = 5.0) -> List[CellSpec]:
    """The standard comparison cells over one shared load config."""
    admission = admission if admission is not None else AdmissionConfig()
    return [CellSpec(label=policy, policy=policy, load=load,
                     transport=transport, window_seconds=window_seconds,
                     admission=admission,
                     deadline_seconds=deadline_seconds)
            for policy in policies]
