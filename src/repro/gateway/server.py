"""The gateway core and its asyncio HTTP/1.1 front end.

:class:`Gateway` is the transport-independent serving brain: it owns the
per-function :class:`~repro.gateway.batching.FunctionBatcher` windows,
the :class:`~repro.gateway.admission.AdmissionController`, and the
:class:`~repro.gateway.degradation.DegradationMonitor`, and bridges
asyncio request futures onto :class:`~repro.local.LocalPlatform` thread
containers via ``submit_group`` + ``call_soon_threadsafe``.  The in-proc
load generator drives it directly as coroutines (tens of thousands of
RPS, no socket overhead); :class:`GatewayServer` adds a hand-rolled
HTTP/1.1 layer over ``asyncio.start_server`` — stdlib only, keep-alive
connections, bounded request sizes.

Routes::

    POST /invoke/<function>   body = JSON payload (empty body -> null)
    GET  /healthz             liveness, uptime + current dispatch mode
    GET  /stats               gateway counters, admission + flip history
    GET  /metrics             platform metrics registry snapshot (JSON by
                              default; Prometheus text exposition under
                              ``Accept: text/plain`` or
                              ``?format=prometheus``)

Every response carries an ``X-Request-Id`` header; ids are derived from
``GatewayConfig.seed`` plus an arrival counter, so a seeded run assigns
the same id to the same request every time (the inproc harness relies on
this for reproducible traces).

Status mapping: 200 ok · 400 malformed · 404 unknown function ·
408 request timeout (client read) · 413 body too large · 429 shed
(with ``Retry-After``) · 500 handler error · 503 platform draining or
stopped · 504 gateway deadline exceeded.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import (
    ConfigurationError,
    FunctionNotRegistered,
    GatewayOverloaded,
    InvocationTimeout,
    PlatformStateError,
)
from repro.gateway.admission import (
    SHED_INFLIGHT,
    SHED_QUEUE_DEPTH,
    AdmissionConfig,
    AdmissionController,
)
from repro.core.config import WINDOW_POLICIES
from repro.core.windowing import AdaptiveWindow, WindowPolicy
from repro.gateway.batching import FunctionBatcher, PendingRequest
from repro.gateway.degradation import (
    MODE_BATCH,
    MODE_VANILLA,
    DegradationConfig,
    DegradationMonitor,
)
from repro.local import LocalPlatform
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_gateway_stats,
    render_registry,
)

_GATEWAY_POLICIES = ("faasbatch", "vanilla")

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: HTTP parsing bounds (hand-rolled parser, so belts and braces).
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8192
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class GatewayConfig:
    """Serving knobs layered over the platform's own config."""

    policy: str = "faasbatch"
    #: Request-id seed: ids are ``req-<seed hex>-<arrival index>``, so a
    #: seeded run hands out the same ids in the same order every time.
    seed: int = 0
    #: The live dispatch window (seconds).  0 disables holding entirely.
    #: Under the adaptive policy this is the maximum window / SLO budget.
    window_seconds: float = 0.02
    #: Window-sizing policy ("fixed" | "adaptive") — the same
    #: :mod:`repro.core.windowing` policies the simulator uses, keyed per
    #: function on the gateway.
    window_policy: str = "fixed"
    #: End-to-end budget per request as seen by the caller.
    deadline_seconds: float = 10.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    degradation: DegradationConfig = field(
        default_factory=lambda: DegradationConfig(enabled=False))

    def __post_init__(self) -> None:
        if self.policy not in _GATEWAY_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_GATEWAY_POLICIES}, "
                f"got {self.policy!r}")
        if self.window_seconds < 0:
            raise ConfigurationError(
                f"window_seconds must be >= 0, got {self.window_seconds}")
        if self.window_policy not in WINDOW_POLICIES:
            raise ConfigurationError(
                f"window_policy must be one of {WINDOW_POLICIES}, "
                f"got {self.window_policy!r}")
        if self.window_policy == "adaptive" and self.window_seconds <= 0:
            raise ConfigurationError(
                "the adaptive window policy needs a positive window_seconds "
                "to use as its maximum window / SLO budget")
        if self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}")


@dataclass
class GatewayResponse:
    """Transport-independent outcome of one request."""

    status: int
    body: dict
    mode: Optional[str] = None
    retry_after_seconds: Optional[float] = None
    latency_ms: float = 0.0
    #: Assigned by the gateway to every arrival (404s and sheds included);
    #: surfaced over HTTP as the ``X-Request-Id`` response header.
    request_id: Optional[str] = None
    #: When set, the HTTP layer sends this instead of the JSON body,
    #: with ``content_type`` (used by the Prometheus exposition).
    text: Optional[str] = None
    content_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == 200


class Gateway:
    """Batching + admission + degradation over one LocalPlatform."""

    def __init__(self, platform: LocalPlatform,
                 config: Optional[GatewayConfig] = None,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self.platform = platform
        self.config = config if config is not None else GatewayConfig()
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.admission = AdmissionController(self.config.admission)
        self.monitor = DegradationMonitor(self.config.degradation)
        self.requests_total = 0
        self.responses_by_status: Dict[int, int] = {}
        self.batches_dispatched = 0
        self.batched_requests = 0
        #: Wall-clock construction instant (epoch seconds) for /healthz
        #: and /stats; uptime is measured on the loop's monotonic clock.
        self.started_at = time.time()
        self._started_loop = self.loop.time()
        self._request_ids = itertools.count()
        self._id_prefix = f"req-{self.config.seed:x}"
        self._batchers: Dict[str, FunctionBatcher] = {}
        # One shared window policy for every function's batcher (keyed by
        # function name), mirroring the simulator's single policy object.
        self._window_policy: Optional[WindowPolicy] = None
        if (self.config.window_policy == "adaptive"
                and self.config.window_seconds > 0):
            max_ms = self.config.window_seconds * 1000.0
            self._window_policy = AdaptiveWindow(
                min_ms=max_ms / 20.0, max_ms=max_ms, slo_budget_ms=max_ms)
        # Completions arrive on platform worker threads; they are buffered
        # and drained with ONE call_soon_threadsafe per wakeup instead of
        # one per invocation — at 10k+ RPS the per-request loop wakeups
        # were a measurable share of the single core this serves on.
        self._done_buffer: List[tuple] = []
        self._done_lock = threading.Lock()
        self._drain_scheduled = False

    # -- request path ------------------------------------------------------------

    def next_request_id(self) -> str:
        """Mint the next deterministic request id (seeded arrival order)."""
        return f"{self._id_prefix}-{next(self._request_ids)}"

    @property
    def uptime_s(self) -> float:
        return self.loop.time() - self._started_loop

    async def invoke(self, function: str,
                     payload: Any = None) -> GatewayResponse:
        """Serve one request end to end; never raises."""
        start = self.loop.time()
        self.requests_total += 1
        request_id = self.next_request_id()
        if not self.platform.has_function(function):
            return self._finish(start, GatewayResponse(
                404, {"error": "unknown function", "function": function},
                request_id=request_id))
        mode = self._choose_mode()
        shed = self._admit(function, mode)
        if shed is not None:
            shed.request_id = request_id
            return self._finish(start, shed)
        request = PendingRequest(
            request_id=request_id,
            function=function, payload=payload,
            future=self.loop.create_future(),
            enqueued_at=start, mode=mode)
        if mode == MODE_BATCH and self.config.window_seconds > 0:
            self._batcher(function).enqueue(request)
            self.batched_requests += 1
        else:
            self._dispatch(function, [request])
        # A plain timer + bare await instead of asyncio.wait_for: wait_for
        # wraps the future in a Task per request, which is real money at
        # five-digit RPS on one core.
        deadline = self.loop.call_later(
            self.config.deadline_seconds, self._expire, request)
        try:
            result = await request.future
            response = GatewayResponse(200, {"result": result}, mode=mode)
        except asyncio.TimeoutError:
            response = GatewayResponse(
                504, {"error": "deadline exceeded",
                      "deadline_s": self.config.deadline_seconds},
                mode=mode)
        except GatewayOverloaded as error:
            self.admission.record_shed(SHED_QUEUE_DEPTH)
            response = GatewayResponse(
                429, {"error": "shed", "cause": SHED_QUEUE_DEPTH},
                mode=mode,
                retry_after_seconds=error.retry_after_seconds)
        except PlatformStateError as error:
            response = GatewayResponse(
                503, {"error": type(error).__name__}, mode=mode)
        except InvocationTimeout as error:
            response = GatewayResponse(
                504, {"error": "invocation timeout",
                      "detail": str(error)}, mode=mode)
        except FunctionNotRegistered:
            response = GatewayResponse(
                404, {"error": "unknown function", "function": function},
                mode=mode)
        except Exception as error:
            response = GatewayResponse(
                500, {"error": type(error).__name__,
                      "detail": str(error)}, mode=mode)
        finally:
            deadline.cancel()
            self.admission.release()
        response.request_id = request_id
        if response.ok:
            self.monitor.record(mode, (self.loop.time() - start) * 1000.0)
        return self._finish(start, response)

    def _choose_mode(self) -> str:
        if self.config.policy == "vanilla":
            return MODE_VANILLA
        if self.config.degradation.enabled:
            return self.monitor.choose()
        return MODE_BATCH

    def _admit(self, function: str,
               mode: str) -> Optional[GatewayResponse]:
        """Apply the bounds; returns a 429 response when shedding."""
        retry_after = self.config.admission.retry_after_seconds
        if self.admission.over_inflight():
            self.admission.record_shed(SHED_INFLIGHT)
            return GatewayResponse(
                429, {"error": "shed", "cause": SHED_INFLIGHT}, mode=mode,
                retry_after_seconds=retry_after)
        if mode == MODE_BATCH and self.config.window_seconds > 0:
            batcher = self._batcher(function)
            if self.admission.queue_full(batcher.depth):
                if self.config.admission.shed_policy == "newest":
                    self.admission.record_shed(SHED_QUEUE_DEPTH)
                    return GatewayResponse(
                        429, {"error": "shed", "cause": SHED_QUEUE_DEPTH},
                        mode=mode, retry_after_seconds=retry_after)
                victim = batcher.evict_oldest()
                if not victim.future.done():
                    victim.future.set_exception(GatewayOverloaded(
                        f"{victim.request_id} evicted (oldest-first shed)",
                        retry_after_seconds=retry_after))
        self.admission.admit()
        return None

    def _batcher(self, function: str) -> FunctionBatcher:
        batcher = self._batchers.get(function)
        if batcher is None:
            batcher = FunctionBatcher(
                function=function,
                window_seconds=self.config.window_seconds,
                dispatch=self._dispatch, loop=self.loop,
                policy=self._window_policy)
            self._batchers[function] = batcher
        return batcher

    def _dispatch(self, function: str,
                  requests: List[PendingRequest]) -> None:
        """Hand a closed window (or a vanilla singleton) to the platform."""
        now = self.loop.time()
        for request in requests:
            request.dispatched_at = now
        try:
            invocations = self.platform.submit_group(
                function, [request.payload for request in requests])
        except Exception as error:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)
            return
        self.batches_dispatched += 1
        for request, invocation in zip(requests, invocations):
            invocation.future.add_done_callback(
                functools.partial(self._on_platform_done, request))

    def _expire(self, request: PendingRequest) -> None:
        if not request.future.done():
            request.future.set_exception(asyncio.TimeoutError())

    def _on_platform_done(self, request: PendingRequest,
                          platform_future) -> None:
        # Runs on a platform worker thread: buffer, wake the loop once.
        with self._done_lock:
            self._done_buffer.append((request, platform_future))
            schedule = not self._drain_scheduled
            if schedule:
                self._drain_scheduled = True
        if schedule:
            try:
                self.loop.call_soon_threadsafe(self._drain_done)
            except RuntimeError:
                pass  # loop already closed (shutdown race)

    def _drain_done(self) -> None:
        with self._done_lock:
            buffer, self._done_buffer = self._done_buffer, []
            self._drain_scheduled = False
        for request, platform_future in buffer:
            self._complete(request, platform_future)

    def _complete(self, request: PendingRequest, platform_future) -> None:
        if request.future.done():
            return  # deadline or eviction already answered the caller
        error = platform_future.exception()
        if error is not None:
            request.future.set_exception(error)
        else:
            request.future.set_result(platform_future.result())

    def _finish(self, start: float,
                response: GatewayResponse) -> GatewayResponse:
        response.latency_ms = (self.loop.time() - start) * 1000.0
        self.responses_by_status[response.status] = \
            self.responses_by_status.get(response.status, 0) + 1
        return response

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        degradation = self.monitor.stats()
        if self.config.policy == "vanilla":
            # The monitor never runs under a vanilla policy; report the
            # dispatch mode actually in force, not the monitor default.
            degradation["mode"] = MODE_VANILLA
        return {
            "policy": self.config.policy,
            "window_seconds": self.config.window_seconds,
            "window_policy": self.config.window_policy,
            "started_at": self.started_at,
            "uptime_s": self.uptime_s,
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(code): count for code, count
                in sorted(self.responses_by_status.items())},
            "batches_dispatched": self.batches_dispatched,
            "batched_requests": self.batched_requests,
            "queue_depths": {name: batcher.depth for name, batcher
                             in sorted(self._batchers.items())},
            "admission": self.admission.stats(),
            "degradation": degradation,
            "platform_state": self.platform.state,
        }

    def close(self) -> None:
        """Flush every open window (pending requests still complete)."""
        for batcher in self._batchers.values():
            batcher.close()


class GatewayServer:
    """Hand-rolled HTTP/1.1 keep-alive server over asyncio streams."""

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 8080) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self.connections_served = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        # Port 0 asks the OS for an ephemeral port; reflect the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.gateway.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling -----------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections_served += 1
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError as error:
                    await self._write_response(
                        writer, GatewayResponse(
                            400, {"error": "malformed request",
                                  "detail": str(error)}), {}, False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                response, extra = await self._route(method, path, headers,
                                                    body)
                keep_alive = headers.get("connection", "") != "close"
                await self._write_response(writer, response, extra,
                                           keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; None on clean EOF; raises ValueError → 400."""
        try:
            request_line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            raise
        if not request_line:
            return None
        parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {parts!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > MAX_LINE_BYTES:
                raise ValueError("header line too long")
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        else:
            raise ValueError("too many header lines")
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"bad content length {length}")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _render_metrics(self, prometheus: bool) -> GatewayResponse:
        """The /metrics body: JSON snapshot or Prometheus exposition."""
        obs = self.gateway.platform.obs
        if prometheus:
            page = render_registry(obs.metrics) if obs is not None else ""
            page += render_gateway_stats(self.gateway.stats())
            return GatewayResponse(200, {}, text=page,
                                   content_type=PROMETHEUS_CONTENT_TYPE)
        if obs is None:
            # Explicit marker rather than a silent empty snapshot: an
            # empty dict is indistinguishable from "no samples yet".
            return GatewayResponse(200, {"obs": "disabled"})
        return GatewayResponse(200, obs.metrics.snapshot())

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes):
        """Dispatch to a handler; returns (GatewayResponse, extra headers)."""
        path, _, query = path.partition("?")
        if method == "POST" and path.startswith("/invoke/"):
            function = path[len("/invoke/"):]
            if body:
                try:
                    payload = json.loads(body)
                except json.JSONDecodeError as error:
                    return GatewayResponse(
                        400, {"error": "invalid JSON body",
                              "detail": str(error)}), {}
            else:
                payload = None
            response = await self.gateway.invoke(function, payload)
            extra = {}
            if response.request_id is not None:
                extra["X-Request-Id"] = response.request_id
            if response.mode is not None:
                extra["X-Dispatch-Mode"] = response.mode
            if response.retry_after_seconds is not None:
                extra["Retry-After"] = format(
                    max(response.retry_after_seconds, 0.001), ".3f")
            return response, extra
        if method == "GET" and path == "/healthz":
            response = GatewayResponse(200, {
                "status": "ok",
                "platform_state": self.gateway.platform.state,
                "mode": self.gateway.monitor.mode,
                "inflight": self.gateway.admission.inflight,
                "started_at": self.gateway.started_at,
                "uptime_s": self.gateway.uptime_s})
        elif method == "GET" and path == "/stats":
            response = GatewayResponse(200, self.gateway.stats())
        elif method == "GET" and path == "/metrics":
            prometheus = ("format=prometheus" in query.split("&")
                          or "text/plain" in headers.get("accept", ""))
            response = self._render_metrics(prometheus)
        else:
            known = (path.startswith("/invoke/")
                     or path in ("/healthz", "/stats", "/metrics"))
            if known or method not in ("GET", "POST", "HEAD"):
                return GatewayResponse(
                    405, {"error": "method not allowed",
                          "method": method}), {}
            return GatewayResponse(404, {"error": "no such route",
                                         "path": path}), {}
        # Ops endpoints get request ids from the same seeded stream, so
        # "every response carries X-Request-Id" holds on every route.
        response.request_id = self.gateway.next_request_id()
        return response, {"X-Request-Id": response.request_id}

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: GatewayResponse,
                              extra: Dict[str, str],
                              keep_alive: bool) -> None:
        if response.text is not None:
            payload = response.text.encode("utf-8")
            content_type = response.content_type or "text/plain"
        else:
            payload = json.dumps(response.body,
                                 separators=(",", ":")).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(response.status, "Unknown")
        headers = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{key}: {value}" for key, value in extra.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()
