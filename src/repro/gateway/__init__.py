"""Live serving tier: asyncio HTTP gateway over the local runtime.

The simulator (:mod:`repro.platformsim`) validates the FaaSBatch policy;
this package proves it *serves*: real dispatch windows on live requests,
admission control and load shedding under overload, wall-clock retries
and timeouts via the platform's resilience knobs, and graceful
degradation to vanilla dispatch when batching stops winning.  A seeded
open-loop load generator (``repro loadgen``) publishes results into the
bench artifact (``gateway_cells``, schema v4) and the HTML report.
"""

from repro.gateway.admission import (
    SHED_INFLIGHT,
    SHED_QUEUE_DEPTH,
    AdmissionConfig,
    AdmissionController,
)
from repro.gateway.batching import FunctionBatcher, PendingRequest
from repro.gateway.degradation import (
    MODE_BATCH,
    MODE_VANILLA,
    DegradationConfig,
    DegradationMonitor,
    percentile,
)
from repro.gateway.functions import (
    DEFAULT_CLIENT_COST_SECONDS,
    DEMO_FUNCTIONS,
    demo_platform,
    make_handlers,
)
from repro.gateway.harness import (
    POLICY_CELLS,
    CellSpec,
    build_stack,
    default_cells,
    platform_config_for,
    run_cell,
)
from repro.gateway.loadgen import (
    Arrival,
    HttpPool,
    LoadgenConfig,
    LoadResult,
    RequestSample,
    build_phased_schedule,
    build_schedule,
    run_http,
    run_inproc,
)
from repro.gateway.server import (
    Gateway,
    GatewayConfig,
    GatewayResponse,
    GatewayServer,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Arrival",
    "CellSpec",
    "DEFAULT_CLIENT_COST_SECONDS",
    "DEMO_FUNCTIONS",
    "DegradationConfig",
    "DegradationMonitor",
    "FunctionBatcher",
    "Gateway",
    "GatewayConfig",
    "GatewayResponse",
    "GatewayServer",
    "HttpPool",
    "LoadResult",
    "LoadgenConfig",
    "MODE_BATCH",
    "MODE_VANILLA",
    "PendingRequest",
    "POLICY_CELLS",
    "RequestSample",
    "SHED_INFLIGHT",
    "SHED_QUEUE_DEPTH",
    "build_phased_schedule",
    "build_schedule",
    "build_stack",
    "default_cells",
    "demo_platform",
    "make_handlers",
    "percentile",
    "platform_config_for",
    "run_cell",
    "run_http",
    "run_inproc",
]
