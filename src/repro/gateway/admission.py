"""Admission control and load shedding for the gateway.

The gateway is an open system: arrivals do not slow down because the
platform is busy, so without admission control a burst turns into an
unbounded queue and every request times out (congestive collapse).  Two
bounds keep the served system stable:

* a **global in-flight cap** — requests admitted but not yet responded;
* a **per-function queue depth bound** — requests waiting in one
  function's dispatch window.

Requests over either bound are shed with HTTP 429 + ``Retry-After``.
``shed_policy`` picks the victim when a window queue is full:
``"newest"`` rejects the arriving request (classic tail drop),
``"oldest"`` evicts the head of the queue — the request that has already
waited longest and is most likely to blow its deadline anyway — and
admits the fresh one.

Everything here runs on the event loop thread, so plain integers are
safe; there are deliberately no locks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

_SHED_POLICIES = ("newest", "oldest")

#: Shed-cause labels (stable: they appear in metrics and bench cells).
SHED_INFLIGHT = "inflight-cap"
SHED_QUEUE_DEPTH = "queue-depth"


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds of the gateway waiting room."""

    #: Maximum requests waiting in one function's dispatch window.
    max_queue_depth: int = 256
    #: Maximum requests admitted and not yet responded, across functions.
    max_inflight: int = 2048
    #: ``Retry-After`` hint handed to shed callers, in seconds.
    retry_after_seconds: float = 0.05
    #: Victim selection when a window queue is full: "newest" | "oldest".
    shed_policy: str = "newest"

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.retry_after_seconds < 0:
            raise ConfigurationError(
                f"retry_after_seconds must be >= 0, "
                f"got {self.retry_after_seconds}")
        if self.shed_policy not in _SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {_SHED_POLICIES}, "
                f"got {self.shed_policy!r}")


class AdmissionController:
    """Event-loop-confined counters enforcing :class:`AdmissionConfig`."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.inflight = 0
        self.admitted = 0
        self.shed = {SHED_INFLIGHT: 0, SHED_QUEUE_DEPTH: 0}

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def over_inflight(self) -> bool:
        return self.inflight >= self.config.max_inflight

    def queue_full(self, depth: int) -> bool:
        return depth >= self.config.max_queue_depth

    def admit(self) -> None:
        """Account one admitted request (pair with :meth:`release`)."""
        self.inflight += 1
        self.admitted += 1

    def release(self) -> None:
        self.inflight -= 1

    def record_shed(self, cause: str) -> None:
        self.shed[cause] += 1

    def stats(self) -> dict:
        return {
            "inflight": self.inflight,
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "max_inflight": self.config.max_inflight,
            "max_queue_depth": self.config.max_queue_depth,
            "shed_policy": self.config.shed_policy,
        }
