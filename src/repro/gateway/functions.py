"""Demo function set served by the gateway (and driven by the loadgen).

Four handlers spanning the behaviours that matter for batching:

* ``echo`` — near-zero work; measures pure gateway+platform overhead;
* ``sleep`` — fixed wall-clock wait; parallel-friendly (threads overlap);
* ``fib``  — small CPU burn; GIL-bound, so batching cannot help compute;
* ``io``   — builds a storage client via ``context.create_resource`` and
  writes an object.  Client construction costs real wall-clock, so the
  Resource Multiplexer (shared per container) is where FaaSBatch earns
  its p99 win — vanilla mode pays construction on every request.
"""

from __future__ import annotations

from typing import Optional

from repro.local import (
    FakeS3Client,
    InMemoryBucketStore,
    LocalPlatform,
    LocalPlatformConfig,
)
from repro.obs import Observability

#: Default io-handler client construction cost (seconds).  The paper's
#: measured boto3-client construction runs tens of milliseconds — that
#: cost is the whole reason the Resource Multiplexer exists, so the demo
#: keeps it in that range rather than scaling it away.
DEFAULT_CLIENT_COST_SECONDS = 0.025

DEMO_FUNCTIONS = ("echo", "sleep", "fib", "io")


def fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def make_handlers(store: Optional[InMemoryBucketStore] = None,
                  client_cost_seconds: float = DEFAULT_CLIENT_COST_SECONDS
                  ) -> dict:
    """The demo handler set, closed over one shared bucket store."""
    bucket = store if store is not None else InMemoryBucketStore()

    def echo_handler(payload, context):
        return payload

    def sleep_handler(payload, context):
        import time
        ms = float((payload or {}).get("ms", 1.0))
        time.sleep(ms / 1000.0)
        return {"slept_ms": ms}

    def fib_handler(payload, context):
        n = int((payload or {}).get("n", 200))
        return {"n": n, "fib_len": len(str(fib(n)))}

    def io_handler(payload, context):
        key = str((payload or {}).get("key", "object"))
        client = context.create_resource(
            FakeS3Client, "AKDEMO", "SECRET", store=bucket,
            construction_seconds=client_cost_seconds)
        client.put_object(Bucket="demo", Key=key, Body=b"x" * 64)
        return {"stored": key}

    return {
        "echo": echo_handler,
        "sleep": sleep_handler,
        "fib": fib_handler,
        "io": io_handler,
    }


def demo_platform(config: Optional[LocalPlatformConfig] = None,
                  obs: Optional[Observability] = None,
                  client_cost_seconds: float = DEFAULT_CLIENT_COST_SECONDS
                  ) -> LocalPlatform:
    """A LocalPlatform with the demo handler set registered."""
    platform = LocalPlatform(config, obs=obs)
    for name, handler in make_handlers(
            client_cost_seconds=client_cost_seconds).items():
        platform.register(name, handler)
    return platform
