"""Graceful degradation: flip batching off when it stops winning.

FaaSBatch's dispatch window is a latency *bet*: hold requests for up to
``window_seconds`` so they share a container and its multiplexed clients.
The bet pays when traffic is dense (the window fills) and the handler
amortises shared state; it loses at sparse traffic, where every request
eats the full window as pure added latency.  The monitor settles the bet
empirically, on the serving path itself:

* every ``probe_every``-th request is dispatched in the *opposite* mode,
  so the loser keeps producing fresh evidence while benched;
* per-mode sliding windows of response latencies feed a p99 comparison;
* when the active mode's p99 exceeds the other side's by ``margin``,
  dispatch flips, both windows reset, and a ``cooldown`` of requests must
  pass before the next evaluation.

Flip decisions are a pure function of the observed latency sequence (no
clocks, no randomness), so tests can drive the monitor deterministically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.common.errors import ConfigurationError

MODE_BATCH = "batch"
MODE_VANILLA = "vanilla"


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample set."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class DegradationConfig:
    """Sliding-window p99 comparison knobs."""

    enabled: bool = True
    #: Per-mode sliding window size (latency samples).
    window_size: int = 256
    #: Both modes need this many samples before a comparison counts.
    min_samples: int = 32
    #: Every Nth request probes the currently-benched mode.
    probe_every: int = 8
    #: The active mode must lose by this factor on p99 before a flip.
    margin: float = 1.25
    #: Requests to wait after a flip before evaluating again.
    cooldown: int = 128

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {self.window_size}")
        if not 1 <= self.min_samples <= self.window_size:
            raise ConfigurationError(
                f"min_samples must be in [1, window_size], "
                f"got {self.min_samples}")
        if self.probe_every < 2:
            raise ConfigurationError(
                f"probe_every must be >= 2, got {self.probe_every}")
        if self.margin < 1.0:
            raise ConfigurationError(
                f"margin must be >= 1.0, got {self.margin}")
        if self.cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {self.cooldown}")


class DegradationMonitor:
    """Chooses batch-vs-vanilla dispatch per request and tracks flips."""

    def __init__(self, config: Optional[DegradationConfig] = None) -> None:
        self.config = config if config is not None else DegradationConfig()
        self.mode = MODE_BATCH
        self.flips: List[dict] = []
        self._seq = 0
        self._recorded = 0
        self._cooldown_until = 0
        self._window: Dict[str, Deque[float]] = {
            MODE_BATCH: deque(maxlen=self.config.window_size),
            MODE_VANILLA: deque(maxlen=self.config.window_size),
        }

    def choose(self) -> str:
        """Dispatch mode for the next request (counter-driven probing)."""
        if not self.config.enabled:
            return self.mode
        self._seq += 1
        if self._seq % self.config.probe_every == 0:
            return self._other(self.mode)
        return self.mode

    def record(self, mode: str, latency_ms: float) -> None:
        """Feed one response latency; may flip :attr:`mode`."""
        if not self.config.enabled:
            return
        self._window[mode].append(latency_ms)
        self._recorded += 1
        self._evaluate()

    def p99(self, mode: str) -> Optional[float]:
        samples = self._window[mode]
        if len(samples) < self.config.min_samples:
            return None
        return percentile(list(samples), 99.0)

    def stats(self) -> dict:
        return {
            "enabled": self.config.enabled,
            "mode": self.mode,
            "flips": list(self.flips),
            "batch_p99_ms": self.p99(MODE_BATCH),
            "vanilla_p99_ms": self.p99(MODE_VANILLA),
            "samples": {m: len(w) for m, w in self._window.items()},
        }

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _other(mode: str) -> str:
        return MODE_VANILLA if mode == MODE_BATCH else MODE_BATCH

    def _evaluate(self) -> None:
        if self._recorded < self._cooldown_until:
            return
        active_p99 = self.p99(self.mode)
        other_p99 = self.p99(self._other(self.mode))
        if active_p99 is None or other_p99 is None:
            return
        if active_p99 > other_p99 * self.config.margin:
            self._flip(active_p99, other_p99)

    def _flip(self, active_p99: float, other_p99: float) -> None:
        new_mode = self._other(self.mode)
        self.flips.append({
            "seq": self._recorded,
            "from": self.mode,
            "to": new_mode,
            "loser_p99_ms": round(active_p99, 3),
            "winner_p99_ms": round(other_p99, 3),
        })
        self.mode = new_mode
        self._cooldown_until = self._recorded + self.config.cooldown
        # Stale evidence must not trigger an instant flip-back: both
        # windows restart and must refill past min_samples.
        for window in self._window.values():
            window.clear()
