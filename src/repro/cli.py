"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------
``compare``       run the four schedulers on a workload, print summary +
                  latency CDFs and reduction tables.
``chaos``         replay a deterministic fault plan against the four
                  schedulers with retries on; print goodput / retry
                  amplification / tail-latency tables.
``sweep``         sweep FaaSBatch's dispatch interval (the §V-B5 study).
``trace``         generate a workload trace and write it to CSV;
                  ``trace summarize`` reduces an exported span trace
                  (``--trace out.jsonl``) to per-stage latency tables;
                  ``trace export --format chrome`` converts it to a
                  Perfetto/Chrome ``trace.json``;
                  ``trace critical-path`` prints the dominant-stage
                  attribution table.
``report``        run the four schedulers (or load an exported trace) and
                  write one self-contained HTML comparison report with
                  inline SVG charts.
``sample-azure``  write small sample files in the real Azure trace format.
``replay-azure``  replay real (or sample) Azure trace files.
``bench``         measure simulator performance (incremental vs legacy
                  CPU engine) on a large tiled scenario; write
                  BENCH_sim.json.
``serve``         run the live asyncio HTTP gateway (real FaaSBatch
                  dispatch windows, admission control, degradation
                  monitor) over the demo function set.
``loadgen``       drive seeded open-loop load cells at a fresh gateway
                  stack per policy; write the ``gateway_cells`` bench
                  artifact, the record stream, and the HTML report.

Experiment commands accept ``--trace PATH`` to record every invocation's
span timeline (queued / cold-start / dispatched / executing / responding)
plus the 1 Hz telemetry series, and export them as JSON Lines for
``trace summarize`` / ``trace export`` / ``trace critical-path`` /
``report --input`` or external tooling.

Examples::

    python -m repro compare --workload io --total 200 --trace spans.jsonl
    python -m repro chaos --plan plan.json --trace chaos.jsonl
    python -m repro trace summarize spans.jsonl
    python -m repro trace export spans.jsonl --out trace.json
    python -m repro trace critical-path spans.jsonl
    python -m repro report --workload io --total 200 --out report.html
    python -m repro sweep --workload io --windows 10,100,200,500
    python -m repro trace --workload cpu --total 800 --out replay.csv
    python -m repro sample-azure --dir ./azure-sample
    python -m repro replay-azure --dir ./azure-sample --top 3
    python -m repro bench --invocations 50000 --out BENCH_sim.json
    python -m repro serve --policy faasbatch --port 8080
    python -m repro loadgen --rps 2000 --duration 5 --out BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import SchedulerComparison, latency_cdf_tables
from repro.analysis.breakdown import (
    attempt_latency_table,
    check_trace_invariants,
)
from repro.baselines import (
    DEFAULT_SCHEDULERS,
    KrakenParameters,
    SchedulerBuild,
    build_scheduler,
    parse_scheduler_names,
    policy_info,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import SampleStats
from repro.common.tables import render_table
from repro.core import FaaSBatchConfig, FaaSBatchScheduler
from repro.faults import FaultPlan, ResiliencePolicy, reference_plan
from repro.obs import (
    Observability,
    InvocationTracer,
    TimeSeriesSampler,
    load_jsonl,
    series_records,
    span_records,
    tracer_records,
    write_jsonl,
    write_series_jsonl,
)
from repro.obs.critical_path import analyze, critical_path_table
from repro.obs.export import (
    chrome_trace,
    dump_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.report import write_report as write_html_report
from repro.platformsim import ExperimentResult, run_experiment
from repro.workload import (
    cpu_workload_trace,
    fib_function_spec,
    io_function_spec,
    io_workload_trace,
)
from repro.workload.azurefile import (
    MINUTES_PER_DAY,
    AzureTraceBuilder,
    write_sample_files,
)

DEFAULT_TOTALS = {"cpu": 800, "io": 400}


def _workload(name: str, total: Optional[int], seed: int):
    """Return (trace, [spec]) for the named paper workload."""
    size = total if total is not None else DEFAULT_TOTALS[name]
    if name == "cpu":
        return cpu_workload_trace(seed=seed, total=size), \
            [fib_function_spec()]
    return io_workload_trace(seed=seed, total=size), [io_function_spec()]


def _obs(tracing: bool) -> Optional[Observability]:
    # Tracing runs export JSONL containing spans AND the sampled telemetry
    # series, so a --trace file feeds every downstream consumer (summarize,
    # export, critical-path, report) without a second run.
    return Observability(tracing=True, sampling=True) if tracing else None


def _selected_schedulers(args: argparse.Namespace) -> Tuple[str, ...]:
    """Canonical registry keys for the run's ``--schedulers`` selection.

    Raises :class:`ConfigurationError` (one line, listing the registered
    policies) on an unknown name; commands catch it and exit 2.
    """
    text = getattr(args, "schedulers", None)
    if text is None:
        return DEFAULT_SCHEDULERS
    return parse_scheduler_names(text)


def _run_schedulers(names: Sequence[str], trace, specs, window_ms: float,
                    label: str, tracing: bool = False,
                    fault_plan: Optional[FaultPlan] = None,
                    resilience: Optional[ResiliencePolicy] = None,
                    window_policy: str = "fixed"
                    ) -> List[ExperimentResult]:
    """Run the selected registry policies, in order, over one workload.

    Kraken's parameters are derived from the Vanilla run of the same
    selection ("we take the 98-percentile latency of each function
    obtained by the Vanilla strategy as the function SLO"); when Kraken is
    selected without Vanilla, a hidden Vanilla profiling run supplies them
    without appearing in the results.
    """
    def run(scheduler):
        return run_experiment(scheduler, trace, specs, workload_label=label,
                              obs=_obs(tracing), fault_plan=fault_plan,
                              resilience=resilience)

    build = SchedulerBuild(window_ms=window_ms, window_policy=window_policy)
    results: List[ExperimentResult] = []
    profile: Optional[ExperimentResult] = None

    def vanilla_profile() -> ExperimentResult:
        nonlocal profile
        if profile is None:
            profile = next((r for r in results
                            if r.scheduler_name == "Vanilla"), None)
        if profile is None:
            profile = run(build_scheduler("vanilla", build))
        return profile

    for name in names:
        scheduler_build = build
        if policy_info(name).needs_vanilla_profile:
            params = KrakenParameters.from_invocations(
                vanilla_profile().successful_invocations())
            scheduler_build = replace(build, kraken_parameters=params)
        results.append(run(build_scheduler(name, scheduler_build)))
    return results


LabeledRun = Tuple[str, InvocationTracer, Optional[TimeSeriesSampler]]


def _export_span_traces(path, labeled: Sequence[LabeledRun]) -> int:
    """Validate and write every run's spans + series to one JSONL file."""
    total = 0
    with open(path, "w") as handle:
        for name, tracer, sampler in labeled:
            check_trace_invariants(tracer)
            total += write_jsonl(handle, tracer, extra={"scheduler": name})
            if sampler is not None:
                total += write_series_jsonl(handle, sampler,
                                            extra={"scheduler": name})
    return total


def _labeled_runs(results: Sequence[ExperimentResult]) -> List[LabeledRun]:
    return [(r.scheduler_name, r.trace, r.sampler) for r in results]


def _run_records(labeled: Sequence[LabeledRun]) -> List[Dict[str, object]]:
    """The in-memory record stream a --trace export would have written."""
    records: List[Dict[str, object]] = []
    for name, tracer, sampler in labeled:
        check_trace_invariants(tracer)
        records.extend(tracer_records(tracer, extra={"scheduler": name}))
        if sampler is not None:
            records.extend(series_records(sampler,
                                          extra={"scheduler": name}))
    return records


def _read_trace_records(path) -> Optional[List[Dict[str, object]]]:
    """Load a JSONL trace for a subcommand; prints errors, None on failure."""
    try:
        records, skipped = load_jsonl(path)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None
    if skipped:
        print(f"warning: skipped {skipped} truncated trailing line in "
              f"{path}", file=sys.stderr)
    return records


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        names = _selected_schedulers(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    trace, specs = _workload(args.workload, args.total, args.seed)
    print(f"Running {len(names)} schedulers over {len(trace)} "
          f"{args.workload} invocations (window {args.window} ms)...")
    results = _run_schedulers(names, trace, specs, args.window,
                              args.workload,
                              tracing=args.trace is not None,
                              window_policy=args.window_policy)
    if args.trace is not None:
        lines = _export_span_traces(args.trace, _labeled_runs(results))
        print(f"Wrote {lines} span/event/series records to {args.trace}")
    rows = [result.summary_row() for result in results]
    print(render_table(ExperimentResult.SUMMARY_HEADERS, rows,
                       title="Scheduler summary"))
    if args.cdfs:
        for panel, (headers, table_rows) in \
                latency_cdf_tables(results).items():
            print(render_table(headers, table_rows,
                               title=f"{panel} latency CDF"))
    # The reduction table is defined relative to FaaSBatch; it only makes
    # sense when FaaSBatch is in the selection with something to beat.
    if len(results) > 1 and any(r.scheduler_name == "FaaSBatch"
                                for r in results):
        comparison = SchedulerComparison(results)
        print(render_table(comparison.REDUCTION_HEADERS,
                           comparison.reduction_table(),
                           title="Reductions achieved by FaaSBatch"))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.plan is not None:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError) as error:
            print(f"error: cannot load fault plan {args.plan}: {error}",
                  file=sys.stderr)
            return 2
    else:
        plan = reference_plan(seed=args.seed)
    try:
        names = _selected_schedulers(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    policy = ResiliencePolicy(max_attempts=args.max_attempts,
                              backoff_base_ms=args.backoff_ms,
                              seed=args.seed)
    trace, specs = _workload(args.workload, args.total, args.seed)
    print(f"Chaos run: {plan.fault_count()} planned faults (seed "
          f"{plan.seed}) over {len(trace)} {args.workload} invocations, "
          f"retries up to {policy.max_attempts} attempts...")
    results = _run_schedulers(names, trace, specs, args.window,
                              args.workload,
                              tracing=args.trace is not None,
                              fault_plan=plan, resilience=policy)
    if args.trace is not None:
        lines = _export_span_traces(args.trace, _labeled_runs(results))
        print(f"Wrote {lines} span/event/annotation records to {args.trace}")
    headers, rows = attempt_latency_table(results)
    print(render_table(headers, rows,
                       title="Resilience under the fault plan"))
    worst = min(results, key=lambda r: r.goodput())
    if worst.goodput() < 1.0:
        print(f"warning: {worst.scheduler_name} finished at "
              f"{worst.goodput() * 100.0:.1f}% goodput "
              f"({worst.failure_count} invocations exhausted retries)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    trace, specs = _workload(args.workload, args.total, args.seed)
    windows = [float(w) for w in args.windows.split(",")]
    rows = []
    traced: List[LabeledRun] = []
    for window_ms in windows:
        scheduler = FaaSBatchScheduler(FaaSBatchConfig(window_ms=window_ms))
        result = run_experiment(scheduler, trace, specs,
                                workload_label=args.workload,
                                window_ms=window_ms,
                                obs=_obs(args.trace is not None))
        if args.trace is not None:
            traced.append((f"FaaSBatch[{window_ms:g}ms]", result.trace,
                           result.sampler))
        stats = result.latency_stats()
        rows.append([window_ms / 1000.0, result.provisioned_containers,
                     round(result.average_memory_mb(), 1),
                     round(stats.median, 1),
                     round(stats.percentile(98.0), 1)])
    if args.trace is not None:
        lines = _export_span_traces(args.trace, traced)
        print(f"Wrote {lines} span/event/series records to {args.trace}")
    print(render_table(
        ["window_s", "containers", "avg_mem_MB", "p50_ms", "p98_ms"], rows,
        title=f"FaaSBatch dispatch-interval sweep ({args.workload})"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.out is None:
        print("error: --out is required when generating a trace",
              file=sys.stderr)
        return 2
    trace, _specs = _workload(args.workload, args.total, args.seed)
    trace.to_csv(args.out)
    print(f"Wrote {len(trace)} records to {args.out}")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    records = _read_trace_records(args.input)
    if records is None:
        return 2
    if not records:
        print(f"{args.input} is empty; nothing to summarize")
        return 0
    spans = span_records(records)
    if not spans:
        print(f"error: no span records in {args.input}", file=sys.stderr)
        return 2
    # (scheduler, stage) → duration samples, insertion-ordered.
    groups: Dict[Tuple[str, str], SampleStats] = {}
    invocations: Dict[str, set] = {}
    for span in spans:
        scheduler = str(span.get("scheduler", "-"))
        key = (scheduler, str(span["stage"]))
        groups.setdefault(key, SampleStats()).add(
            float(span["end_ms"]) - float(span["start_ms"]))
        invocations.setdefault(scheduler, set()).add(span["invocation_id"])
    rows = [[scheduler, stage, stats.count,
             round(stats.mean, 2), round(stats.median, 2),
             round(stats.percentile(98.0), 2), round(stats.total, 1)]
            for (scheduler, stage), stats in groups.items()]
    print(render_table(
        ["scheduler", "stage", "count", "mean_ms", "p50_ms", "p98_ms",
         "total_ms"],
        rows, title=f"Span summary ({args.input})"))
    events = len(records) - len(spans)
    per_scheduler = ", ".join(f"{name}: {len(ids)}"
                              for name, ids in invocations.items())
    print(f"{len(spans)} spans over {per_scheduler} invocations; "
          f"{events} other records (container events/annotations/series)")
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    records = _read_trace_records(args.input)
    if records is None:
        return 2
    if not records:
        print(f"error: no records in {args.input}", file=sys.stderr)
        return 2
    payload = chrome_trace(records)
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    events = dump_chrome_trace(args.out, payload)
    print(f"Wrote {events} trace events to {args.out} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")
    return 0


def cmd_trace_critical_path(args: argparse.Namespace) -> int:
    records = _read_trace_records(args.input)
    if records is None:
        return 2
    summaries = analyze(records)
    if not summaries:
        print(f"error: no span records in {args.input}", file=sys.stderr)
        return 2
    headers, rows = critical_path_table(summaries)
    print(render_table(headers, rows,
                       title=f"Critical-path attribution ({args.input})"))
    for scheduler in sorted(summaries):
        summary = summaries[scheduler]
        dominant = max(summary.dominant_counts,
                       key=summary.dominant_counts.get)
        print(f"{scheduler}: {dominant} dominates "
              f"{summary.dominant_fraction(dominant):.1%} of "
              f"{summary.count} invocations "
              f"(p99 {summary.p99_ms:.1f} ms over {summary.tail_count} "
              f"tail invocations)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.input is not None:
        records = _read_trace_records(args.input)
        if records is None:
            return 2
        if not records:
            print(f"error: no records in {args.input}", file=sys.stderr)
            return 2
        title = f"FaaSBatch scheduler comparison ({args.input})"
    else:
        try:
            names = _selected_schedulers(args)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        trace, specs = _workload(args.workload, args.total, args.seed)
        print(f"Running {len(names)} schedulers over {len(trace)} "
              f"{args.workload} invocations (window {args.window} ms)...")
        results = _run_schedulers(names, trace, specs, args.window,
                                  args.workload, tracing=True)
        records = _run_records(_labeled_runs(results))
        title = (f"FaaSBatch scheduler comparison — {args.workload} "
                 f"workload, {len(trace)} invocations, seed {args.seed}")
    byte_count = write_html_report(args.out, records, title=title)
    print(f"Wrote {byte_count} bytes to {args.out}")
    if args.chrome is not None:
        events = dump_chrome_trace(args.chrome, chrome_trace(records))
        print(f"Wrote {events} trace events to {args.chrome}")
    return 0


def _cmd_bench_cell(args: argparse.Namespace) -> int:
    """``repro bench --cell NAME``: one sharded cluster replay."""
    from repro.bench import cluster_report, run_cluster_cell, write_report
    # Shard subprocesses inherit os.environ, so the queue knob reaches
    # every shard's Environment through the selection env var.
    os.environ["REPRO_SIM_QUEUE"] = args.queue
    row = run_cluster_cell(args.cell, log=print,
                           isolate=not args.inline,
                           shards=args.shards, workers=args.workers)
    write_report(cluster_report([row]), args.out)
    config = row["config"]
    latency = row["latency_ms"]
    headers = ["cell", "inv", "workers", "shards", "wall_s", "inv/s",
               "max_shard_rss_MB", "p50_ms", "p99_ms", "imbalance"]
    table_row = [row["cell"], row["invocations"], config["workers"],
                 config["shards"], row["wall_clock_s"],
                 row["invocations_per_sec"], row["max_shard_rss_mb"],
                 latency["p50"], latency["p99"], row["load_imbalance"]]
    print(render_table(headers, [table_row], title="Sharded cluster replay"))
    for shard in row["per_shard"]:
        print(f"  shard {shard['shard']}: {shard['submitted']} invocations, "
              f"{shard['wall_clock_s']} s, peak rss "
              f"{shard['peak_rss_mb']} MB")
    exact = "exact" if latency.get("exact") else "histogram-approximated"
    print(f"Merged latency sample: {exact}; report written to {args.out}")
    if row.get("obs") is not None:
        print(f"Merged telemetry: {len(row['obs']['counters'])} counters, "
              f"{len(row['obs']['histograms'])} histograms (order-"
              "independent shard merge)")
    if getattr(args, "report", None):
        record = {"type": "cluster-obs", "cell": row["cell"],
                  "shards": config["shards"], "obs": row.get("obs")}
        byte_count = write_html_report(
            args.report, [record],
            title=f"FaaSBatch sharded cluster — {row['cell']} cell")
        print(f"Wrote {byte_count} bytes to {args.report}")
    return 0


def _cmd_bench_windows(args: argparse.Namespace, config) -> int:
    """``repro bench --window-cells``: fixed-vs-adaptive FaaSBatch cells."""
    from repro.bench import run_window_cells, window_report, write_report
    rows = run_window_cells(config, log=print, isolate=not args.inline,
                            parallel=args.parallel)
    write_report(window_report(config, rows), args.out)
    headers = ["window_policy", "inv", "goodput", "p50_ms", "p95_ms",
               "p99_ms", "containers", "sim_completion_ms"]
    table = [[r["cell"], r["invocations"], r["goodput"],
              r["latency_ms"]["p50"], r["latency_ms"]["p95"],
              r["latency_ms"]["p99"], r["containers"],
              r["sim_completion_ms"]] for r in rows]
    print(render_table(headers, table,
                       title="FaaSBatch window sizing (fixed vs adaptive)"))
    by_cell = {r["cell"]: r for r in rows}
    if {"fixed", "adaptive"} <= by_cell.keys():
        fixed_p99 = by_cell["fixed"]["latency_ms"]["p99"]
        adaptive_p99 = by_cell["adaptive"]["latency_ms"]["p99"]
        delta = (fixed_p99 - adaptive_p99) / fixed_p99 * 100.0
        print(f"Adaptive p99 vs fixed: {adaptive_p99:g} ms vs "
              f"{fixed_p99:g} ms ({delta:+.1f}% lower)")
    print(f"Wrote {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import BenchConfig, run_bench, write_report
    if args.cell:
        return _cmd_bench_cell(args)
    config = BenchConfig(invocations=args.invocations,
                         functions=args.functions,
                         seed=args.seed, window_ms=args.window,
                         tile_invocations=args.tile_invocations,
                         queue=args.queue)
    if args.window_cells:
        return _cmd_bench_windows(args, config)
    try:
        report = run_bench(config, skip_legacy=args.skip_legacy, log=print,
                           isolate=not args.inline, parallel=args.parallel,
                           profile_top=(args.profile_top if args.profile
                                        else 0),
                           schedulers=args.schedulers)
    except (ConfigurationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    write_report(report, args.out)
    headers = ["scheduler", "engine", "wall_s", "events/s", "inv/s",
               "peak_rss_MB"]
    rows = [[r["scheduler"], r["engine"], r["wall_clock_s"],
             r["events_per_sec"], r["invocations_per_sec"],
             r["peak_rss_mb"]] for r in report["runs"]]
    title = "Simulator performance"
    if report["isolation"] == "inline":
        title += " (inline: RSS is process-wide)"
    if args.profile:
        title += " (profiled: wall-clocks inflated)"
    print(render_table(headers, rows, title=title))
    speedup = report["speedup"]
    if speedup is not None:
        pairs = ", ".join(f"{name} {ratio:g}x" for name, ratio
                          in speedup["per_scheduler"].items())
        print(f"Incremental-engine speedup: {pairs} "
              f"(overall {speedup['overall_wall_clock']:g}x)")
    overhead = report.get("obs_overhead") or {}
    if overhead:
        print(f"Observability overhead: "
              f"{overhead['wall_clock_ratio']:g}x wall clock "
              f"(tracing + sampling on)")
    baseline = report.get("baseline")
    if baseline is not None:
        aggregate = baseline["aggregate_events_per_sec"]
        print(f"Vs committed baseline: {aggregate['speedup']:g}x mean "
              f"events/sec over the {aggregate['cells']} incremental cells "
              f"({aggregate['all_cells_speedup']:g}x over all "
              f"{aggregate['all_cells']} shared cells)")
    if args.profile:
        for row in report["runs"]:
            top = row.get("profile_top")
            if not top:
                continue
            print(render_table(
                ["function", "ncalls", "tottime_s", "cumtime_s"],
                [[h["function"], h["ncalls"], h["tottime_s"],
                  h["cumtime_s"]] for h in top],
                title=f"Hotspots: {row['scheduler']}/{row['engine']}"))
    print(f"Wrote {args.out}")
    return 0


def _parse_mix(text: str) -> Dict[str, float]:
    """``"io=0.6,echo=0.4"`` -> ``{"io": 0.6, "echo": 0.4}``."""
    mix: Dict[str, float] = {}
    for part in text.split(","):
        name, _, weight = part.partition("=")
        if not name.strip() or not weight.strip():
            raise ValueError(f"bad mix entry {part!r} (want name=weight)")
        mix[name.strip()] = float(weight)
    return mix


def _gateway_cell_specs(args: argparse.Namespace) -> list:
    """Translate loadgen CLI flags to one CellSpec per requested policy."""
    from repro.gateway import AdmissionConfig, CellSpec, LoadgenConfig

    mix = _parse_mix(args.mix)
    admission = AdmissionConfig(max_queue_depth=args.max_queue_depth,
                                max_inflight=args.max_inflight,
                                shed_policy=args.shed_policy)
    timeout = args.request_timeout if args.request_timeout > 0 else None
    load = LoadgenConfig(rps=args.rps, duration_seconds=args.duration,
                         seed=args.seed, mix=mix,
                         max_connections=args.connections)
    specs = []
    for policy in args.policies.split(","):
        policy = policy.strip()
        phases = ()
        if policy == "adaptive":
            # Shape-shifting traffic so the degradation monitor has
            # something to react to: io-heavy (batching wins), echo-only
            # (the window is pure tax), io-heavy again (recovery).
            third = args.duration / 3.0
            phases = tuple(
                LoadgenConfig(rps=args.rps, duration_seconds=third,
                              seed=args.seed + index, mix=phase_mix,
                              max_connections=args.connections)
                for index, phase_mix in enumerate(
                    ({"io": 0.7, "echo": 0.3}, {"echo": 1.0},
                     {"io": 0.7, "echo": 0.3})))
        specs.append(CellSpec(
            label=policy, policy=policy, load=load, phases=phases,
            transport=args.transport,
            window_seconds=args.window_ms / 1000.0,
            deadline_seconds=args.deadline,
            admission=admission,
            request_timeout_seconds=timeout))
    return specs


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the live gateway until interrupted."""
    import asyncio

    from repro.gateway import (
        AdmissionConfig,
        DegradationConfig,
        DEMO_FUNCTIONS,
        Gateway,
        GatewayConfig,
        GatewayServer,
        demo_platform,
    )
    from repro.local import LocalPlatformConfig
    from repro.obs import Observability, RotatingJsonlWriter, TraceStreamer

    async def serve() -> int:
        obs = Observability(tracing=args.trace is not None)
        platform = demo_platform(LocalPlatformConfig(
            policy="faasbatch" if args.policy != "vanilla" else "vanilla",
            window_seconds=(0.0 if args.policy == "vanilla"
                            else args.window_ms / 1000.0),
            use_multiplexer=args.policy != "vanilla",
            container_concurrency=(1 if args.policy == "vanilla" else None),
            request_timeout_seconds=None),
            obs=obs)
        gateway = Gateway(platform, GatewayConfig(
            policy="vanilla" if args.policy == "vanilla" else "faasbatch",
            window_seconds=(0.0 if args.policy == "vanilla"
                            else args.window_ms / 1000.0),
            seed=args.seed,
            admission=AdmissionConfig(max_queue_depth=args.max_queue_depth,
                                      max_inflight=args.max_inflight,
                                      shed_policy=args.shed_policy),
            degradation=DegradationConfig(
                enabled=args.policy == "adaptive")))
        server = GatewayServer(gateway, host=args.host, port=args.port)
        await server.start()
        streamer = None
        pump = None
        if args.trace is not None:
            streamer = TraceStreamer(
                obs.tracer,
                RotatingJsonlWriter(args.trace),
                extra={"scheduler": args.policy},
                lock=platform.obs_lock)

            async def pump_spans() -> None:
                while True:
                    await asyncio.sleep(1.0)
                    streamer.poll()

            pump = asyncio.get_event_loop().create_task(pump_spans())
            print(f"Streaming spans to {args.trace} (rotated JSONL)")
        print(f"Serving {args.policy} gateway on "
              f"http://{server.host}:{server.port}")
        print(f"Functions: {', '.join(DEMO_FUNCTIONS)} "
              f"(POST /invoke/<name>; GET /healthz /stats /metrics)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if pump is not None:
                pump.cancel()
            await server.stop()
            await asyncio.get_event_loop().run_in_executor(
                None, platform.shutdown)
            if streamer is not None:
                written = streamer.close()
                print(f"Trace stream closed ({written} final records)")
        return 0

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nInterrupted; gateway stopped.")
        return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: drive seeded open-loop load cells, write artifacts."""
    import asyncio

    from repro.gateway import run_cell

    try:
        specs = _gateway_cell_specs(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    trace_writer = None
    if args.trace is not None:
        from repro.obs import RotatingJsonlWriter
        trace_writer = RotatingJsonlWriter(args.trace)

    async def drive() -> list:
        from repro.analysis.breakdown import check_trace_invariants
        from repro.obs import (
            Observability,
            WALL_TIME_TOLERANCE_MS,
            tracer_records,
        )
        results = []
        for spec in specs:
            total = (sum(p.duration_seconds for p in spec.phases)
                     or spec.load.duration_seconds)
            print(f"Cell {spec.label}: {spec.load.rps:g} rps for "
                  f"{total:g}s over {spec.transport} "
                  f"(seed {spec.load.seed})...")
            obs = (Observability(tracing=True)
                   if trace_writer is not None else None)
            results.append(await run_cell(spec, obs=obs))
            if obs is not None:
                # Gateway spans are wall-clock stamped — validate with the
                # wall tolerance, not the simulator's (see Span docs).
                check_trace_invariants(
                    obs.tracer, tolerance_ms=WALL_TIME_TOLERANCE_MS)
                for record in tracer_records(
                        obs.tracer, extra={"scheduler": spec.label}):
                    trace_writer.write(record)
        return results

    results = asyncio.run(drive())
    if trace_writer is not None:
        trace_writer.close()
        print(f"Wrote {trace_writer.lines_written} trace records to "
              f"{args.trace}")
    headers = ["cell", "requests", "goodput_rps", "goodput", "p50_ms",
               "p99_ms", "shed", "flips", "final_mode"]
    rows = []
    for result in results:
        cell = result.cell()
        latency = cell["latency_ms"]
        rows.append([cell["cell"], cell["requests"], cell["goodput_rps"],
                     f"{cell['goodput_ratio']:.1%}",
                     latency.get("p50", "-"), latency.get("p99", "-"),
                     cell["shed"], len(cell["mode_flips"]),
                     cell["final_mode"] or "-"])
    print(render_table(headers, rows, title="Gateway load cells"))
    if args.out is not None:
        from repro.bench import gateway_report, write_report
        write_report(gateway_report([r.cell() for r in results]), args.out)
        print(f"Wrote {args.out}")
    records = [record for result in results
               for record in result.report_records()]
    if args.records is not None:
        import json
        with open(args.records, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"Wrote {len(records)} gateway records to {args.records}")
    if args.report is not None:
        byte_count = write_html_report(
            args.report, records,
            title=(f"FaaSBatch live gateway — {args.rps:g} rps x "
                   f"{args.duration:g}s, seed {args.seed}"))
        print(f"Wrote {byte_count} bytes to {args.report}")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """``repro slo``: evaluate SLO specs; ``--check`` gates on the result."""
    import json

    from repro.common.errors import ConfigurationError
    from repro.obs.slo import (
        default_specs,
        evaluate_artifact,
        evaluate_records,
        load_specs,
        slo_table,
    )
    from repro.obs.trace import read_jsonl

    if not args.artifacts and not args.records:
        print("error: need at least one artifact or --records file",
              file=sys.stderr)
        return 2
    try:
        specs = (load_specs(args.spec) if args.spec is not None
                 else default_specs())
    except (ConfigurationError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = []
    for path in args.artifacts:
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        if not isinstance(report, dict):
            print(f"error: {path} is not a report object", file=sys.stderr)
            return 2
        results.extend(evaluate_artifact(report, specs,
                                         target_prefix=f"{path}:"))
        if args.annotate:
            from repro.obs.slo import annotate_report
            annotate_report(report, specs)
            with open(path, "w") as handle:
                json.dump(report, handle, indent=1)
                handle.write("\n")
            print(f"Annotated {path} with per-cell slo blocks")
    for path in args.records:
        try:
            records = read_jsonl(path)
        except (OSError, ValueError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        results.extend(evaluate_records(records, specs,
                                        target_prefix=f"{path}:"))
    headers, rows = slo_table(results)
    print(render_table(headers, rows, title="SLO evaluation"))
    failed = [r for r in results if not r.ok]
    if not results:
        print("No SLO specs matched the given inputs.")
    elif failed:
        print(f"{len(failed)} of {len(results)} SLO evaluations FAILED")
    else:
        print(f"All {len(results)} SLO evaluations passed.")
    if args.check and (failed or not results):
        return 1
    return 0


def cmd_sample_azure(args: argparse.Namespace) -> int:
    invocations_path, durations_path = write_sample_files(
        args.dir, functions=args.functions, seed=args.seed)
    print(f"Wrote {invocations_path}")
    print(f"Wrote {durations_path}")
    return 0


def cmd_replay_azure(args: argparse.Namespace) -> int:
    directory = Path(args.dir)
    invocations = args.invocations or next(
        iter(sorted(directory.glob("invocations_per_function*.csv"))), None)
    durations = args.durations or next(
        iter(sorted(directory.glob("function_durations*.csv"))), None)
    if invocations is None or durations is None:
        print("error: could not locate trace files; pass --invocations "
              "and --durations", file=sys.stderr)
        return 2
    builder = AzureTraceBuilder.from_files(invocations, durations,
                                           seed=args.seed)
    keys = builder.hottest_functions(args.top)
    start, end = args.start_minute, args.end_minute
    trace = builder.build_trace(keys, start_minute=start, end_minute=end)
    specs = builder.build_specs(keys)
    try:
        names = _selected_schedulers(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"Replaying {len(trace)} invocations of {len(keys)} hottest "
          f"functions (minutes {start}-{end})...")
    results = _run_schedulers(names, trace, specs, args.window,
                              "azure-file",
                              tracing=args.trace is not None)
    if args.trace is not None:
        lines = _export_span_traces(args.trace, _labeled_runs(results))
        print(f"Wrote {lines} span/event/series records to {args.trace}")
    rows = [result.summary_row() for result in results]
    print(render_table(ExperimentResult.SUMMARY_HEADERS, rows,
                       title="Scheduler summary (Azure trace replay)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--seed", type=int, default=13)

    def add_tracing(p):
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record span timelines and export them as "
                            "JSON Lines to PATH")

    def add_schedulers(p):
        p.add_argument("--schedulers", default=None, metavar="NAMES",
                       help="comma-separated registry names to run "
                            "(default: "
                            f"{','.join(DEFAULT_SCHEDULERS)}; see "
                            "docs/schedulers.md)")

    compare = sub.add_parser("compare",
                             help="run the selected schedulers on a "
                                  "workload (default: the paper's four)")
    compare.add_argument("--workload", choices=("cpu", "io"), default="cpu")
    compare.add_argument("--total", type=int, default=None,
                         help="invocation count (default: paper sizes)")
    compare.add_argument("--window", type=float, default=200.0,
                         help="dispatch window in ms")
    compare.add_argument("--window-policy", choices=("fixed", "adaptive"),
                         default="fixed",
                         help="FaaSBatch window sizing (adaptive shrinks "
                              "the window with the arrival rate)")
    compare.add_argument("--cdfs", action="store_true",
                         help="print the latency CDF panels too")
    add_common(compare)
    add_tracing(compare)
    add_schedulers(compare)
    compare.set_defaults(func=cmd_compare)

    chaos = sub.add_parser(
        "chaos",
        help="replay a fault plan against all four schedulers with retries")
    chaos.add_argument("--plan", default=None, metavar="PATH",
                       help="fault plan JSON (default: built-in reference "
                            "plan)")
    chaos.add_argument("--workload", choices=("cpu", "io"), default="io")
    chaos.add_argument("--total", type=int, default=None,
                       help="invocation count (default: paper sizes)")
    chaos.add_argument("--window", type=float, default=200.0,
                       help="dispatch window in ms")
    chaos.add_argument("--max-attempts", type=int, default=5,
                       help="retry budget per invocation")
    chaos.add_argument("--backoff-ms", type=float, default=50.0,
                       help="base retry backoff in simulated ms")
    add_common(chaos)
    add_tracing(chaos)
    add_schedulers(chaos)
    chaos.set_defaults(func=cmd_chaos)

    sweep = sub.add_parser("sweep", help="sweep the dispatch interval")
    sweep.add_argument("--workload", choices=("cpu", "io"), default="io")
    sweep.add_argument("--total", type=int, default=200)
    sweep.add_argument("--windows", default="10,100,200,500",
                       help="comma-separated window sizes in ms")
    add_common(sweep)
    add_tracing(sweep)
    sweep.set_defaults(func=cmd_sweep)

    trace = sub.add_parser(
        "trace",
        help="write a generated trace to CSV, or summarize a span trace")
    trace.add_argument("--workload", choices=("cpu", "io"), default="cpu")
    trace.add_argument("--total", type=int, default=None)
    trace.add_argument("--out", default=None)
    add_common(trace)
    trace.set_defaults(func=cmd_trace)
    trace_sub = trace.add_subparsers(dest="trace_command")
    summarize = trace_sub.add_parser(
        "summarize",
        help="reduce an exported span trace (JSONL) to per-stage tables")
    summarize.add_argument("input", help="JSONL file written via --trace")
    summarize.set_defaults(func=cmd_trace_summarize)
    export = trace_sub.add_parser(
        "export",
        help="convert an exported span trace to a viewer format")
    export.add_argument("input", help="JSONL file written via --trace")
    export.add_argument("--out", default="trace.json",
                        help="output path (default: trace.json)")
    export.add_argument("--format", choices=("chrome",), default="chrome",
                        help="output format (chrome = Perfetto/"
                             "chrome://tracing trace-event JSON)")
    export.set_defaults(func=cmd_trace_export)
    critical = trace_sub.add_parser(
        "critical-path",
        help="attribute each invocation's latency to its dominant stage")
    critical.add_argument("input", help="JSONL file written via --trace")
    critical.set_defaults(func=cmd_trace_critical_path)

    report = sub.add_parser(
        "report",
        help="write a self-contained HTML comparison report")
    report.add_argument("--workload", choices=("cpu", "io"), default="io")
    report.add_argument("--total", type=int, default=None,
                        help="invocation count (default: paper sizes)")
    report.add_argument("--window", type=float, default=200.0,
                        help="dispatch window in ms")
    report.add_argument("--input", default=None, metavar="PATH",
                        help="render from an exported JSONL trace instead "
                             "of running the schedulers")
    report.add_argument("--out", default="report.html",
                        help="output path (default: report.html)")
    report.add_argument("--chrome", default=None, metavar="PATH",
                        help="also write a Perfetto/Chrome trace.json")
    add_common(report)
    add_schedulers(report)
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench",
        help="measure simulator performance on a large tiled scenario")
    bench.add_argument("--invocations", type=int, default=50_000,
                       help="total arrivals in the tiled scenario")
    bench.add_argument("--functions", type=int, default=8,
                       help="distinct fib-family functions")
    bench.add_argument("--window", type=float, default=200.0,
                       help="dispatch window in ms")
    bench.add_argument("--tile-invocations", type=int, default=4000,
                       help="arrivals per scenario minute (burst density)")
    bench.add_argument("--queue", choices=("calendar", "heap"),
                       default="calendar",
                       help="kernel event-queue implementation to measure")
    bench.add_argument("--cell", default=None, metavar="NAME",
                       help="run a named sharded cluster cell "
                            "(azure-smoke, azure-full) instead of the "
                            "scheduler grid")
    bench.add_argument("--shards", type=int, default=None,
                       help="override the cell's shard count")
    bench.add_argument("--workers", type=int, default=None,
                       help="override the cell's global worker count")
    bench.add_argument("--out", default="BENCH_sim.json",
                       help="report path (JSON)")
    bench.add_argument("--skip-legacy", action="store_true",
                       help="measure only the incremental engine")
    bench.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="run up to N isolated cells concurrently")
    bench.add_argument("--inline", action="store_true",
                       help="run cells in-process (RSS becomes a "
                            "process-wide high-water mark)")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile each cell and embed/print top "
                            "hotspots (inflates wall-clocks)")
    bench.add_argument("--profile-top", type=int, default=15,
                       metavar="N", help="hotspot rows per cell with "
                                         "--profile (default: 15)")
    bench.add_argument("--window-cells", action="store_true",
                       help="measure FaaSBatch fixed-vs-adaptive window "
                            "sizing instead of the scheduler grid")
    bench.add_argument("--report", default=None, metavar="PATH",
                       help="with --cell: also write an HTML report with "
                            "the merged cluster telemetry panel")
    add_schedulers(bench)
    add_common(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the live HTTP gateway over the demo functions")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--policy",
                       choices=("faasbatch", "vanilla", "adaptive"),
                       default="faasbatch")
    serve.add_argument("--window-ms", type=float, default=10.0,
                       help="dispatch window in wall-clock ms")
    serve.add_argument("--max-queue-depth", type=int, default=2048,
                       help="per-function pending cap before shedding")
    serve.add_argument("--max-inflight", type=int, default=8192,
                       help="global in-flight request cap")
    serve.add_argument("--shed-policy", choices=("newest", "oldest"),
                       default="newest")
    serve.add_argument("--seed", type=int, default=0,
                       help="request-id seed (ids are req-<seed hex>-<n>)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="stream live spans to a rotating JSONL trace "
                            "file (readable by 'repro trace summarize')")
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive seeded open-loop load at a fresh gateway stack")
    loadgen.add_argument("--rps", type=float, default=1000.0,
                         help="offered arrival rate per cell")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="seconds of offered load per cell")
    loadgen.add_argument("--policies", default="faasbatch,vanilla",
                         help="comma-separated cells to run "
                              "(faasbatch, vanilla, adaptive)")
    loadgen.add_argument("--transport", choices=("inproc", "http"),
                         default="inproc")
    loadgen.add_argument("--mix", default="io=0.1,echo=0.9",
                         help="traffic mix as name=weight pairs")
    loadgen.add_argument("--window-ms", type=float, default=10.0,
                         help="dispatch window in wall-clock ms")
    loadgen.add_argument("--deadline", type=float, default=10.0,
                         help="per-request gateway deadline in seconds")
    loadgen.add_argument("--request-timeout", type=float, default=0.0,
                         help="platform handler timeout in seconds "
                              "(0 = off)")
    loadgen.add_argument("--max-queue-depth", type=int, default=2048)
    loadgen.add_argument("--max-inflight", type=int, default=8192)
    loadgen.add_argument("--shed-policy", choices=("newest", "oldest"),
                         default="newest")
    loadgen.add_argument("--connections", type=int, default=32,
                         help="http transport: keep-alive pool size")
    loadgen.add_argument("--out", default=None, metavar="PATH",
                         help="write a gateway_cells bench artifact "
                              "(schema v4 JSON)")
    loadgen.add_argument("--records", default=None, metavar="PATH",
                         help="write the gateway record stream as JSONL")
    loadgen.add_argument("--report", default=None, metavar="PATH",
                         help="write the HTML report with gateway panels")
    loadgen.add_argument("--trace", default=None, metavar="PATH",
                         help="record per-cell spans to a rotating JSONL "
                              "trace file (wall-clock timestamps)")
    add_common(loadgen)
    loadgen.set_defaults(func=cmd_loadgen)

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO specs against bench artifacts and gateway "
             "records")
    slo.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                     help="bench artifact JSON files (any schema vintage)")
    slo.add_argument("--spec", default=None, metavar="PATH",
                     help="SLO spec file ({'slos': [...]}; default: the "
                          "built-in gate)")
    slo.add_argument("--records", action="append", default=[],
                     metavar="PATH",
                     help="loadgen record JSONL for sliding-window burn "
                          "checks (repeatable)")
    slo.add_argument("--annotate", action="store_true",
                     help="rewrite each artifact with per-cell slo blocks "
                          "(schema v6)")
    slo.add_argument("--check", action="store_true",
                     help="exit nonzero if any check fails")
    slo.set_defaults(func=cmd_slo)

    sample = sub.add_parser("sample-azure",
                            help="write sample Azure-format trace files")
    sample.add_argument("--dir", required=True)
    sample.add_argument("--functions", type=int, default=5)
    add_common(sample)
    sample.set_defaults(func=cmd_sample_azure)

    replay = sub.add_parser("replay-azure",
                            help="replay real Azure trace files")
    replay.add_argument("--dir", default=".",
                        help="directory to search for the trace files")
    replay.add_argument("--invocations", default=None)
    replay.add_argument("--durations", default=None)
    replay.add_argument("--top", type=int, default=3,
                        help="replay the K hottest functions")
    replay.add_argument("--start-minute", type=int, default=0)
    replay.add_argument("--end-minute", type=int, default=MINUTES_PER_DAY)
    replay.add_argument("--window", type=float, default=200.0)
    add_common(replay)
    add_tracing(replay)
    add_schedulers(replay)
    replay.set_defaults(func=cmd_replay_azure)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
