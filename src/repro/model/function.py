"""Function and invocation model, with the paper's latency breakdown.

The paper decomposes *invocation latency* into four parts (§IV, "Evaluation
Metrics"): scheduling latency, cold-start latency, queuing latency and
execution latency.  :class:`Invocation` carries exactly those marks; the
platform and containers stamp them as the invocation flows through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import SchedulingError
from repro.model.workprofile import WorkProfile


class FunctionKind(enum.Enum):
    """Workload class of a function (the paper evaluates both)."""

    CPU = "cpu"
    IO = "io"


@dataclass(frozen=True)
class FunctionSpec:
    """A registered serverless function.

    ``profile_factory`` builds the work profile of one invocation; it takes
    the invocation's payload (an opaque object from the workload generator,
    e.g. the fib ``N``) and returns a :class:`WorkProfile`.
    """

    function_id: str
    kind: FunctionKind
    profile_factory: Callable[[object], WorkProfile]
    #: CPU cores the customer's resource limit grants a container of this
    #: function (docker ``cpu_count`` / ``cpuset_cpus`` in §III-C).
    cpu_limit: Optional[float] = None
    #: Extra per-container memory for this function's code and deps.
    code_memory_mb: float = 0.0

    def build_profile(self, payload: object) -> WorkProfile:
        """Materialise the work profile for one invocation."""
        return self.profile_factory(payload)


class InvocationState(enum.Enum):
    """Lifecycle of one invocation."""

    RECEIVED = "received"
    DISPATCHED = "dispatched"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class LatencyBreakdown:
    """The four latency components of §IV, all in milliseconds.

    ``scheduling_ms`` excludes the cold start, matching the paper: "we
    subtract the cold-start latency from the scheduling latency in our
    evaluation".
    """

    scheduling_ms: float = 0.0
    cold_start_ms: float = 0.0
    queuing_ms: float = 0.0
    execution_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (self.scheduling_ms + self.cold_start_ms
                + self.queuing_ms + self.execution_ms)

    @property
    def execution_plus_queuing_ms(self) -> float:
        """The paper's "Exec+Queue" series (Kraken's penalty, Figs 11c/12c)."""
        return self.execution_ms + self.queuing_ms


@dataclass(frozen=True)
class AttemptRecord:
    """Archived stamps of one failed attempt (preserved across retries)."""

    attempt: int
    arrival_ms: float
    latency: LatencyBreakdown
    dispatched_ms: Optional[float]
    completed_ms: Optional[float]
    container_id: Optional[str]
    error: Optional[str]


@dataclass
class Invocation:
    """One function invocation flowing through the platform."""

    invocation_id: str
    function: FunctionSpec
    payload: object
    arrival_ms: float
    state: InvocationState = InvocationState.RECEIVED
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    container_id: Optional[str] = None
    #: Simulated timestamps stamped as the invocation progresses.
    dispatched_ms: Optional[float] = None
    execution_start_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    #: When the response was returned to the caller.  Under the paper's
    #: batch semantics (§III-C: "the HTTP request is returned to FaaSBatch
    #: only after all invocations of the function group have completed")
    #: this is the *group's* completion time; with the early-return
    #: extension (the paper's future work) it equals ``completed_ms``.
    responded_ms: Optional[float] = None
    error: Optional[BaseException] = None
    #: Resilience bookkeeping: current attempt number (1 = first try),
    #: the original arrival (attempt 1's, never overwritten by retries)
    #: and the archived stamps of every failed earlier attempt.
    attempts: int = 1
    first_arrival_ms: Optional[float] = None
    attempt_history: List[AttemptRecord] = field(default_factory=list)
    #: True when a hedged shadow produced this invocation's result.
    hedged: bool = False

    # -- stamping helpers (called by the platform/container) ---------------------

    def mark_dispatched(self, now_ms: float, cold_start_ms: float) -> None:
        """Invocation handed to its container; split scheduling/cold-start."""
        if self.dispatched_ms is not None:
            raise SchedulingError(
                f"{self.invocation_id} dispatched twice")
        raw_scheduling = now_ms - self.arrival_ms
        if raw_scheduling + 1e-9 < cold_start_ms:
            raise SchedulingError(
                f"{self.invocation_id}: cold start ({cold_start_ms} ms) "
                f"exceeds elapsed scheduling time ({raw_scheduling} ms)")
        self.dispatched_ms = now_ms
        self.latency.scheduling_ms = raw_scheduling - cold_start_ms
        self.latency.cold_start_ms = cold_start_ms
        self.state = InvocationState.DISPATCHED

    def mark_execution_start(self, now_ms: float) -> None:
        """Invocation starts executing; the gap since dispatch was queuing."""
        if self.dispatched_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} started before dispatch")
        self.execution_start_ms = now_ms
        self.latency.queuing_ms = now_ms - self.dispatched_ms
        self.state = InvocationState.RUNNING

    def mark_completed(self, now_ms: float) -> None:
        if self.execution_start_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} completed before starting")
        self.completed_ms = now_ms
        self.latency.execution_ms = now_ms - self.execution_start_ms
        self.state = InvocationState.COMPLETED

    def mark_failed(self, now_ms: float, error: BaseException) -> None:
        self.completed_ms = now_ms
        self.error = error
        self.state = InvocationState.FAILED

    def mark_responded(self, now_ms: float) -> None:
        """The caller received its response (group return or early return)."""
        if self.completed_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} responded before completing")
        if self.responded_ms is not None:
            raise SchedulingError(
                f"{self.invocation_id} responded twice")
        if now_ms + 1e-9 < self.completed_ms:
            raise SchedulingError(
                f"{self.invocation_id} responded before its completion")
        self.responded_ms = now_ms

    @property
    def response_latency_ms(self) -> float:
        """Arrival-to-response latency (what the *caller* experiences)."""
        if self.responded_ms is None:
            raise SchedulingError(f"{self.invocation_id} has no response")
        return self.responded_ms - self.arrival_ms

    @property
    def end_to_end_ms(self) -> float:
        """Arrival-to-completion latency (the paper's invocation latency)."""
        if self.completed_ms is None:
            raise SchedulingError(f"{self.invocation_id} not completed")
        return self.completed_ms - self.arrival_ms

    # -- retry / hedge support (the resilience layer, repro.faults) --------------

    @property
    def trace_id(self) -> str:
        """Unique per-attempt id for span traces (``inv-3`` / ``inv-3#a2``).

        Attempt 1 keeps the bare invocation id, so runs without retries
        export byte-identical traces to pre-resilience builds.
        """
        if self.attempts == 1:
            return self.invocation_id
        return f"{self.invocation_id}#a{self.attempts}"

    @property
    def initial_arrival_ms(self) -> float:
        """Arrival of the *first* attempt (``arrival_ms`` is the current's)."""
        return (self.first_arrival_ms
                if self.first_arrival_ms is not None else self.arrival_ms)

    @property
    def total_response_latency_ms(self) -> float:
        """First-arrival-to-response latency, retries and backoffs included."""
        if self.responded_ms is None:
            raise SchedulingError(f"{self.invocation_id} has no response")
        return self.responded_ms - self.initial_arrival_ms

    @property
    def first_attempt_end_to_end_ms(self) -> Optional[float]:
        """Arrival-to-completion of attempt 1, or None if it never completed
        (e.g. its cold start failed before dispatch)."""
        if not self.attempt_history:
            return (self.end_to_end_ms
                    if self.completed_ms is not None else None)
        first = self.attempt_history[0]
        if first.completed_ms is None:
            return None
        return first.completed_ms - first.arrival_ms

    def reset_for_retry(self, now_ms: float) -> None:
        """Archive the failed attempt and re-arm for re-enqueue at *now_ms*.

        The attempt's breakdown and stamps move into ``attempt_history`` (so
        first-attempt latencies stay reportable — they are never silently
        overwritten), then every per-attempt field resets as if the
        invocation had just arrived.
        """
        if self.error is None:
            raise SchedulingError(
                f"{self.invocation_id} retried without a failure")
        if self.first_arrival_ms is None:
            self.first_arrival_ms = self.arrival_ms
        self.attempt_history.append(AttemptRecord(
            attempt=self.attempts,
            arrival_ms=self.arrival_ms,
            latency=self.latency,
            dispatched_ms=self.dispatched_ms,
            completed_ms=self.completed_ms,
            container_id=self.container_id,
            error=type(self.error).__name__))
        self.attempts += 1
        self.arrival_ms = now_ms
        self.state = InvocationState.RECEIVED
        self.latency = LatencyBreakdown()
        self.container_id = None
        self.dispatched_ms = None
        self.execution_start_ms = None
        self.completed_ms = None
        self.responded_ms = None
        self.error = None

    def adopt_hedge_result(self, shadow: "Invocation") -> None:
        """Take a winning hedged shadow's outcome as this attempt's result.

        The shadow ran on another container with its own absolute stamps;
        adopting them keeps the breakdown sum-consistent: everything between
        this attempt's dispatch and the shadow's execution start counts as
        queuing (the price of hedging late), execution is the shadow's.
        """
        if self.completed_ms is not None:
            raise SchedulingError(
                f"{self.invocation_id} already completed; cannot adopt hedge")
        if shadow.completed_ms is None or shadow.error is not None:
            raise SchedulingError(
                f"hedge {shadow.invocation_id} did not complete cleanly")
        self.execution_start_ms = shadow.execution_start_ms
        self.completed_ms = shadow.completed_ms
        if self.dispatched_ms is not None \
                and shadow.execution_start_ms is not None:
            self.latency.queuing_ms = \
                shadow.execution_start_ms - self.dispatched_ms
        self.latency.execution_ms = shadow.latency.execution_ms
        self.container_id = shadow.container_id
        self.error = None
        self.state = InvocationState.COMPLETED
        self.hedged = True
