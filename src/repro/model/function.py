"""Function and invocation model, with the paper's latency breakdown.

The paper decomposes *invocation latency* into four parts (§IV, "Evaluation
Metrics"): scheduling latency, cold-start latency, queuing latency and
execution latency.  :class:`Invocation` carries exactly those marks; the
platform and containers stamp them as the invocation flows through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import SchedulingError
from repro.model.workprofile import WorkProfile


class FunctionKind(enum.Enum):
    """Workload class of a function (the paper evaluates both)."""

    CPU = "cpu"
    IO = "io"


@dataclass(frozen=True)
class FunctionSpec:
    """A registered serverless function.

    ``profile_factory`` builds the work profile of one invocation; it takes
    the invocation's payload (an opaque object from the workload generator,
    e.g. the fib ``N``) and returns a :class:`WorkProfile`.
    """

    function_id: str
    kind: FunctionKind
    profile_factory: Callable[[object], WorkProfile]
    #: CPU cores the customer's resource limit grants a container of this
    #: function (docker ``cpu_count`` / ``cpuset_cpus`` in §III-C).
    cpu_limit: Optional[float] = None
    #: Extra per-container memory for this function's code and deps.
    code_memory_mb: float = 0.0

    def build_profile(self, payload: object) -> WorkProfile:
        """Materialise the work profile for one invocation."""
        return self.profile_factory(payload)


class InvocationState(enum.Enum):
    """Lifecycle of one invocation."""

    RECEIVED = "received"
    DISPATCHED = "dispatched"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class LatencyBreakdown:
    """The four latency components of §IV, all in milliseconds.

    ``scheduling_ms`` excludes the cold start, matching the paper: "we
    subtract the cold-start latency from the scheduling latency in our
    evaluation".
    """

    scheduling_ms: float = 0.0
    cold_start_ms: float = 0.0
    queuing_ms: float = 0.0
    execution_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (self.scheduling_ms + self.cold_start_ms
                + self.queuing_ms + self.execution_ms)

    @property
    def execution_plus_queuing_ms(self) -> float:
        """The paper's "Exec+Queue" series (Kraken's penalty, Figs 11c/12c)."""
        return self.execution_ms + self.queuing_ms


@dataclass
class Invocation:
    """One function invocation flowing through the platform."""

    invocation_id: str
    function: FunctionSpec
    payload: object
    arrival_ms: float
    state: InvocationState = InvocationState.RECEIVED
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    container_id: Optional[str] = None
    #: Simulated timestamps stamped as the invocation progresses.
    dispatched_ms: Optional[float] = None
    execution_start_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    #: When the response was returned to the caller.  Under the paper's
    #: batch semantics (§III-C: "the HTTP request is returned to FaaSBatch
    #: only after all invocations of the function group have completed")
    #: this is the *group's* completion time; with the early-return
    #: extension (the paper's future work) it equals ``completed_ms``.
    responded_ms: Optional[float] = None
    error: Optional[BaseException] = None

    # -- stamping helpers (called by the platform/container) ---------------------

    def mark_dispatched(self, now_ms: float, cold_start_ms: float) -> None:
        """Invocation handed to its container; split scheduling/cold-start."""
        if self.dispatched_ms is not None:
            raise SchedulingError(
                f"{self.invocation_id} dispatched twice")
        raw_scheduling = now_ms - self.arrival_ms
        if raw_scheduling + 1e-9 < cold_start_ms:
            raise SchedulingError(
                f"{self.invocation_id}: cold start ({cold_start_ms} ms) "
                f"exceeds elapsed scheduling time ({raw_scheduling} ms)")
        self.dispatched_ms = now_ms
        self.latency.scheduling_ms = raw_scheduling - cold_start_ms
        self.latency.cold_start_ms = cold_start_ms
        self.state = InvocationState.DISPATCHED

    def mark_execution_start(self, now_ms: float) -> None:
        """Invocation starts executing; the gap since dispatch was queuing."""
        if self.dispatched_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} started before dispatch")
        self.execution_start_ms = now_ms
        self.latency.queuing_ms = now_ms - self.dispatched_ms
        self.state = InvocationState.RUNNING

    def mark_completed(self, now_ms: float) -> None:
        if self.execution_start_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} completed before starting")
        self.completed_ms = now_ms
        self.latency.execution_ms = now_ms - self.execution_start_ms
        self.state = InvocationState.COMPLETED

    def mark_failed(self, now_ms: float, error: BaseException) -> None:
        self.completed_ms = now_ms
        self.error = error
        self.state = InvocationState.FAILED

    def mark_responded(self, now_ms: float) -> None:
        """The caller received its response (group return or early return)."""
        if self.completed_ms is None:
            raise SchedulingError(
                f"{self.invocation_id} responded before completing")
        if self.responded_ms is not None:
            raise SchedulingError(
                f"{self.invocation_id} responded twice")
        if now_ms + 1e-9 < self.completed_ms:
            raise SchedulingError(
                f"{self.invocation_id} responded before its completion")
        self.responded_ms = now_ms

    @property
    def response_latency_ms(self) -> float:
        """Arrival-to-response latency (what the *caller* experiences)."""
        if self.responded_ms is None:
            raise SchedulingError(f"{self.invocation_id} has no response")
        return self.responded_ms - self.arrival_ms

    @property
    def end_to_end_ms(self) -> float:
        """Arrival-to-completion latency (the paper's invocation latency)."""
        if self.completed_ms is None:
            raise SchedulingError(f"{self.invocation_id} not completed")
        return self.completed_ms - self.arrival_ms
