"""Simulated container: lifecycle, CPU group, in-container execution.

A container in this model matches the paper's prototype containers:

* It is **per-function** (one image per function; §V-A2 notes an identical
  base image, but a warm container can only serve its own function).
* A **cold start** costs a fixed provisioning latency plus host CPU work
  (docker create/start); the CPU part contends with everything else running
  on the worker, which is why cold starts stretch when hundreds of
  containers launch at once (Figs. 11b/12b).
* Execution happens on the container's **CPU group**, capped by the
  customer's ``cpu_count``/``cpuset_cpus`` limit (§III-C step 2).
* An optional **concurrency limit** models how many invocations may execute
  simultaneously inside the container: ``None`` for FaaSBatch's inline
  parallelism (threads, unbounded), ``1`` for Kraken's serial batch queue,
  and irrelevant for Vanilla/SFS which send one invocation per container.
* An optional **resource multiplexer** intercepts storage-client creations
  (§III-D); without one, every invocation builds its own client, paying the
  contended creation cost and 15 MB of memory (Figs. 4/5/14d).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.common.errors import (
    ContainerStateError,
    HedgeSuperseded,
    ProcessInterrupted,
)
from repro.model.calibration import Calibration
from repro.model.function import FunctionSpec, Invocation
from repro.model.storage import ClientInstance, StorageClientCostModel
from repro.model.workprofile import ClientCreation, CpuWork, IoWait, WorkProfile
from repro.sim.kernel import Environment, Event, Process
from repro.sim.machine import Machine
from repro.sim.primitives import Resource

if TYPE_CHECKING:  # avoid a runtime model -> core import cycle
    from repro.core.multiplexer import SimResourceMultiplexer
    from repro.obs.trace import InvocationTracer


class ContainerState(enum.Enum):
    """Container lifecycle states."""

    CREATED = "created"
    STARTING = "starting"
    WARM = "warm"         # started and idle
    ACTIVE = "active"     # executing at least one invocation
    STOPPED = "stopped"
    CRASHED = "crashed"   # killed by a fault; in-flight work was aborted


class SimContainer:
    """One container instance on the worker machine."""

    def __init__(self,
                 env: Environment,
                 machine: Machine,
                 container_id: str,
                 function: FunctionSpec,
                 calibration: Calibration,
                 concurrency_limit: Optional[int] = None,
                 multiplexer: Optional["SimResourceMultiplexer"] = None,
                 isolate_failures: bool = True,
                 tracer: Optional["InvocationTracer"] = None) -> None:
        """``isolate_failures`` mirrors real platforms: a handler exception
        fails *that invocation* (an error response to the caller) without
        crashing the container or the rest of the batch.  Tests can set it
        to False to let failures propagate.  ``tracer`` (optional) receives
        the execution-stage span boundaries of every invocation served."""
        if concurrency_limit is not None and concurrency_limit < 1:
            raise ValueError(
                f"concurrency_limit must be >= 1 or None, got {concurrency_limit}")
        self.env = env
        self.machine = machine
        self.container_id = container_id
        self.function = function
        self.calibration = calibration
        self.multiplexer = multiplexer
        self.isolate_failures = isolate_failures
        self.tracer = tracer
        self.invocations_failed = 0
        self.state = ContainerState.CREATED
        self.cold_start_ms: Optional[float] = None
        self.started_at_ms: Optional[float] = None
        self.stopped_at_ms: Optional[float] = None
        self.invocations_served = 0
        self.clients_created = 0
        self.active_invocations = 0
        self._group_name = f"cgroup:{container_id}"
        self._memory_owner = f"container:{container_id}"
        self._client_memory_owner = f"clients:{container_id}"
        self._creations_in_flight = 0
        self._sdk_imported = False
        self._cost_model = StorageClientCostModel.from_calibration(calibration)
        self._executor: Optional[Resource] = None
        if concurrency_limit is not None:
            self._executor = Resource(env, capacity=concurrency_limit)
        self._client_instances: List[ClientInstance] = []
        #: Live invocation processes by invocation id — the handles the
        #: fault/resilience layer uses to crash, time out or hedge them.
        self._inflight: Dict[str, Process] = {}
        self.crash_error: Optional[BaseException] = None
        self.invocations_superseded = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self):
        """Cold-start generator: run with ``env.process`` and yield the Process.

        Allocates the container's resident memory, creates its CPU group,
        performs the docker create/start CPU work on the *host's* share
        (contending with everything else) and then waits out the fixed
        provisioning latency.  Returns the measured cold-start duration.
        """
        if self.state is not ContainerState.CREATED:
            raise ContainerStateError(
                f"{self.container_id} cannot start from {self.state}")
        self.state = ContainerState.STARTING
        began = self.env.now
        self.machine.memory.allocate(
            self._memory_owner,
            self.calibration.container_memory_mb + self.function.code_memory_mb)
        self.machine.cpu.create_group(self._group_name,
                                      cap=self.function.cpu_limit)
        if self.calibration.cold_start_cpu_work_ms > 0:
            yield self.machine.cpu.submit(
                self.calibration.cold_start_cpu_work_ms,
                group=self.machine.cpu.HOST_GROUP,
                label=f"coldstart:{self.container_id}")
        if self.calibration.cold_start_latency_ms > 0:
            yield self.env.timeout(self.calibration.cold_start_latency_ms)
        self.cold_start_ms = self.env.now - began
        self.started_at_ms = self.env.now
        self.state = ContainerState.WARM
        return self.cold_start_ms

    def stop(self) -> None:
        """Tear the container down, releasing memory and its CPU group."""
        if self.state is ContainerState.STOPPED:
            raise ContainerStateError(f"{self.container_id} already stopped")
        if self.state is ContainerState.CRASHED:
            raise ContainerStateError(
                f"{self.container_id} crashed; teardown already ran")
        if self.active_invocations:
            raise ContainerStateError(
                f"{self.container_id} has {self.active_invocations} "
                "active invocations")
        if self.state in (ContainerState.WARM, ContainerState.ACTIVE):
            self.machine.cpu.remove_group(self._group_name)
            self.machine.memory.free(self._memory_owner)
            if self.machine.memory.held_by(self._client_memory_owner):
                self.machine.memory.free(self._client_memory_owner)
        elif self.state is ContainerState.STARTING:
            raise ContainerStateError(
                f"{self.container_id} cannot stop while starting")
        self.state = ContainerState.STOPPED
        self.stopped_at_ms = self.env.now

    @property
    def is_idle(self) -> bool:
        return self.state is ContainerState.WARM and not self.active_invocations

    @property
    def is_warm(self) -> bool:
        return self.state in (ContainerState.WARM, ContainerState.ACTIVE)

    @property
    def client_memory_mb(self) -> float:
        """Resident memory of this container's live client instances."""
        return self.machine.memory.held_by(self._client_memory_owner)

    @property
    def cpu_group_name(self) -> str:
        """The container's CPU cgroup (the straggler fault's cap target)."""
        return self._group_name

    @property
    def resident_memory_mb(self) -> float:
        """Container + client memory currently charged to this container."""
        return (self.machine.memory.held_by(self._memory_owner)
                + self.machine.memory.held_by(self._client_memory_owner))

    # -- fault hooks -------------------------------------------------------------

    def crash(self, error: BaseException) -> int:
        """Kill this container mid-flight, aborting all in-flight invocations.

        Every live invocation process is interrupted with *error* (their
        handlers mark the invocations failed, freeing per-invocation memory
        on the way out), then a same-instant teardown process reclaims the
        container's CPU group and memory.  Interrupts are delivered before
        the teardown runs — both are urgent events enqueued in order — so
        teardown never races the unwinding invocations.  Returns the number
        of invocations aborted.
        """
        if self.state not in (ContainerState.WARM, ContainerState.ACTIVE):
            raise ContainerStateError(
                f"{self.container_id} cannot crash from {self.state}")
        self.state = ContainerState.CRASHED
        self.crash_error = error
        victims = [process for process in self._inflight.values()
                   if process.is_alive]
        for process in victims:
            process.interrupt(error)
        self.env.process(self._teardown_after_crash(),
                         name=f"crash:{self.container_id}")
        return len(victims)

    def inflight_process(self, invocation_id: str) -> Optional[Process]:
        """The live process running *invocation_id* here, if any."""
        process = self._inflight.get(invocation_id)
        if process is None or not process.is_alive:
            return None
        return process

    def abort_invocation(self, invocation_id: str,
                         error: BaseException) -> bool:
        """Interrupt one in-flight invocation (timeout / hedge cancel).

        Returns False when the invocation is not running here anymore (it
        finished this very instant, or was never dispatched to us).
        """
        process = self._inflight.get(invocation_id)
        if process is None or not process.is_alive:
            return False
        process.interrupt(error)
        return True

    def _teardown_after_crash(self):
        yield self.env.timeout(0.0)
        if self.machine.cpu.has_group(self._group_name):
            self.machine.cpu.abort_group_tasks(self._group_name)
            self.machine.cpu.remove_group(self._group_name)
        if self.machine.memory.held_by(self._memory_owner):
            self.machine.memory.free(self._memory_owner)
        if self.machine.memory.held_by(self._client_memory_owner):
            self.machine.memory.free(self._client_memory_owner)
        self.stopped_at_ms = self.env.now

    # -- execution -------------------------------------------------------------------

    def execute_batch(self, invocations: List[Invocation]) -> Event:
        """Run *invocations* inside this container; event fires when all done.

        Mirrors §III-C step 3: the producer's HTTP request returns only after
        every invocation of the function group has completed.  Each
        invocation runs as its own in-container task; the concurrency limit
        (if any) gates how many execute at once, and waiting for a slot is
        accounted as *queuing latency*.
        """
        if self.state not in (ContainerState.WARM, ContainerState.ACTIVE):
            raise ContainerStateError(
                f"{self.container_id} cannot execute in state {self.state}")
        return self.env.all_of(self.execute_invocations(invocations))

    def execute_invocations(self, invocations: List[Invocation]):
        """Spawn one in-container task per invocation; returns the processes.

        Each returned :class:`~repro.sim.kernel.Process` triggers when its
        invocation finishes — the hook the early-return extension uses to
        respond to callers before the whole group has drained.
        """
        if self.state not in (ContainerState.WARM, ContainerState.ACTIVE):
            raise ContainerStateError(
                f"{self.container_id} cannot execute in state {self.state}")
        if not invocations:
            raise ValueError("empty batch")
        for invocation in invocations:
            if invocation.function.function_id != self.function.function_id:
                raise ContainerStateError(
                    f"{invocation.invocation_id} is for "
                    f"{invocation.function.function_id}, container runs "
                    f"{self.function.function_id}")
        if len(invocations) == 1:
            invocation = invocations[0]
            process = self.env.process(self._run_invocation(invocation),
                                       name=f"exec:{invocation.trace_id}")
            self._inflight[invocation.invocation_id] = process
            return [process]
        # Batch-arrival fast path: the whole batch expansion starts via one
        # bulk append of start events (order-identical to per-invocation
        # ``env.process`` calls).
        processes = self.env.process_batch(
            [self._run_invocation(invocation) for invocation in invocations],
            names=[f"exec:{invocation.trace_id}" for invocation in invocations])
        inflight = self._inflight
        for invocation, process in zip(invocations, processes):
            inflight[invocation.invocation_id] = process
        return processes

    def _run_invocation(self, invocation: Invocation):
        self.state = ContainerState.ACTIVE
        self.active_invocations += 1
        slot = None
        try:
            if self._executor is not None:
                slot = self._executor.request()
                yield slot
            invocation.mark_execution_start(self.env.now)
            invocation.container_id = self.container_id
            if self.tracer is not None:
                self.tracer.execution_started(
                    invocation.trace_id, self.env.now,
                    self.container_id)
            self.machine.memory.allocate(
                self._memory_owner, self.calibration.invocation_memory_mb)
            try:
                profile = invocation.function.build_profile(invocation.payload)
                yield from self._run_profile(profile)
            finally:
                self.machine.memory.free(
                    self._memory_owner, self.calibration.invocation_memory_mb)
            invocation.mark_completed(self.env.now)
            self.invocations_served += 1
            if self.tracer is not None:
                self.tracer.execution_completed(
                    invocation.trace_id, self.env.now)
        except BaseException as error:
            # An interrupt (crash / timeout / hedge cancel) arrives wrapped;
            # the invocation's recorded error is the underlying cause.
            cause: BaseException = error
            if isinstance(error, ProcessInterrupted) \
                    and isinstance(error.cause, BaseException):
                cause = error.cause
            if isinstance(cause, HedgeSuperseded):
                # The hedged shadow already won and its result was adopted:
                # this attempt stands down without failing the invocation.
                self.invocations_superseded += 1
            else:
                invocation.mark_failed(self.env.now, cause)
                self.invocations_failed += 1
                if self.tracer is not None:
                    self.tracer.execution_failed(
                        invocation.trace_id, self.env.now, cause)
            if not self.isolate_failures:
                raise
        finally:
            self._inflight.pop(invocation.invocation_id, None)
            if slot is not None:
                if slot.triggered:
                    slot.release()
                else:
                    # Interrupted while waiting for the execution slot.
                    assert self._executor is not None
                    self._executor.cancel(slot)
            self.active_invocations -= 1
            if self.active_invocations == 0 and \
                    self.state is ContainerState.ACTIVE:
                self.state = ContainerState.WARM

    def _run_profile(self, profile: WorkProfile):
        if self.calibration.invocation_overhead_work_ms > 0:
            yield self.machine.cpu.submit(
                self.calibration.invocation_overhead_work_ms,
                group=self._group_name, label="overhead")
        for segment in profile:
            if isinstance(segment, CpuWork):
                if segment.core_ms > 0:
                    yield self.machine.cpu.submit(
                        segment.core_ms, group=self._group_name, label="cpu")
            elif isinstance(segment, IoWait):
                if segment.wait_ms > 0:
                    yield self.env.timeout(segment.wait_ms)
            elif isinstance(segment, ClientCreation):
                yield from self._run_client_creation(segment)
            else:  # pragma: no cover - profile validated at construction
                raise TypeError(f"unknown segment {segment!r}")

    # -- client creation (the multiplexer integration point) ------------------------

    def _run_client_creation(self, segment: ClientCreation):
        if self.multiplexer is None:
            yield from self._build_client(segment)
            return
        lookup = self.multiplexer.lookup(segment.factory, segment.args_hash)
        if lookup.ready_event is not None:      # IN_FLIGHT: share the build
            yield lookup.ready_event
            yield self.env.timeout(self.calibration.multiplexer_hit_ms)
            return
        if lookup.instance is not None:          # HIT
            yield self.env.timeout(self.calibration.multiplexer_hit_ms)
            return
        # MISS: build and publish.  The cache-entry overhead is charged once.
        try:
            instance = yield from self._build_client(segment)
        except BaseException as error:
            self.multiplexer.abort(lookup.key, error)
            raise
        self.machine.memory.allocate(self._client_memory_owner,
                                     self.calibration.multiplexer_entry_mb)
        self.multiplexer.commit(lookup.key, instance)

    def _build_client(self, segment: ClientCreation):
        """Construct one storage client, paying the contended creation cost.

        The first creation in a fresh container also pays the SDK import
        (a cold Python process has not loaded boto3/azure-storage yet).
        """
        self._creations_in_flight += 1
        concurrent = self._creations_in_flight
        work = self._cost_model.creation_work_ms(concurrent)
        if not self._sdk_imported:
            self._sdk_imported = True
            work += self.calibration.sdk_import_work_ms
        try:
            yield self.machine.cpu.submit(
                work, group=self._group_name,
                label=f"client:{segment.factory}")
        finally:
            self._creations_in_flight -= 1
        self.machine.memory.allocate(self._client_memory_owner,
                                     self._cost_model.client_memory_mb)
        self.clients_created += 1
        instance = ClientInstance(
            factory=segment.factory, args_hash=segment.args_hash,
            created_at_ms=self.env.now,
            memory_mb=self._cost_model.client_memory_mb)
        self._client_instances.append(instance)
        return instance

    def __repr__(self) -> str:
        return (f"<SimContainer {self.container_id} fn="
                f"{self.function.function_id} {self.state.value} "
                f"active={self.active_invocations}>")
