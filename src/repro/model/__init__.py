"""Platform model: calibration, functions, containers, pool, docker, storage."""

from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.model.container import ContainerState, SimContainer
from repro.model.docker import ContainerHandle, SimDockerClient
from repro.model.function import (
    FunctionKind,
    FunctionSpec,
    Invocation,
    InvocationState,
    LatencyBreakdown,
)
from repro.model.pool import ContainerPool
from repro.model.storage import (
    ClientInstance,
    ObjectStore,
    StorageClientCostModel,
)
from repro.model.workprofile import (
    ClientCreation,
    CpuWork,
    IoWait,
    WorkProfile,
    cpu_profile,
    io_profile,
)

__all__ = [
    "Calibration",
    "ClientCreation",
    "ClientInstance",
    "ContainerHandle",
    "ContainerPool",
    "ContainerState",
    "CpuWork",
    "DEFAULT_CALIBRATION",
    "FunctionKind",
    "FunctionSpec",
    "Invocation",
    "InvocationState",
    "IoWait",
    "LatencyBreakdown",
    "ObjectStore",
    "SimContainer",
    "SimDockerClient",
    "StorageClientCostModel",
    "WorkProfile",
    "cpu_profile",
    "io_profile",
]
