"""A docker-py-shaped facade over the simulated container runtime.

The paper's prototype drives containers through docker-py
(``client.containers.run(..., cpu_count=..., cpuset_cpus=...)``, §III-C).
:class:`SimDockerClient` mirrors that surface so scheduler code reads like
the original prototype and so tests can assert on the docker-level view
(list, get, stop) independent of the scheduling layer.

Only the parts of the docker-py API that the paper's system touches are
implemented; anything else raises ``AttributeError`` naturally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.common.errors import ContainerNotFound
from repro.common.ids import IdFactory
from repro.model.calibration import Calibration
from repro.model.container import ContainerState, SimContainer
from repro.model.function import FunctionSpec
from repro.sim.kernel import Environment, Process
from repro.sim.machine import Machine

if TYPE_CHECKING:
    from repro.core.multiplexer import SimResourceMultiplexer
    from repro.obs import Observability


class ContainerHandle:
    """The docker-py ``Container``-like object returned by ``run``."""

    def __init__(self, container: SimContainer, start_process: Process) -> None:
        self._container = container
        #: Process performing the cold start; yield it to await readiness.
        self.started = start_process

    @property
    def id(self) -> str:
        return self._container.container_id

    @property
    def status(self) -> str:
        """docker-like status string."""
        mapping = {
            ContainerState.CREATED: "created",
            ContainerState.STARTING: "created",
            ContainerState.WARM: "running",
            ContainerState.ACTIVE: "running",
            ContainerState.STOPPED: "exited",
            ContainerState.CRASHED: "dead",
        }
        return mapping[self._container.state]

    @property
    def sim(self) -> SimContainer:
        """Escape hatch to the underlying simulated container."""
        return self._container

    def stop(self) -> None:
        self._container.stop()

    def __repr__(self) -> str:
        return f"<ContainerHandle {self.id} {self.status}>"


class _ContainerCollection:
    """Mirror of ``docker.client.containers``."""

    def __init__(self, client: "SimDockerClient") -> None:
        self._client = client

    def run(self, function: FunctionSpec,
            concurrency_limit: Optional[int] = None,
            multiplexer: Optional["SimResourceMultiplexer"] = None,
            ) -> ContainerHandle:
        """Create and start a container for *function* (detached).

        The returned handle's ``started`` process completes when the cold
        start finishes; schedulers yield it before dispatching work.
        ``function.cpu_limit`` plays the role of docker's ``cpu_count``.
        """
        client = self._client
        container = SimContainer(
            env=client.env,
            machine=client.machine,
            container_id=client.ids.next("container"),
            function=function,
            calibration=client.calibration,
            concurrency_limit=concurrency_limit,
            multiplexer=multiplexer,
            tracer=client.obs.tracer if client.obs is not None else None)
        start = client.env.process(container.start(),
                                   name=f"start:{container.container_id}")
        client._register(container)
        if client.obs is not None:
            client.obs.metrics.counter("docker.containers_created").inc()
            if multiplexer is not None:
                client.obs.metrics.counter(
                    "docker.multiplexed_containers").inc()
        return ContainerHandle(container, start)

    def get(self, container_id: str) -> ContainerHandle:
        container = self._client._containers.get(container_id)
        if container is None:
            raise ContainerNotFound(container_id)
        return ContainerHandle(container, start_process=None)  # type: ignore[arg-type]

    def list(self, all: bool = False) -> List[SimContainer]:  # noqa: A002 - docker API
        containers = self._client._containers.values()
        if all:
            return list(containers)
        return [c for c in containers if c.is_warm]


class SimDockerClient:
    """Simulated docker daemon for one worker machine."""

    def __init__(self, env: Environment, machine: Machine,
                 calibration: Calibration,
                 ids: Optional[IdFactory] = None,
                 obs: Optional["Observability"] = None) -> None:
        self.env = env
        self.machine = machine
        self.calibration = calibration
        self.ids = ids if ids is not None else IdFactory()
        self.obs = obs
        self._containers: Dict[str, SimContainer] = {}
        self.containers = _ContainerCollection(self)

    def _register(self, container: SimContainer) -> None:
        self._containers[container.container_id] = container

    def started_count(self) -> int:
        """How many containers were ever created on this daemon."""
        return len(self._containers)

    def running_count(self) -> int:
        return sum(1 for c in self._containers.values() if c.is_warm)
