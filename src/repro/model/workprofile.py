"""Work profiles: what one invocation actually *does*.

A :class:`WorkProfile` is an ordered list of segments, each of which the
container executor knows how to run:

* :class:`CpuWork` — burn core-milliseconds on the container's CPU share
  (e.g. computing a Fibonacci number, the paper's CPU-intensive benchmark).
* :class:`IoWait` — wait without consuming CPU (network RTT to object
  storage).
* :class:`ClientCreation` — construct a cloud-storage socket client.  This is
  the segment the Resource Multiplexer intercepts: with multiplexing the
  first creation per (factory, args-hash) pays the full cost and everyone
  else reuses the cached instance (§III-D).

Profiles are *descriptions*; all costs are resolved by the container at
execution time against the platform's :class:`~repro.model.calibration.Calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union


@dataclass(frozen=True)
class CpuWork:
    """Burn *core_ms* of CPU work on the container's share."""

    core_ms: float

    def __post_init__(self) -> None:
        if self.core_ms < 0:
            raise ValueError(f"negative CPU work: {self.core_ms}")


@dataclass(frozen=True)
class IoWait:
    """Wait *wait_ms* without consuming CPU (e.g. a blob GET round trip)."""

    wait_ms: float

    def __post_init__(self) -> None:
        if self.wait_ms < 0:
            raise ValueError(f"negative IO wait: {self.wait_ms}")


@dataclass(frozen=True)
class ClientCreation:
    """Create (or reuse) a storage client.

    ``factory`` names the client constructor (e.g. ``"boto3.client"``) and
    ``args_hash`` stands for ``Hash(args)`` from §III-D — invocations that
    pass the same creation arguments share a cache entry.
    """

    factory: str
    args_hash: int

    def cache_key(self) -> Tuple[str, int]:
        """The resource-multiplexer mapping key: factory -> Hash(args)."""
        return (self.factory, self.args_hash)


Segment = Union[CpuWork, IoWait, ClientCreation]


class WorkProfile:
    """An ordered, immutable sequence of work segments."""

    def __init__(self, segments: Sequence[Segment]) -> None:
        if not segments:
            raise ValueError("a work profile needs at least one segment")
        for segment in segments:
            if not isinstance(segment, (CpuWork, IoWait, ClientCreation)):
                raise TypeError(f"unknown segment type: {segment!r}")
        self._segments: Tuple[Segment, ...] = tuple(segments)

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    def __iter__(self):
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def total_cpu_work_ms(self) -> float:
        """Sum of plain CPU work (excludes client creations and IO)."""
        return sum(s.core_ms for s in self._segments if isinstance(s, CpuWork))

    @property
    def total_io_wait_ms(self) -> float:
        return sum(s.wait_ms for s in self._segments if isinstance(s, IoWait))

    @property
    def client_creations(self) -> Tuple[ClientCreation, ...]:
        return tuple(s for s in self._segments
                     if isinstance(s, ClientCreation))

    def __repr__(self) -> str:
        return f"WorkProfile({list(self._segments)!r})"


def cpu_profile(core_ms: float, overhead_ms: float = 0.0) -> WorkProfile:
    """A pure CPU-bound profile (the paper's ``fib`` functions)."""
    segments: list = []
    if overhead_ms > 0:
        segments.append(CpuWork(overhead_ms))
    segments.append(CpuWork(core_ms))
    return WorkProfile(segments)


def io_profile(factory: str, args_hash: int, blob_wait_ms: float,
               post_cpu_ms: float = 1.0) -> WorkProfile:
    """The paper's I/O function: create an S3 client, then one blob op.

    ``post_cpu_ms`` models the handler's own marshalling work after the
    storage round trip.
    """
    return WorkProfile([
        ClientCreation(factory=factory, args_hash=args_hash),
        IoWait(blob_wait_ms),
        CpuWork(post_cpu_ms),
    ])
