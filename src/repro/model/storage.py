"""Cloud object-storage client cost model (the S3/Blob substrate).

The paper's I/O benchmark repeatedly constructs AWS S3 socket clients inside
containers (Listing 1) and measures:

* Fig. 4 — creation *time* grows super-linearly with in-container creation
  concurrency: ~66 ms alone, ~3165 ms when 9 creations race (GIL, import
  locks, connection-pool locks).
* Fig. 5 — container memory grows with each extra client instance.
* Fig. 14(d) — ~15 MB resident per client under the baseline policies.

:class:`StorageClientCostModel` encodes those measurements:
``creation_work(c) = base * c ** alpha`` core-ms, where ``c`` is the number
of creations concurrently in flight inside the same container, and a flat
per-instance memory footprint.  The model is deliberately simple and fully
calibrated by two published points (c=1 and c=9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.model.calibration import Calibration


@dataclass(frozen=True)
class StorageClientCostModel:
    """Cost of constructing one storage client inside a container."""

    base_work_ms: float
    contention_exponent: float
    client_memory_mb: float

    @classmethod
    def from_calibration(cls, calibration: Calibration) -> "StorageClientCostModel":
        return cls(base_work_ms=calibration.client_creation_work_ms,
                   contention_exponent=calibration.client_contention_exponent,
                   client_memory_mb=calibration.client_memory_mb)

    def creation_work_ms(self, concurrent_creations: int) -> float:
        """CPU work of one creation when *concurrent_creations* race.

        ``concurrent_creations`` counts this creation itself, so it is >= 1.
        """
        if concurrent_creations < 1:
            raise ValueError(
                f"concurrent_creations must be >= 1, got {concurrent_creations}")
        return self.base_work_ms * (concurrent_creations
                                    ** self.contention_exponent)

    def memory_mb(self, instances: int) -> float:
        """Resident memory of *instances* live client objects."""
        if instances < 0:
            raise ValueError(f"negative instances: {instances}")
        return self.client_memory_mb * instances


class ClientInstance:
    """A constructed storage client living in a container's memory."""

    __slots__ = ("factory", "args_hash", "created_at_ms", "memory_mb")

    def __init__(self, factory: str, args_hash: int, created_at_ms: float,
                 memory_mb: float) -> None:
        self.factory = factory
        self.args_hash = args_hash
        self.created_at_ms = created_at_ms
        self.memory_mb = memory_mb

    def __repr__(self) -> str:
        return (f"<ClientInstance {self.factory}#{self.args_hash:x} "
                f"{self.memory_mb:.1f}MB>")


class ObjectStore:
    """A minimal simulated object store (blob CRUD with fixed RTT).

    Used by examples and tests to give I/O profiles something concrete to
    talk to; latency is modelled in the profile's :class:`IoWait` segment, so
    this class only tracks object state.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}
        self.reads = 0
        self.writes = 0

    def put(self, key: str, data: bytes) -> None:
        self._blobs[key] = data
        self.writes += 1

    def get(self, key: str) -> bytes:
        self.reads += 1
        try:
            return self._blobs[key]
        except KeyError:
            raise KeyError(f"no blob named {key!r}") from None

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)
