"""Calibration constants for the platform model.

Single source of truth for every physical cost in the simulation.  Each
constant is calibrated against a measurement published in the paper (the
reference is given next to each field).  Benchmarks and tests import
:data:`DEFAULT_CALIBRATION`; experiments that sweep a knob construct a
modified copy via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.validation import (
    require_non_negative,
    require_positive,
)


@dataclass(frozen=True)
class Calibration:
    """Physical cost model of the worker machine and the function runtime."""

    # -- worker VM (paper §IV: 32 vCPUs / 64 GB) ------------------------------
    worker_cores: int = 32
    worker_memory_gb: float = 64.0

    # -- container lifecycle ---------------------------------------------------
    #: Fixed provisioning latency of a cold start (image setup, runtime boot).
    #: Together with `cold_start_cpu_work_ms` this reproduces the paper's
    #: observation that cold-start latency grows with the number of containers
    #: being provisioned (Figs. 11b/12b): the fixed part is constant, the CPU
    #: part contends.
    cold_start_latency_ms: float = 400.0
    #: Core-ms of host CPU work to create and start one container
    #: (docker create + start in the prototype).
    cold_start_cpu_work_ms: float = 700.0
    #: Resident memory of an idle warm container (language runtime + agent).
    container_memory_mb: float = 25.0
    #: Keep-alive window before an idle warm container is reclaimed.
    keep_alive_ms: float = 60_000.0

    # -- platform scheduling costs ----------------------------------------------
    #: Platform CPU work per container-launch decision (docker-py API
    #: marshalling).  GIL-serialised inside the platform process.
    scheduling_cpu_work_per_launch_ms: float = 20.0
    #: Platform CPU work per *dispatch decision* (request handling, routing,
    #: and the HTTP round trip to a container).  Vanilla/SFS make one
    #: decision per invocation; Kraken one per sub-batch; FaaSBatch one per
    #: function group.  This asymmetry — hundreds of GIL-serialised
    #: decisions vs. a handful — is the root of Figs. 11a/12a.
    scheduling_cpu_work_per_decision_ms: float = 15.0
    #: Platform CPU work to receive and enqueue one invocation request.
    scheduling_cpu_work_per_invocation_ms: float = 0.3

    # -- storage client cost model (Figs. 4, 5, 14d) ------------------------------
    #: CPU work to build one storage client with no contention (Fig. 4: 66 ms
    #: at concurrency 1; measured in a warm process with the SDK imported).
    client_creation_work_ms: float = 66.0
    #: One-off CPU work of importing the storage SDK in a fresh container
    #: process (boto3/azure-storage imports cost ~a second of CPU), charged
    #: to the first client creation in each container.  This is the load
    #: that pushes the baselines' I/O runs into the contention regime of
    #: Fig. 12 (exec spread to seconds, scheduling tail beyond 10 s) while
    #: FaaSBatch pays it once per container.
    sdk_import_work_ms: float = 800.0
    #: Super-linear contention exponent for concurrent creations inside one
    #: container (GIL + lock contention).  Calibrated so that creation at
    #: concurrency 9 costs ~48x concurrency 1 (Fig. 4: 66 ms -> 3165 ms).
    client_contention_exponent: float = 1.76
    #: Resident memory of one client instance (Fig. 14d: ~15 MB for the
    #: baseline policies).
    client_memory_mb: float = 15.0
    #: Cost of a multiplexer cache hit (hash + dict lookup).
    multiplexer_hit_ms: float = 0.2
    #: Memory overhead of one cached mapping entry (hashed args -> instance).
    multiplexer_entry_mb: float = 0.01

    # -- function execution ---------------------------------------------------------
    #: Fixed per-invocation runtime overhead inside the container (argument
    #: decode, handler dispatch), in core-ms.
    invocation_overhead_work_ms: float = 1.0
    #: I/O wait of one blob operation after the client exists (network RTT
    #: to object storage).
    blob_operation_wait_ms: float = 15.0
    #: Transient working memory of one in-flight invocation.
    invocation_memory_mb: float = 2.0

    def validated(self) -> "Calibration":
        """Validate all fields; returns self so it can be chained."""
        require_positive("worker_cores", self.worker_cores)
        require_positive("worker_memory_gb", self.worker_memory_gb)
        require_non_negative("cold_start_latency_ms", self.cold_start_latency_ms)
        require_non_negative("cold_start_cpu_work_ms", self.cold_start_cpu_work_ms)
        require_positive("container_memory_mb", self.container_memory_mb)
        require_positive("keep_alive_ms", self.keep_alive_ms)
        require_non_negative("scheduling_cpu_work_per_launch_ms",
                             self.scheduling_cpu_work_per_launch_ms)
        require_non_negative("scheduling_cpu_work_per_decision_ms",
                             self.scheduling_cpu_work_per_decision_ms)
        require_non_negative("scheduling_cpu_work_per_invocation_ms",
                             self.scheduling_cpu_work_per_invocation_ms)
        require_positive("client_creation_work_ms", self.client_creation_work_ms)
        require_non_negative("sdk_import_work_ms", self.sdk_import_work_ms)
        require_positive("client_contention_exponent",
                         self.client_contention_exponent)
        require_positive("client_memory_mb", self.client_memory_mb)
        require_non_negative("multiplexer_hit_ms", self.multiplexer_hit_ms)
        require_non_negative("multiplexer_entry_mb", self.multiplexer_entry_mb)
        require_non_negative("invocation_overhead_work_ms",
                             self.invocation_overhead_work_ms)
        require_non_negative("blob_operation_wait_ms", self.blob_operation_wait_ms)
        require_non_negative("invocation_memory_mb", self.invocation_memory_mb)
        return self

    def with_overrides(self, **overrides: object) -> "Calibration":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validated()  # type: ignore[arg-type]


#: The calibration used by every experiment unless explicitly overridden.
DEFAULT_CALIBRATION = Calibration().validated()
