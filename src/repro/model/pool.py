"""Warm container pool with keep-alive reclamation.

Serverless platforms keep finished containers alive for a while so that
subsequent invocations of the same function warm-start (§I).  The pool:

* hands out an idle warm container for a function when one exists
  (*warm start*), else the caller cold-starts a new one;
* receives containers back after execution and schedules their expiry
  ``keep_alive_ms`` later — cancelled if the container is re-acquired first;
* tracks the *provisioned containers* count (every container ever started),
  the metric of Figs. 13(b)/14(b);
* publishes its accounting into an optional
  :class:`~repro.obs.metrics.MetricsRegistry` (``pool.*`` namespace).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, DefaultDict, Dict, List, Optional

from repro.common.errors import ContainerStateError
from repro.model.container import ContainerState, SimContainer
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.sim.kernel import Environment


class ContainerPool:
    """Keep-alive pool of warm containers, keyed by function id."""

    def __init__(self, env: Environment, keep_alive_ms: float,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if keep_alive_ms <= 0:
            raise ValueError(f"keep_alive_ms must be > 0, got {keep_alive_ms}")
        self.env = env
        self.keep_alive_ms = keep_alive_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._idle: DefaultDict[str, List[SimContainer]] = defaultdict(list)
        #: Expiry epoch per container id; bumping it cancels pending expiry.
        self._lease_version: Dict[str, int] = {}
        self.provisioned_total = 0
        self.warm_hits = 0
        self.cold_misses = 0
        self.expired_total = 0
        #: Containers found non-idle on the idle list (stopped out of band);
        #: they are retired with full accounting instead of silently leaking.
        self.stale_evictions = 0
        #: Crashed/stopped containers refused at release() instead of being
        #: re-parked — without this a crashed container re-enters the idle
        #: list and is handed out as a "warm" container later.
        self.rejected_releases = 0
        self._on_expire: Optional[Callable[[SimContainer], None]] = None
        # Hot-path metric handles, filled lazily on first publish so the
        # registry snapshot only ever contains metrics that actually fired
        # (pre-creating them would add zero-valued rows to pinned digests).
        self._m_warm_hits: Optional[Counter] = None
        self._m_cold_misses: Optional[Counter] = None
        self._m_releases: Optional[Counter] = None
        self._m_idle: Optional[Gauge] = None

    # -- acquisition ------------------------------------------------------------

    def acquire(self, function_id: str) -> Optional[SimContainer]:
        """Take an idle warm container for *function_id*, or None (cold)."""
        idle = self._idle.get(function_id)
        while idle:
            container = idle.pop()
            # Containers in the idle list are warm by construction; guard
            # against out-of-band stops anyway.
            if container.is_idle:
                self._bump(container)
                self.warm_hits += 1
                metric = self._m_warm_hits
                if metric is None:
                    metric = self._m_warm_hits = \
                        self.metrics.counter("pool.warm_hits")
                metric.inc()
                self._publish_idle_gauge()
                return container
            self._evict_stale(container)
        self.cold_misses += 1
        metric = self._m_cold_misses
        if metric is None:
            metric = self._m_cold_misses = \
                self.metrics.counter("pool.cold_misses")
        metric.inc()
        return None

    def register_started(self, container: SimContainer) -> None:
        """Count a freshly cold-started container as provisioned."""
        self.provisioned_total += 1
        self.metrics.counter("pool.provisioned").inc()
        self._bump(container)

    def release(self, container: SimContainer) -> bool:
        """Return *container* to the pool and arm its keep-alive expiry.

        A container that died out-of-band (crashed by a fault, or stopped)
        is *rejected*: it must not re-enter the idle list, where it would be
        handed out as a warm container later.  Rejections are counted and
        return False; releasing a container with live work is still a
        programming error and raises.
        """
        if not container.is_idle:
            if container.state in (ContainerState.STOPPED,
                                   ContainerState.CRASHED) \
                    and not container.active_invocations:
                self._bump(container)  # stand down any pending expiry
                self.rejected_releases += 1
                self.metrics.counter("pool.rejected_releases").inc()
                return False
            raise ContainerStateError(
                f"{container.container_id} returned to pool while not idle")
        self._idle[container.function.function_id].append(container)
        version = self._bump(container)
        metric = self._m_releases
        if metric is None:
            metric = self._m_releases = self.metrics.counter("pool.releases")
        metric.inc()
        self._publish_idle_gauge()
        self.env.process(self._expire_later(container, version),
                         name=f"expire:{container.container_id}")
        return True

    def set_expiry_callback(self,
                            callback: Callable[[SimContainer], None]) -> None:
        """Invoke *callback* whenever a container is reclaimed."""
        self._on_expire = callback

    # -- introspection ----------------------------------------------------------

    def idle_count(self, function_id: Optional[str] = None) -> int:
        if function_id is not None:
            return len(self._idle.get(function_id, []))
        return sum(len(v) for v in self._idle.values())

    def idle_containers(self) -> List[SimContainer]:
        return [c for lst in self._idle.values() for c in lst]

    def drain(self) -> List[SimContainer]:
        """Stop and remove every idle container (end-of-run cleanup)."""
        drained: List[SimContainer] = []
        for function_id in list(self._idle):
            for container in self._idle.pop(function_id):
                self._bump(container)
                if container.state not in (ContainerState.STOPPED,
                                           ContainerState.CRASHED):
                    container.stop()
                drained.append(container)
        self._publish_idle_gauge()
        return drained

    # -- internals ----------------------------------------------------------------

    def _bump(self, container: SimContainer) -> int:
        version = self._lease_version.get(container.container_id, 0) + 1
        self._lease_version[container.container_id] = version
        return version

    def _evict_stale(self, container: SimContainer) -> None:
        """Retire a container found non-idle on the idle list.

        Such a container was stopped (or re-activated) out of band while
        parked.  It must leave the pool's accounting cleanly: bump its lease
        so any pending expiry process stands down, stop it if it is still
        stoppable, and count the eviction — dropping it silently would leak
        it from every metric (the pre-fix behaviour).
        """
        self._bump(container)
        if container.state not in (ContainerState.STOPPED,
                                   ContainerState.CRASHED) \
                and not container.active_invocations \
                and container.state is not ContainerState.STARTING:
            container.stop()
        self.stale_evictions += 1
        self.metrics.counter("pool.stale_evictions").inc()
        self._publish_idle_gauge()

    def _publish_idle_gauge(self) -> None:
        gauge = self._m_idle
        if gauge is None:
            gauge = self._m_idle = self.metrics.gauge("pool.idle")
        gauge.value = self.idle_count()

    def _expire_later(self, container: SimContainer, version: int):
        yield self.env.timeout(self.keep_alive_ms)
        if self._lease_version.get(container.container_id) != version:
            return  # re-acquired (or drained) in the meantime
        idle = self._idle.get(container.function.function_id, [])
        if container in idle:
            idle.remove(container)
            if container.state is ContainerState.CRASHED:
                # Crashed while parked: teardown already ran, just retire it
                # from the pool's books.
                self.stale_evictions += 1
                self.metrics.counter("pool.stale_evictions").inc()
                self._publish_idle_gauge()
                return
            container.stop()
            self.expired_total += 1
            self.metrics.counter("pool.expired").inc()
            self._publish_idle_gauge()
            if self._on_expire is not None:
                self._on_expire(container)
