"""Scheduling-policy registry: one place that knows every scheduler.

Before this module existed, "the four schedulers" was a hard-coded
assumption replicated across the CLI, the bench harness, the sharded
cluster and the chaos suite; adding a baseline meant editing five files.
Now a policy registers once — name, report label, CPU discipline, config
class and a factory — and every surface discovers it here, selecting
subsets with ``--schedulers``.

A factory receives a :class:`SchedulerBuild` carrying the run-wide knobs
a policy may consume (dispatch window, window-sizing policy, Kraken's
profiled parameters) and returns a *fresh* scheduler instance; scheduler
objects hold per-run state, so one build context can safely construct a
scheduler per experiment.

Kraken is special: its parameters come from a prior Vanilla profiling
run ("we take the 98-percentile latency of each function obtained by the
Vanilla strategy as the function SLO"), flagged by
``needs_vanilla_profile`` so orchestration layers know to run (or reuse)
a Vanilla result first — and so surfaces with no parameter side channel
(the sharded cluster) can exclude it mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.baselines.base import CpuDiscipline, Scheduler
from repro.baselines.datadriven import DataDrivenScheduler
from repro.baselines.hiku import HikuScheduler
from repro.baselines.kraken import (
    KrakenConfig,
    KrakenParameters,
    KrakenScheduler,
)
from repro.baselines.sfs import SfsScheduler
from repro.baselines.vanilla import VanillaScheduler
from repro.common.errors import ConfigurationError
from repro.core.config import DEFAULT_WINDOW_MS, FaaSBatchConfig

__all__ = [
    "DEFAULT_SCHEDULERS",
    "PolicyInfo",
    "SchedulerBuild",
    "build_scheduler",
    "parse_scheduler_names",
    "policy_info",
    "register_policy",
    "registered_policies",
    "scheduler_labels",
]


@dataclass(frozen=True)
class SchedulerBuild:
    """Run-wide knobs a policy factory may consume.

    One frozen context describes a whole comparison run; each factory
    picks the fields it understands and ignores the rest.
    """

    #: Dispatch window for the windowed policies (FaaSBatch, Kraken).
    window_ms: float = DEFAULT_WINDOW_MS
    #: Window-sizing policy for FaaSBatch ("fixed" | "adaptive").
    window_policy: str = "fixed"
    #: Parameters learned from a Vanilla profiling run (Kraken only).
    kraken_parameters: Optional[KrakenParameters] = None


@dataclass(frozen=True)
class PolicyInfo:
    """Registry metadata for one scheduling policy."""

    #: Canonical lowercase registry key (what ``--schedulers`` accepts).
    name: str
    #: Report label — the scheduler's ``name`` attribute as it appears in
    #: every summary table, trace span and bench row.
    label: str
    #: CPU discipline the policy's worker machine uses.
    cpu_discipline: CpuDiscipline
    #: Fresh scheduler instance for one experiment run.
    factory: Callable[[SchedulerBuild], Scheduler]
    #: One-line description for docs and error messages.
    description: str = ""
    #: Configuration dataclass, if the policy has one (introspection only).
    config_class: Optional[type] = None
    #: True when the policy needs parameters from a prior Vanilla run.
    needs_vanilla_profile: bool = False

    def __post_init__(self) -> None:
        if self.name != self.name.lower():
            raise ConfigurationError(
                f"registry keys are lowercase, got {self.name!r}")


_REGISTRY: Dict[str, PolicyInfo] = {}


def register_policy(info: PolicyInfo) -> PolicyInfo:
    """Add *info* to the registry; names must be unique."""
    if info.name in _REGISTRY:
        raise ConfigurationError(
            f"scheduler {info.name!r} is already registered")
    _REGISTRY[info.name] = info
    return info


def registered_policies() -> Tuple[PolicyInfo, ...]:
    """Every registered policy, in registration (canonical report) order."""
    return tuple(_REGISTRY.values())


def policy_info(name: str) -> PolicyInfo:
    """Look up one policy by registry key or report label (case-blind)."""
    key = name.strip().lower()
    info = _REGISTRY.get(key)
    if info is None:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown scheduler {name!r}; registered policies: {known}")
    return info


def build_scheduler(name: str, build: Optional[SchedulerBuild] = None,
                    ) -> Scheduler:
    """Construct a fresh scheduler instance for *name*."""
    if build is None:
        build = SchedulerBuild()
    return policy_info(name).factory(build)


def parse_scheduler_names(text: str) -> Tuple[str, ...]:
    """Parse a ``--schedulers`` value into canonical registry keys.

    Accepts a comma-separated list, validates every entry against the
    registry (unknown names raise the one-line
    :class:`~repro.common.errors.ConfigurationError` listing what is
    registered) and de-duplicates while preserving order.
    """
    names = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key = policy_info(part).name
        if key not in names:
            names.append(key)
    if not names:
        raise ConfigurationError(
            f"no schedulers selected from {text!r}; registered policies: "
            f"{', '.join(_REGISTRY)}")
    return tuple(names)


def scheduler_labels(names: Iterable[str]) -> Tuple[str, ...]:
    """Map registry keys / labels to canonical report labels."""
    return tuple(policy_info(name).label for name in names)


def _build_kraken(build: SchedulerBuild) -> Scheduler:
    if build.kraken_parameters is None:
        raise ConfigurationError(
            "Kraken needs parameters learned from a Vanilla profiling run "
            "(SchedulerBuild.kraken_parameters)")
    return KrakenScheduler(KrakenConfig(parameters=build.kraken_parameters,
                                        window_ms=build.window_ms))


def _build_faasbatch(build: SchedulerBuild) -> Scheduler:
    # Imported lazily: repro.core.scheduler imports the baselines package
    # for its Scheduler base class, so a module-level import here would
    # close that cycle when repro.core loads first.
    from repro.core.scheduler import FaaSBatchScheduler

    return FaaSBatchScheduler(FaaSBatchConfig(
        window_ms=build.window_ms, window_policy=build.window_policy))


register_policy(PolicyInfo(
    name="vanilla", label="Vanilla",
    cpu_discipline=VanillaScheduler.cpu_discipline,
    factory=lambda build: VanillaScheduler(),
    description="One isolated container per invocation (the default "
                "serverless model); push-dispatch, fair-share CPU."))

register_policy(PolicyInfo(
    name="sfs", label="SFS",
    cpu_discipline=SfsScheduler.cpu_discipline,
    factory=lambda build: SfsScheduler(),
    description="Vanilla's container model with the SFS user-space CPU "
                "scheduling discipline."))

register_policy(PolicyInfo(
    name="kraken", label="Kraken",
    cpu_discipline=KrakenScheduler.cpu_discipline,
    factory=_build_kraken,
    description="Windowed SLO-aware batching with serial in-container "
                "queues; sized from a Vanilla profiling run.",
    config_class=KrakenConfig,
    needs_vanilla_profile=True))

register_policy(PolicyInfo(
    name="faasbatch", label="FaaSBatch",
    cpu_discipline=CpuDiscipline.FAIR_SHARE,
    factory=_build_faasbatch,
    description="The paper's system: window batching, one container per "
                "function group, inline-parallel expansion, resource "
                "multiplexing.",
    config_class=FaaSBatchConfig))

register_policy(PolicyInfo(
    name="hiku", label="Hiku",
    cpu_discipline=HikuScheduler.cpu_discipline,
    factory=lambda build: HikuScheduler(),
    description="Pull-based dispatch: idle workers pull from a shared "
                "queue, bounding concurrency at the worker count."))

register_policy(PolicyInfo(
    name="datadriven", label="DataDriven",
    cpu_discipline=DataDrivenScheduler.cpu_discipline,
    factory=lambda build: DataDrivenScheduler(),
    description="Shortest-estimated-runtime-first dispatch from online "
                "per-function EWMA runtime estimates."))


#: The paper's §V comparison matrix — the default everywhere a selection
#: is not given, keeping historical CLI/report output stable.
DEFAULT_SCHEDULERS: Tuple[str, ...] = ("vanilla", "sfs", "kraken",
                                       "faasbatch")
