"""SFS: per-invocation containers with user-space SFS CPU scheduling.

SFS (the paper's [23]) keeps Vanilla's one-container-per-invocation model —
"it provides an easy-to-port version that only needs to transfer the PID of
a function invocation" (§IV) — but replaces the kernel's fair-share CPU
scheduling with its own discipline: per-core channels, adaptive time slices
driven by the request inter-arrival time, and demotion of long-running
functions to a background queue.  Short functions finish quickly; long
functions pay for it.

In this reproduction the policy object is identical to Vanilla; the
difference is the worker machine's CPU discipline
(:class:`repro.sim.sfs_cpu.SfsCpu`), which the experiment harness installs
when it sees ``cpu_discipline = SFS``.
"""

from __future__ import annotations

from repro.baselines.base import CpuDiscipline
from repro.baselines.vanilla import VanillaScheduler


class SfsScheduler(VanillaScheduler):
    """Vanilla's container model + the SFS CPU scheduling discipline."""

    name = "SFS"
    cpu_discipline = CpuDiscipline.SFS
