"""Vanilla: one container per invocation.

"The vanilla approach represents the invocation model adopted by the vast
majority of serverless computing frameworks: launching an isolated
environment (i.e., a container) for executing each function invocation"
(§IV).

Each request is served by its own handler (real platforms process incoming
HTTP requests in parallel): the handler pays the dispatch bookkeeping and —
when no warm container exists — the container-launch decision as host CPU
work, then cold-starts and executes.  Under a burst, hundreds of handlers'
decision work, cold-start work and first-creation SDK imports all contend
for the worker's cores, and every one of those operations stretches
proportionally — exactly why Vanilla's scheduling latency explodes in
Figs. 11(a)/12(a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import (
    SERIAL_DISPATCH_PLAN,
    CpuDiscipline,
    Scheduler,
    run_dispatch_pipeline,
)
from repro.model.function import Invocation

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


class VanillaScheduler(Scheduler):
    """One isolated container per invocation; warm starts via keep-alive."""

    name = "Vanilla"
    cpu_discipline = CpuDiscipline.FAIR_SHARE

    def start(self, platform: "ServerlessPlatform") -> None:
        platform.env.process(self._serve(platform), name="vanilla-loop")

    def _serve(self, platform: "ServerlessPlatform"):
        # Metric prefix follows the concrete policy (SFS subclasses this).
        handled = platform.obs.metrics.counter(
            f"{self.name.lower()}.handled")
        while True:
            invocation: Invocation = yield platform.request_queue.get()
            handled.inc()
            platform.env.process(
                self._handle(platform, invocation),
                name=f"vanilla:{invocation.invocation_id}")

    def _handle(self, platform: "ServerlessPlatform", invocation: Invocation):
        # A batch of one through the shared pipeline: warm-pool race,
        # per-invocation dispatch + launch decisions, serial container.
        yield from run_dispatch_pipeline(
            platform, [invocation], SERIAL_DISPATCH_PLAN)
