"""Baseline schedulers: Vanilla, Kraken, SFS (§IV)."""

from repro.baselines.base import CpuDiscipline, Scheduler
from repro.baselines.kraken import (
    KrakenConfig,
    KrakenMode,
    KrakenParameters,
    KrakenScheduler,
)
from repro.baselines.sfs import SfsScheduler
from repro.baselines.vanilla import VanillaScheduler

__all__ = [
    "CpuDiscipline",
    "KrakenConfig",
    "KrakenMode",
    "KrakenParameters",
    "KrakenScheduler",
    "Scheduler",
    "SfsScheduler",
    "VanillaScheduler",
]
