"""Baseline schedulers (§IV) and the scheduling-policy registry."""

from repro.baselines.base import CpuDiscipline, Scheduler
from repro.baselines.datadriven import DataDrivenScheduler
from repro.baselines.hiku import HikuScheduler
from repro.baselines.kraken import (
    KrakenConfig,
    KrakenMode,
    KrakenParameters,
    KrakenScheduler,
)
from repro.baselines.registry import (
    DEFAULT_SCHEDULERS,
    PolicyInfo,
    SchedulerBuild,
    build_scheduler,
    parse_scheduler_names,
    policy_info,
    register_policy,
    registered_policies,
    scheduler_labels,
)
from repro.baselines.sfs import SfsScheduler
from repro.baselines.vanilla import VanillaScheduler

__all__ = [
    "CpuDiscipline",
    "DEFAULT_SCHEDULERS",
    "DataDrivenScheduler",
    "HikuScheduler",
    "KrakenConfig",
    "KrakenMode",
    "KrakenParameters",
    "KrakenScheduler",
    "PolicyInfo",
    "Scheduler",
    "SchedulerBuild",
    "SfsScheduler",
    "VanillaScheduler",
    "build_scheduler",
    "parse_scheduler_names",
    "policy_info",
    "register_policy",
    "registered_policies",
    "scheduler_labels",
]
