"""Scheduler interface shared by FaaSBatch and the three baselines.

A scheduler is a *policy* object.  The experiment harness constructs the
platform, then calls :meth:`Scheduler.start` exactly once; the scheduler
spawns its serving processes (typically one loop consuming the platform's
request queue) and dispatches invocations until the run ends.

Schedulers also declare which CPU discipline their worker machine uses:
every policy runs on the default fair-share CPU except SFS, which brings its
own user-space scheduling discipline (:class:`repro.sim.sfs_cpu.SfsCpu`).
"""

from __future__ import annotations

import abc
from typing import List, TYPE_CHECKING

from repro.model.container import SimContainer
from repro.model.function import Invocation
from repro.common.eventlog import EventKind
from repro.obs.metrics import DEFAULT_SIZE_EDGES as SIZE_EDGES
from repro.sim.machine import CpuDiscipline

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform

__all__ = ["CpuDiscipline", "Scheduler"]


class Scheduler(abc.ABC):
    """Base class for scheduling policies."""

    #: Human-readable policy name (used in every report).
    name: str = "abstract"
    #: CPU discipline this policy's worker uses.
    cpu_discipline: CpuDiscipline = CpuDiscipline.FAIR_SHARE

    @abc.abstractmethod
    def start(self, platform: "ServerlessPlatform") -> None:
        """Spawn the policy's serving processes on *platform*."""

    # -- shared helpers -----------------------------------------------------------

    @staticmethod
    def run_on_container(platform: "ServerlessPlatform",
                         container: SimContainer,
                         invocations: List[Invocation],
                         cold_start_ms: float):
        """Generator: dispatch *invocations* to *container* and await them.

        Stamps dispatch (splitting scheduling vs. cold-start latency exactly
        as §IV prescribes), runs the batch, notes completions, and returns
        the container to the keep-alive pool.  Dispatch goes through
        :meth:`ServerlessPlatform.begin_dispatch`, so injected dispatch
        faults and resilience watchdogs apply uniformly to every policy.
        """
        now = platform.env.now
        invocations = platform.begin_dispatch(
            container, invocations, cold_start_ms)
        if not invocations:
            platform.release_container(container)
            return
        platform.event_log.record(now, EventKind.BATCH_STARTED,
                                  container_id=container.container_id,
                                  batch_size=len(invocations))
        platform.obs.tracer.container_event(
            container.container_id, "batch-started", now,
            batch_size=len(invocations))
        platform.obs.metrics.histogram(
            "scheduler.batch_size", edges=SIZE_EDGES).observe(
                len(invocations))
        yield container.execute_batch(invocations)
        # Batch semantics shared by all published batch schemes (§III-C):
        # the response returns when the whole (sub-)batch has completed.
        now = platform.env.now
        for invocation in invocations:
            invocation.mark_responded(now)
            platform.note_completed(invocation)
        platform.release_container(container)
