"""Scheduler interface and the shared dispatch pipeline.

A scheduler is a *policy* object.  The experiment harness constructs the
platform, then calls :meth:`Scheduler.start` exactly once; the scheduler
spawns its serving processes (typically one loop consuming the platform's
request queue) and dispatches invocations until the run ends.

Schedulers also declare which CPU discipline their worker machine uses:
every policy runs on the default fair-share CPU except SFS, which brings its
own user-space scheduling discipline (:class:`repro.sim.sfs_cpu.SfsCpu`).

The dispatch pipeline
---------------------
All four policies (Vanilla, SFS, Kraken, FaaSBatch) ultimately do the same
thing with a batch of invocations: check the warm pool, pay the platform's
dispatch/launch CPU work, obtain a container, stamp dispatch (faults +
resilience watchdogs included), execute, respond, and return the container
to the keep-alive pool.  :func:`run_dispatch_pipeline` is that one code
path; a :class:`DispatchPlan` captures the policy-specific choices:

======================  ========================  =========================
plan field              Vanilla / SFS / Kraken    FaaSBatch producer
======================  ========================  =========================
concurrency_limit       1 (serial queue)          None (parallel expansion)
with_multiplexer        False                     True
acquire_on_miss         False — ``cold_start``    True — ``acquire_container``
                        straight after the launch (re-checks the warm pool
                        decision                  after the launch decision)
early_return            False                     config (future-work mode)
batch_event_function_id None                      the group's function id
record_batch_size_metric True                     False (group_size instead)
======================  ========================  =========================
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.model.container import SimContainer
from repro.model.function import FunctionSpec, Invocation
from repro.common.errors import ColdStartError
from repro.common.eventlog import EventKind
from repro.obs.metrics import DEFAULT_SIZE_EDGES as SIZE_EDGES
from repro.sim.machine import CpuDiscipline

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform

__all__ = ["CpuDiscipline", "DispatchPlan", "Scheduler",
           "SERIAL_DISPATCH_PLAN", "execute_on_container",
           "run_dispatch_pipeline"]


@dataclass(frozen=True)
class DispatchPlan:
    """The policy-specific knobs of the shared dispatch pipeline."""

    #: In-container concurrency (1 = serial queue, None = unbounded threads).
    concurrency_limit: Optional[int] = 1
    #: Attach the FaaSBatch resource multiplexer to cold-started containers.
    with_multiplexer: bool = False
    #: On a warm miss, go through ``acquire_container`` (which re-checks the
    #: warm pool after the launch decision) instead of ``cold_start``.
    acquire_on_miss: bool = False
    #: Respond to each caller as its own invocation finishes instead of when
    #: the whole batch does (FaaSBatch's future-work extension).
    early_return: bool = False
    #: Tag BATCH_STARTED events/spans with this function id (FaaSBatch
    #: groups are per-function; the per-invocation policies leave it unset).
    batch_event_function_id: Optional[str] = None
    #: Observe the batch size in the ``scheduler.batch_size`` histogram
    #: (FaaSBatch records ``faasbatch.group_size`` at mapping time instead).
    record_batch_size_metric: bool = True


#: The plan shared by Vanilla, SFS and Kraken: serial in-container queue,
#: no multiplexer, straight cold start on a warm miss.
SERIAL_DISPATCH_PLAN = DispatchPlan()


def run_dispatch_pipeline(platform: "ServerlessPlatform",
                          invocations: List[Invocation],
                          plan: DispatchPlan,
                          function: Optional[FunctionSpec] = None,
                          warm_container: Optional[SimContainer] = None,
                          decision_work: bool = True):
    """Generator: drive *invocations* through the full dispatch path.

    Checks the warm pool the instant the batch is picked up (the
    prototype's handler threads all race through this check, so a burst
    observes an empty pool and mass-cold-starts), pays the platform's
    dispatch bookkeeping — and, on a miss, the container-launch decision —
    as host CPU work, obtains the container, then executes via
    :func:`execute_on_container`.

    ``warm_container`` lets a caller pass a container it already took from
    the keep-alive pool; ``decision_work=False`` skips the warm check and
    the dispatch/launch CPU work for callers that already paid it (or are
    deliberately bypassing it, like the resilience hedger's direct path).

    Returns the number of invocations dispatched and completed through the
    container (0 when the cold start failed or nothing was accepted).
    """
    if function is None:
        function = invocations[0].function
    container = warm_container
    cold_start_ms = 0.0
    if decision_work:
        if container is None:
            container = platform.try_acquire_warm(function)
        yield platform.dispatch_work(len(invocations))
        if container is None:
            # The launch decision (docker-py API marshalling) is platform
            # CPU work; the provisioning itself is dockerd + kernel work
            # contended with everything running on the host.
            yield platform.launch_work()
    if container is None:
        try:
            if plan.acquire_on_miss:
                container, cold_start_ms = \
                    yield from platform.acquire_container(
                        function,
                        concurrency_limit=plan.concurrency_limit,
                        with_multiplexer=plan.with_multiplexer)
            else:
                container, cold_start_ms = yield from platform.cold_start(
                    function,
                    concurrency_limit=plan.concurrency_limit,
                    with_multiplexer=plan.with_multiplexer)
        except ColdStartError as error:
            platform.fail_undispatched(list(invocations), error)
            return 0
    count = yield from execute_on_container(
        platform, container, invocations, cold_start_ms, plan)
    return count


def execute_on_container(platform: "ServerlessPlatform",
                         container: SimContainer,
                         invocations: List[Invocation],
                         cold_start_ms: float,
                         plan: DispatchPlan):
    """Generator: dispatch *invocations* to *container* and await them.

    Stamps dispatch (splitting scheduling vs. cold-start latency exactly
    as §IV prescribes), runs the batch, notes completions, and returns
    the container to the keep-alive pool.  Dispatch goes through
    :meth:`ServerlessPlatform.begin_dispatch`, so injected dispatch
    faults and resilience watchdogs apply uniformly to every policy.
    Returns the number of invocations that completed via the container.
    """
    now = platform.env.now
    invocations = platform.begin_dispatch(
        container, invocations, cold_start_ms)
    if not invocations:
        platform.release_container(container)
        return 0
    extra = {}
    if plan.batch_event_function_id is not None:
        extra["function_id"] = plan.batch_event_function_id
    platform.event_log.record(now, EventKind.BATCH_STARTED,
                              container_id=container.container_id,
                              batch_size=len(invocations), **extra)
    platform.obs.tracer.container_event(
        container.container_id, "batch-started", now,
        batch_size=len(invocations), **extra)
    if plan.record_batch_size_metric:
        platform.obs.metrics.histogram(
            "scheduler.batch_size", edges=SIZE_EDGES).observe(
                len(invocations))
    if plan.early_return:
        # Future-work extension: each caller gets its response the
        # moment its own invocation finishes.
        processes = container.execute_invocations(invocations)
        for invocation, process in zip(invocations, processes):
            _respond_on_completion(platform, invocation, process)
        yield platform.env.all_of(processes)
    else:
        # Batch semantics shared by all published batch schemes (§III-C):
        # the response returns when the whole (sub-)batch has completed.
        yield container.execute_batch(invocations)
        now = platform.env.now
        for invocation in invocations:
            invocation.mark_responded(now)
            platform.note_completed(invocation)
    platform.release_container(container)
    return len(invocations)


def _respond_on_completion(platform: "ServerlessPlatform",
                           invocation: Invocation, process) -> None:
    """Arrange response + completion bookkeeping when *process* ends."""

    def on_done(_event) -> None:
        invocation.mark_responded(platform.env.now)
        platform.note_completed(invocation)

    assert process.callbacks is not None
    process.callbacks.append(on_done)


class Scheduler(abc.ABC):
    """Base class for scheduling policies."""

    #: Human-readable policy name (used in every report).
    name: str = "abstract"
    #: CPU discipline this policy's worker uses.
    cpu_discipline: CpuDiscipline = CpuDiscipline.FAIR_SHARE

    @abc.abstractmethod
    def start(self, platform: "ServerlessPlatform") -> None:
        """Spawn the policy's serving processes on *platform*."""
