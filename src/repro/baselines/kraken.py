"""Kraken: SLO/slack-driven batching with EWMA container provisioning.

Kraken (the paper's [16]) batches invocations into containers such that
queued invocations still meet their SLO, and provisions containers using an
EWMA workload forecast.  The FaaSBatch paper ports it as follows (§IV,
"Porting Kraken and SFS Strategies"):

* the SLO of each function is the **98th-percentile latency observed under
  Vanilla** (instead of the original fixed 1000 ms);
* the workload prediction is made **100 % accurate** by feeding it the
  invocation pattern collected under Vanilla — i.e. at each window Kraken
  knows exactly how many invocations arrived.

Both variants are implemented: :attr:`KrakenMode.PERFECT` (the paper's
setting, the default) and :attr:`KrakenMode.EWMA` (the original
forecast-and-prewarm behaviour, used in unit tests and ablations).

Within a container, a Kraken batch executes **serially** (concurrency limit
1): "Kraken fails to recognize the effectiveness of concurrently executing
function invocations within a single container" (§V-B2).  The wait for the
container's single execution slot is the *queuing latency* that the paper
plots as "Kraken: Exec+Queue".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, TYPE_CHECKING

from repro.baselines.base import (
    SERIAL_DISPATCH_PLAN,
    CpuDiscipline,
    Scheduler,
    run_dispatch_pipeline,
)
from repro.common.errors import (
    ColdStartError,
    ConfigurationError,
    SchedulingError,
)
from repro.common.stats import Ewma, SampleStats
from repro.model.function import Invocation
from repro.obs.metrics import DEFAULT_SIZE_EDGES as SIZE_EDGES
from repro.platformsim.windows import collect_window

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


class KrakenMode(enum.Enum):
    """How Kraken decides container counts per window."""

    PERFECT = "perfect"  # the paper's 100%-accurate prediction port
    EWMA = "ewma"        # the original forecast + pre-warm behaviour


@dataclass
class KrakenParameters:
    """Per-function knowledge Kraken is given (from a Vanilla profiling run).

    ``slo_ms`` maps function id to its SLO (98th-pct Vanilla latency);
    ``mean_execution_ms`` maps function id to its observed mean execution
    time, used to size batches: ``batch = max(1, floor(slo / mean_exec))``.
    """

    slo_ms: Dict[str, float]
    mean_execution_ms: Dict[str, float]

    def __post_init__(self) -> None:
        for name, mapping in (("slo_ms", self.slo_ms),
                              ("mean_execution_ms", self.mean_execution_ms)):
            for function_id, value in mapping.items():
                if value <= 0:
                    raise ConfigurationError(
                        f"{name}[{function_id!r}] must be > 0, got {value}")

    @classmethod
    def from_invocations(cls, invocations: Iterable[Invocation],
                         slo_percentile: float = 98.0) -> "KrakenParameters":
        """Derive parameters from a completed (Vanilla) run.

        This is exactly the paper's porting procedure: "we take the
        98-percentile latency of each function obtained by the Vanilla
        strategy as the function SLO for the Kraken strategy".
        """
        latency: Dict[str, SampleStats] = {}
        execution: Dict[str, SampleStats] = {}
        for invocation in invocations:
            function_id = invocation.function.function_id
            latency.setdefault(function_id, SampleStats()).add(
                invocation.end_to_end_ms)
            execution.setdefault(function_id, SampleStats()).add(
                invocation.latency.execution_ms)
        if not latency:
            raise ConfigurationError("no completed invocations to learn from")
        return cls(
            slo_ms={fid: stats.percentile(slo_percentile)
                    for fid, stats in latency.items()},
            mean_execution_ms={fid: max(stats.mean, 1e-6)
                               for fid, stats in execution.items()})

    def batch_size(self, function_id: str) -> int:
        """Largest batch whose serial execution still meets the SLO."""
        try:
            slo = self.slo_ms[function_id]
            mean_exec = self.mean_execution_ms[function_id]
        except KeyError:
            raise SchedulingError(
                f"Kraken has no parameters for {function_id!r}") from None
        return max(1, int(math.floor(slo / mean_exec)))


@dataclass
class KrakenConfig:
    """Operational knobs of the Kraken policy."""

    parameters: KrakenParameters
    window_ms: float = 200.0
    mode: KrakenMode = KrakenMode.PERFECT
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ConfigurationError(
                f"window_ms must be > 0, got {self.window_ms}")


class KrakenScheduler(Scheduler):
    """Windowed SLO-aware batching with serial in-container queues."""

    name = "Kraken"
    cpu_discipline = CpuDiscipline.FAIR_SHARE

    def __init__(self, config: KrakenConfig) -> None:
        self.config = config
        self._predictors: Dict[str, Ewma] = {}
        #: Exposed for tests/ablations: containers requested per window.
        self.window_container_counts: List[int] = []

    def start(self, platform: "ServerlessPlatform") -> None:
        platform.env.process(self._serve(platform), name="kraken-loop")

    # -- the window loop ---------------------------------------------------------

    def _serve(self, platform: "ServerlessPlatform"):
        env = platform.env
        while True:
            if self.config.mode is KrakenMode.EWMA:
                self._prewarm(platform)
            # All requests within the interval count as concurrent (§IV).
            batch: List[Invocation] = yield from collect_window(
                env, platform.request_queue, self.config.window_ms,
                on_open=platform.window_opened,
                on_close=platform.window_closed)
            self._dispatch_window(platform, batch)

    def _dispatch_window(self, platform: "ServerlessPlatform",
                         batch: List[Invocation]) -> None:
        metrics = platform.obs.metrics
        metrics.counter("kraken.windows").inc()
        groups: Dict[str, List[Invocation]] = {}
        for invocation in batch:
            groups.setdefault(invocation.function.function_id,
                              []).append(invocation)
        for function_id, invocations in groups.items():
            batch_size = self.config.parameters.batch_size(function_id)
            containers_needed = math.ceil(len(invocations) / batch_size)
            self.window_container_counts.append(containers_needed)
            metrics.histogram("kraken.containers_per_window",
                              edges=SIZE_EDGES).observe(containers_needed)
            if self.config.mode is KrakenMode.EWMA:
                self._observe(function_id, len(invocations))
            for index in range(containers_needed):
                sub_batch = invocations[index * batch_size:
                                        (index + 1) * batch_size]
                platform.env.process(
                    self._run_sub_batch(platform, sub_batch),
                    name=f"kraken-batch:{function_id}:{index}")

    def _run_sub_batch(self, platform: "ServerlessPlatform",
                       sub_batch: List[Invocation]):
        # Same serial-container plan as Vanilla, but the dispatch decision
        # (and its platform CPU work) is paid once per sub-batch.
        yield from run_dispatch_pipeline(
            platform, sub_batch, SERIAL_DISPATCH_PLAN,
            function=sub_batch[0].function)

    # -- EWMA mode ------------------------------------------------------------------

    def _observe(self, function_id: str, count: int) -> None:
        predictor = self._predictors.setdefault(
            function_id, Ewma(alpha=self.config.ewma_alpha))
        predictor.observe(count)

    def _prewarm(self, platform: "ServerlessPlatform") -> None:
        """Launch forecast containers ahead of the window's arrivals."""
        for function_id, predictor in self._predictors.items():
            if not predictor.initialized:
                continue
            batch_size = self.config.parameters.batch_size(function_id)
            needed = math.ceil(predictor.value / batch_size)
            shortfall = needed - platform.pool.idle_count(function_id)
            function = platform.functions[function_id]
            if shortfall > 0:
                platform.obs.metrics.counter(
                    "kraken.prewarms").inc(shortfall)
            for _ in range(max(0, shortfall)):
                platform.env.process(
                    self._prewarm_one(platform, function),
                    name=f"kraken-prewarm:{function_id}")

    @staticmethod
    def _prewarm_one(platform: "ServerlessPlatform", function):
        yield platform.launch_work()
        try:
            container, _cold = yield from platform.acquire_container(
                function, concurrency_limit=1, with_multiplexer=False)
        except ColdStartError:
            return  # speculative warm-up; nothing depends on it
        platform.release_container(container)
