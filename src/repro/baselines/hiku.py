"""Hiku-style pull-based scheduling (PAPERS.md, arXiv 2502.15534).

Hiku inverts the dispatch direction: instead of the front end *pushing*
every request into its own handler the moment it arrives (Vanilla/SFS),
idle workers *pull* the next request from a shared queue when they have
capacity.  The queue absorbs bursts and the pull loop bounds concurrency
at the worker count, so a spike never mass-cold-starts hundreds of
containers at once — the failure mode that blows up Vanilla's scheduling
latency in Figs. 11(a)/12(a).  The price is queueing: requests wait for a
free puller instead of contending for the CPU immediately.

Each puller drives the shared serial dispatch pipeline, so warm-pool
reuse, injected faults, resilience watchdogs and observability all apply
exactly as they do to every other policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.baselines.base import (
    SERIAL_DISPATCH_PLAN,
    CpuDiscipline,
    Scheduler,
    run_dispatch_pipeline,
)
from repro.common.errors import ConfigurationError
from repro.model.function import Invocation

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform


class HikuScheduler(Scheduler):
    """Idle workers pull requests from the shared queue (bounded pulls)."""

    name = "Hiku"
    cpu_discipline = CpuDiscipline.FAIR_SHARE

    def __init__(self, pullers: Optional[int] = None) -> None:
        """``pullers`` bounds concurrent dispatches; default = worker cores."""
        if pullers is not None and pullers < 1:
            raise ConfigurationError(
                f"pullers must be >= 1, got {pullers}")
        self.pullers = pullers

    def start(self, platform: "ServerlessPlatform") -> None:
        count = self.pullers if self.pullers is not None \
            else platform.machine.cores
        for index in range(count):
            platform.env.process(self._pull_loop(platform),
                                 name=f"hiku-puller:{index}")

    def _pull_loop(self, platform: "ServerlessPlatform"):
        pulled = platform.obs.metrics.counter("hiku.pulled")
        while True:
            invocation: Invocation = yield platform.request_queue.get()
            pulled.inc()
            # The puller is busy until this request is fully served — that
            # *is* the pull model's backpressure.
            yield from run_dispatch_pipeline(
                platform, [invocation], SERIAL_DISPATCH_PLAN)

    def describe(self) -> str:
        """One-line summary used by reports."""
        suffix = f"[pullers={self.pullers}]" if self.pullers else ""
        return f"{self.name}{suffix}"
