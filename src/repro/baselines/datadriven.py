"""Przybylski-style data-driven dispatch (PAPERS.md, arXiv 2105.03217).

Przybylski et al. schedule function invocations using *data* the platform
already has: online per-function runtime estimates built from completion
history.  Dispatch order follows shortest-estimated-runtime-first, the
classic response-time-minimising discipline (SPT), so a cheap function
arriving behind an expensive one does not inherit its queueing delay.

Structure: one intake loop drains the platform's request queue into a
priority queue ordered by ``(estimated runtime, arrival sequence)``; a
bounded set of executor loops pops the shortest job, serves it through
the shared serial dispatch pipeline, and folds the *measured* execution
time back into the function's EWMA estimate.  Unseen functions get a
neutral default estimate, so the first invocation of each function
competes at the median rather than jumping the queue.

Everything is deterministic: the arrival sequence number breaks estimate
ties in FIFO order, and idle executors park on plain events woken in
FIFO order by the intake loop.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.baselines.base import (
    SERIAL_DISPATCH_PLAN,
    CpuDiscipline,
    Scheduler,
    run_dispatch_pipeline,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import Ewma
from repro.model.function import Invocation

if TYPE_CHECKING:
    from repro.platformsim.platform import ServerlessPlatform

#: Estimate assigned to a function with no completion history yet (ms).
DEFAULT_ESTIMATE_MS = 100.0


class DataDrivenScheduler(Scheduler):
    """Shortest-estimated-runtime-first from online completion history."""

    name = "DataDriven"
    cpu_discipline = CpuDiscipline.FAIR_SHARE

    def __init__(self, executors: Optional[int] = None,
                 ewma_alpha: float = 0.3,
                 default_estimate_ms: float = DEFAULT_ESTIMATE_MS) -> None:
        """``executors`` bounds concurrent dispatches; default = worker cores."""
        if executors is not None and executors < 1:
            raise ConfigurationError(
                f"executors must be >= 1, got {executors}")
        if default_estimate_ms <= 0:
            raise ConfigurationError(
                f"default_estimate_ms must be positive, "
                f"got {default_estimate_ms}")
        self.executors = executors
        self.ewma_alpha = ewma_alpha
        self.default_estimate_ms = default_estimate_ms
        self._estimates: Dict[str, Ewma] = {}
        self._pending: List[Tuple[float, int, Invocation]] = []
        self._sequence = itertools.count()
        self._parked: deque = deque()

    def estimate_ms(self, function_id: str) -> float:
        """Current runtime estimate for *function_id* (ms)."""
        estimator = self._estimates.get(function_id)
        if estimator is None or not estimator.initialized:
            return self.default_estimate_ms
        return estimator.value

    def start(self, platform: "ServerlessPlatform") -> None:
        platform.env.process(self._intake(platform), name="datadriven-intake")
        count = self.executors if self.executors is not None \
            else platform.machine.cores
        for index in range(count):
            platform.env.process(self._executor(platform),
                                 name=f"datadriven-executor:{index}")

    def _intake(self, platform: "ServerlessPlatform"):
        queued = platform.obs.metrics.counter("datadriven.queued")
        while True:
            invocation: Invocation = yield platform.request_queue.get()
            queued.inc()
            heapq.heappush(
                self._pending,
                (self.estimate_ms(invocation.function.function_id),
                 next(self._sequence), invocation))
            if self._parked:
                self._parked.popleft().succeed()

    def _executor(self, platform: "ServerlessPlatform"):
        dispatched = platform.obs.metrics.counter("datadriven.dispatched")
        while True:
            if not self._pending:
                event = platform.env.event()
                self._parked.append(event)
                yield event
                continue
            _estimate, _seq, invocation = heapq.heappop(self._pending)
            dispatched.inc()
            yield from run_dispatch_pipeline(
                platform, [invocation], SERIAL_DISPATCH_PLAN)
            self._learn(invocation)

    def _learn(self, invocation: Invocation) -> None:
        """Fold the measured execution time into the function's estimate."""
        execution_ms = invocation.latency.execution_ms
        if execution_ms <= 0:
            # Failed or never-executed invocations carry no runtime signal.
            return
        function_id = invocation.function.function_id
        estimator = self._estimates.get(function_id)
        if estimator is None:
            estimator = self._estimates[function_id] = \
                Ewma(alpha=self.ewma_alpha)
        estimator.observe(execution_ms)

    def describe(self) -> str:
        """One-line summary used by reports."""
        suffix = f"[executors={self.executors}]" if self.executors else ""
        return f"{self.name}{suffix}"
