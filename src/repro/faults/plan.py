"""Declarative fault plans: what breaks, when, deterministically.

A :class:`FaultPlan` is pure data — it names faults by *ordinal* (the Nth
container started, the Nth cold start, the Nth dispatch), optionally scoped
to one function, so the same plan is meaningful under every scheduler even
though each provisions a different number of containers.  Plans round-trip
through JSON (``FaultPlan.load`` / ``dump``) for the ``repro chaos`` CLI.

Triggers are relative (``after_start_ms`` delays from the target
container's start) rather than absolute simulation times: an absolute time
might land after a scheduler already retired the container, whereas a
start-relative delay follows the target wherever the policy put it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ContainerCrashFault:
    """Crash the *ordinal*-th started container ``after_start_ms`` later.

    In-flight invocations are aborted with
    :class:`~repro.common.errors.ContainerCrashed`; the container's memory
    and CPU group are reclaimed.  ``function_id`` restricts the ordinal
    count to containers of that function.
    """

    ordinal: int
    after_start_ms: float
    function_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.ordinal >= 1, f"ordinal must be >= 1, got {self.ordinal}")
        _require(self.after_start_ms >= 0,
                 f"after_start_ms must be >= 0, got {self.after_start_ms}")


@dataclass(frozen=True)
class ColdStartFailureFault:
    """Fail the *ordinal*-th cold start (after its latency was paid).

    The container dies before serving anything; the scheduler sees
    :class:`~repro.common.errors.ColdStartFailed` and the circuit breaker
    records a failure for the function's image.
    """

    ordinal: int
    function_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.ordinal >= 1, f"ordinal must be >= 1, got {self.ordinal}")


@dataclass(frozen=True)
class StragglerFault:
    """Scale the *ordinal*-th container's CPU cap for a window.

    ``cpu_scale`` multiplies the container's cap (an uncapped container is
    treated as owning all worker cores) between ``after_start_ms`` and
    ``after_start_ms + duration_ms`` after it starts, then the original cap
    is restored — the classic slow-node straggler that hedging addresses.
    """

    ordinal: int
    after_start_ms: float
    duration_ms: float
    cpu_scale: float = 0.25
    function_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.ordinal >= 1, f"ordinal must be >= 1, got {self.ordinal}")
        _require(self.after_start_ms >= 0,
                 f"after_start_ms must be >= 0, got {self.after_start_ms}")
        _require(self.duration_ms > 0,
                 f"duration_ms must be > 0, got {self.duration_ms}")
        _require(0 < self.cpu_scale < 1,
                 f"cpu_scale must be in (0, 1), got {self.cpu_scale}")


@dataclass(frozen=True)
class DispatchErrorFault:
    """Fail the *ordinal*-th invocation dispatch with a transient error.

    The invocation never reaches its container (models a dropped RPC to the
    worker agent); it fails with
    :class:`~repro.common.errors.TransientDispatchError` and is eligible
    for retry.
    """

    ordinal: int
    function_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.ordinal >= 1, f"ordinal must be >= 1, got {self.ordinal}")


@dataclass(frozen=True)
class OomKillFault:
    """Kill the fattest container whenever memory crosses ``threshold_mb``.

    At most ``max_kills`` kills; the watcher re-arms only after usage drops
    back below the threshold (hysteresis), so one sustained crossing causes
    one kill, not one per allocation.
    """

    threshold_mb: float
    max_kills: int = 1

    def __post_init__(self) -> None:
        _require(self.threshold_mb > 0,
                 f"threshold_mb must be > 0, got {self.threshold_mb}")
        _require(self.max_kills >= 1,
                 f"max_kills must be >= 1, got {self.max_kills}")


#: JSON section name → fault dataclass, in canonical serialisation order.
_SECTIONS = (
    ("crashes", ContainerCrashFault),
    ("cold_start_failures", ColdStartFailureFault),
    ("stragglers", StragglerFault),
    ("dispatch_errors", DispatchErrorFault),
    ("oom_kills", OomKillFault),
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run."""

    seed: int = 0
    crashes: Tuple[ContainerCrashFault, ...] = ()
    cold_start_failures: Tuple[ColdStartFailureFault, ...] = ()
    stragglers: Tuple[StragglerFault, ...] = ()
    dispatch_errors: Tuple[DispatchErrorFault, ...] = ()
    oom_kills: Tuple[OomKillFault, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists in the constructor but store tuples (hashable plan).
        for name, _cls in _SECTIONS:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (installing it is a no-op)."""
        return not any(getattr(self, name) for name, _cls in _SECTIONS)

    def fault_count(self) -> int:
        return sum(len(getattr(self, name)) for name, _cls in _SECTIONS)

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"seed": self.seed}
        for name, _cls in _SECTIONS:
            faults = getattr(self, name)
            if faults:
                out[name] = [
                    {k: v for k, v in asdict(fault).items() if v is not None}
                    for fault in faults
                ]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        known = {"seed"} | {name for name, _cls in _SECTIONS}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan sections: {sorted(unknown)}")
        kwargs: Dict[str, object] = {"seed": int(data.get("seed", 0))}
        for name, fault_cls in _SECTIONS:
            entries = data.get(name, [])
            if not isinstance(entries, list):
                raise ValueError(f"{name!r} must be a list")
            kwargs[name] = tuple(fault_cls(**entry) for entry in entries)
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


def reference_plan(seed: int = 7) -> FaultPlan:
    """The chaos benchmark's reference plan (``repro chaos`` default).

    Chosen so that *every* scheduler gets hurt regardless of how many
    containers it provisions: the first cold start always exists, dispatch
    ordinals are bounded by the invocation count, and the crash/straggler
    target the first containers each policy starts.
    """
    return FaultPlan(
        seed=seed,
        crashes=(
            ContainerCrashFault(ordinal=1, after_start_ms=300.0),
            ContainerCrashFault(ordinal=3, after_start_ms=150.0),
        ),
        cold_start_failures=(
            ColdStartFailureFault(ordinal=1),
            ColdStartFailureFault(ordinal=4),
        ),
        stragglers=(
            StragglerFault(ordinal=2, after_start_ms=100.0,
                           duration_ms=600.0, cpu_scale=0.25),
        ),
        dispatch_errors=(
            DispatchErrorFault(ordinal=3),
            DispatchErrorFault(ordinal=11),
        ),
    )

