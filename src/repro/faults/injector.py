"""Executes a :class:`~repro.faults.plan.FaultPlan` against the platform.

The injector installs itself on a :class:`ServerlessPlatform` and is
consulted at three hook points — container start, cold-start completion,
invocation dispatch — plus a memory-usage hook for OOM kills.  All hooks
are pure function calls guarded by ``platform.faults is not None``; with no
injector installed the platform's behaviour is bit-identical to a build
without this package.

Determinism: ordinals are counted in event order and the only randomness is
the plan's seeded RNG (currently unused by the built-in faults, reserved
for probabilistic extensions), so the same plan replays the same faults.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, TYPE_CHECKING

from repro.common.errors import (
    ContainerCrashed,
    OomKilled,
    TransientDispatchError,
)
from repro.common.eventlog import EventKind
from repro.faults.plan import (
    ContainerCrashFault,
    FaultPlan,
    OomKillFault,
    StragglerFault,
)
from repro.model.container import ContainerState, SimContainer
from repro.model.function import FunctionSpec, Invocation

if TYPE_CHECKING:  # runtime import would cycle through platformsim
    from repro.platformsim.platform import ServerlessPlatform


class FaultInjector:
    """Deterministic executor of one :class:`FaultPlan` (one per run)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.platform: Optional["ServerlessPlatform"] = None
        # Ordinal counters, overall and per function.
        self._containers_started = 0
        self._containers_started_by_fn: Dict[str, int] = {}
        self._cold_starts = 0
        self._cold_starts_by_fn: Dict[str, int] = {}
        self._dispatches = 0
        self._dispatches_by_fn: Dict[str, int] = {}
        # Outcome counters (chaos reports assert on these).
        self.crashes_fired = 0
        self.crashes_skipped = 0
        self.cold_start_failures_fired = 0
        self.stragglers_fired = 0
        self.dispatch_errors_fired = 0
        self.oom_kills_fired = 0
        self._oom_armed = True
        self._oom_pending = False

    def install(self, platform: "ServerlessPlatform") -> "FaultInjector":
        """Attach to *platform*; hooks fire from this moment on."""
        if self.platform is not None:
            raise RuntimeError("injector already installed")
        self.platform = platform
        platform.faults = self
        if self.plan.oom_kills:
            # The hook is only registered when the plan can use it, keeping
            # the memory hot path untouched for every other plan.
            platform.machine.memory.add_usage_hook(self._on_memory_usage)
        return self

    # -- hook: container started ---------------------------------------------------

    def _matches(self, fault, overall: int, per_fn: int) -> bool:
        if fault.function_id is None:
            return fault.ordinal == overall
        return fault.ordinal == per_fn

    def on_container_started(self, container: SimContainer) -> None:
        """Platform hook: a cold start just completed successfully."""
        assert self.platform is not None
        function_id = container.function.function_id
        self._containers_started += 1
        per_fn = self._containers_started_by_fn.get(function_id, 0) + 1
        self._containers_started_by_fn[function_id] = per_fn
        for crash in self.plan.crashes:
            if crash.function_id not in (None, function_id):
                continue
            if self._matches(crash, self._containers_started, per_fn):
                self.platform.env.process(
                    self._crash_later(container, crash),
                    name=f"fault-crash:{container.container_id}")
        for straggler in self.plan.stragglers:
            if straggler.function_id not in (None, function_id):
                continue
            if self._matches(straggler, self._containers_started, per_fn):
                self.platform.env.process(
                    self._slow_later(container, straggler),
                    name=f"fault-straggle:{container.container_id}")

    def _crash_later(self, container: SimContainer,
                     fault: ContainerCrashFault):
        assert self.platform is not None
        yield self.platform.env.timeout(fault.after_start_ms)
        now = self.platform.env.now
        if container.state not in (ContainerState.WARM,
                                   ContainerState.ACTIVE):
            self.crashes_skipped += 1
            self.platform.obs.tracer.annotation(
                "fault-crash-skipped", now,
                container_id=container.container_id,
                state=container.state.value)
            return
        error = ContainerCrashed(
            f"injected crash of {container.container_id}")
        victims = container.crash(error)
        self.crashes_fired += 1
        self.platform.obs.metrics.counter("faults.crashes").inc()
        self.platform.obs.tracer.annotation(
            "fault-container-crashed", now,
            container_id=container.container_id, victims=victims)
        self.platform.obs.tracer.container_event(
            container.container_id, "crashed", now, victims=victims)
        self.platform.event_log.record(
            now, EventKind.CONTAINER_CRASHED,
            container_id=container.container_id, victims=victims,
            cause="injected-crash")

    def _slow_later(self, container: SimContainer, fault: StragglerFault):
        assert self.platform is not None
        env = self.platform.env
        cpu = self.platform.machine.cpu
        yield env.timeout(fault.after_start_ms)
        group = container.cpu_group_name
        if not cpu.has_group(group):
            return  # container already gone
        original_cap = container.function.cpu_limit
        full = original_cap if original_cap is not None \
            else float(self.platform.machine.cores)
        throttled = max(full * fault.cpu_scale, 1e-6)
        cpu.set_group_cap(group, throttled)
        self.stragglers_fired += 1
        self.platform.obs.metrics.counter("faults.stragglers").inc()
        self.platform.obs.tracer.annotation(
            "fault-straggler-began", env.now,
            container_id=container.container_id,
            cap=throttled, duration_ms=fault.duration_ms)
        self.platform.obs.tracer.container_event(
            container.container_id, "straggler-began", env.now,
            cap=throttled)
        self.platform.event_log.record(
            env.now, EventKind.FAULT_INJECTED,
            fault="straggler", container_id=container.container_id,
            cap=throttled, duration_ms=fault.duration_ms)
        yield env.timeout(fault.duration_ms)
        if cpu.has_group(group):  # it may have crashed/expired meanwhile
            cpu.set_group_cap(group, original_cap)
            self.platform.obs.tracer.annotation(
                "fault-straggler-ended", env.now,
                container_id=container.container_id)
            self.platform.obs.tracer.container_event(
                container.container_id, "straggler-ended", env.now)

    # -- hook: cold start completed --------------------------------------------------

    def take_cold_start_fault(self, function: FunctionSpec) -> bool:
        """Platform hook: should this (latency-paid) cold start fail?"""
        assert self.platform is not None
        function_id = function.function_id
        self._cold_starts += 1
        per_fn = self._cold_starts_by_fn.get(function_id, 0) + 1
        self._cold_starts_by_fn[function_id] = per_fn
        for fault in self.plan.cold_start_failures:
            if fault.function_id not in (None, function_id):
                continue
            if self._matches(fault, self._cold_starts, per_fn):
                self.cold_start_failures_fired += 1
                now = self.platform.env.now
                self.platform.obs.metrics.counter(
                    "faults.cold_start_failures").inc()
                self.platform.obs.tracer.annotation(
                    "fault-cold-start-failed", now,
                    function_id=function_id, ordinal=fault.ordinal)
                self.platform.event_log.record(
                    now, EventKind.FAULT_INJECTED,
                    fault="cold-start-failure", function_id=function_id,
                    ordinal=fault.ordinal)
                return True
        return False

    # -- hook: dispatch ---------------------------------------------------------------

    def take_dispatch_fault(self, invocation: Invocation
                            ) -> Optional[TransientDispatchError]:
        """Platform hook: fail this dispatch with a transient error?"""
        assert self.platform is not None
        function_id = invocation.function.function_id
        self._dispatches += 1
        per_fn = self._dispatches_by_fn.get(function_id, 0) + 1
        self._dispatches_by_fn[function_id] = per_fn
        for fault in self.plan.dispatch_errors:
            if fault.function_id not in (None, function_id):
                continue
            if self._matches(fault, self._dispatches, per_fn):
                self.dispatch_errors_fired += 1
                now = self.platform.env.now
                self.platform.obs.metrics.counter(
                    "faults.dispatch_errors").inc()
                self.platform.obs.tracer.annotation(
                    "fault-dispatch-error", now,
                    invocation_id=invocation.invocation_id,
                    ordinal=fault.ordinal)
                self.platform.event_log.record(
                    now, EventKind.FAULT_INJECTED,
                    fault="dispatch-error",
                    invocation_id=invocation.invocation_id,
                    ordinal=fault.ordinal)
                return TransientDispatchError(
                    f"injected dispatch failure for "
                    f"{invocation.invocation_id}")
        return None

    # -- hook: memory usage (OOM) -----------------------------------------------------

    def _active_oom_fault(self) -> Optional[OomKillFault]:
        remaining = self.oom_kills_fired
        for fault in self.plan.oom_kills:
            if remaining < fault.max_kills:
                return fault
            remaining -= fault.max_kills
        return None

    def _on_memory_usage(self, used_mb: float) -> None:
        fault = self._active_oom_fault()
        if fault is None:
            return
        if used_mb < fault.threshold_mb:
            self._oom_armed = True  # hysteresis: re-arm below threshold
            return
        if not self._oom_armed or self._oom_pending:
            return
        # Memory hooks must not free synchronously; kill on a zero-delay
        # process so the triggering allocation completes first.
        self._oom_pending = True
        assert self.platform is not None
        self.platform.env.process(self._oom_kill(fault), name="fault-oom")

    def _oom_kill(self, fault: OomKillFault):
        assert self.platform is not None
        env = self.platform.env
        yield env.timeout(0.0)
        self._oom_pending = False
        memory = self.platform.machine.memory
        if memory.used_mb < fault.threshold_mb:
            return  # usage dropped before the kill landed
        candidates = [
            c for c in self.platform.docker.containers.list(all=True)
            if c.state in (ContainerState.WARM, ContainerState.ACTIVE)
        ]
        if not candidates:
            return
        # Deterministic victim: the fattest container, ties by id.
        victim = min(candidates,
                     key=lambda c: (-c.resident_memory_mb, c.container_id))
        victims = victim.crash(OomKilled(
            f"oom-killed {victim.container_id} at "
            f"{memory.used_mb:.1f}/{fault.threshold_mb:.1f} MB"))
        self.oom_kills_fired += 1
        self._oom_armed = False
        self.platform.obs.metrics.counter("faults.oom_kills").inc()
        self.platform.obs.tracer.annotation(
            "fault-oom-kill", env.now,
            container_id=victim.container_id, victims=victims,
            used_mb=memory.used_mb, threshold_mb=fault.threshold_mb)
        self.platform.obs.tracer.container_event(
            victim.container_id, "oom-killed", env.now, victims=victims)
        self.platform.event_log.record(
            env.now, EventKind.CONTAINER_CRASHED,
            container_id=victim.container_id, victims=victims,
            cause="oom-kill")
