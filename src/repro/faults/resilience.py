"""Recovery policies: retries, timeouts, hedging, circuit breaking.

:class:`ResiliencePolicy` is pure configuration; :class:`ResilienceManager`
is the live object the platform consults.  Recovery is scheduler-agnostic:
a retried invocation is *re-enqueued through the platform's request queue*,
so it flows through whatever policy is running — re-batching with other
work under FaaSBatch/Kraken rather than taking a private fast path.

Determinism: backoff jitter comes from one seeded RNG consumed in event
order, so the same seed replays the same delays.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.common.errors import (
    ColdStartRefused,
    HedgeCancelled,
    HedgeSuperseded,
    InvocationTimeout,
    TransientError,
)
from repro.common.eventlog import EventKind
from repro.model.function import FunctionSpec, Invocation

if TYPE_CHECKING:  # runtime import would cycle through platformsim
    from repro.model.container import SimContainer
    from repro.platformsim.platform import ServerlessPlatform


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the recovery layer (all deterministic given ``seed``).

    ``timeout_ms`` and ``hedge_after_ms`` default to off (None): timeouts
    abort and retry slow attempts, hedging races a duplicate instead —
    enabling both makes sense only with ``timeout_ms`` comfortably larger.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 2000.0
    jitter_ratio: float = 0.1
    timeout_ms: Optional[float] = None
    hedge_after_ms: Optional[float] = None
    breaker_failure_threshold: int = 3
    breaker_cooldown_ms: float = 5000.0
    #: Retry every failure, not just :class:`TransientError` subclasses.
    retry_all_errors: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ms < 0:
            raise ValueError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ValueError("backoff_cap_ms must be >= backoff_base_ms")
        if not 0.0 <= self.jitter_ratio <= 1.0:
            raise ValueError(
                f"jitter_ratio must be in [0, 1], got {self.jitter_ratio}")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {self.timeout_ms}")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ValueError(
                f"hedge_after_ms must be > 0, got {self.hedge_after_ms}")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_ms <= 0:
            raise ValueError("breaker_cooldown_ms must be > 0")


class BackoffSchedule:
    """Exponential backoff with a cap and seeded proportional jitter."""

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy

    def base_delay_ms(self, attempt: int) -> float:
        """Deterministic (jitter-free) delay before retrying *attempt*+1.

        ``attempt`` is the attempt that just failed (1-based), so the first
        retry waits ``backoff_base_ms``, the second twice that, and so on,
        capped at ``backoff_cap_ms``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        policy = self.policy
        raw = policy.backoff_base_ms * policy.backoff_factor ** (attempt - 1)
        return min(raw, policy.backoff_cap_ms)

    def delay_ms(self, attempt: int, rng: random.Random) -> float:
        """Backoff with jitter drawn from *rng* (full determinism per seed)."""
        base = self.base_delay_ms(attempt)
        if self.policy.jitter_ratio == 0.0:
            return base
        return base * (1.0 + self.policy.jitter_ratio * rng.random())


class BreakerState(enum.Enum):
    """Circuit-breaker states (classic closed → open → half-open loop)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-function-image breaker quarantining repeated cold-start failures.

    ``allow()`` answers "may we attempt a cold start now?".  After
    ``failure_threshold`` consecutive failures the breaker opens and
    refuses; once ``cooldown_ms`` has elapsed the next ``allow()`` admits a
    single half-open probe — its outcome closes the breaker or re-opens it.
    """

    def __init__(self, failure_threshold: int, cooldown_ms: float) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: Optional[float] = None
        self._probe_in_flight = False
        self.transitions = 0

    def allow(self, now_ms: float) -> bool:
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at_ms is not None
            if now_ms - self.opened_at_ms < self.cooldown_ms:
                return False
            self.state = BreakerState.HALF_OPEN
            self.transitions += 1
            self._probe_in_flight = True
            return True
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_failure(self, now_ms: float) -> bool:
        """Record a cold-start failure; returns True when the breaker opens."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_in_flight = False
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.transitions += 1
            return True
        self.consecutive_failures += 1
        if self.state is BreakerState.CLOSED \
                and self.consecutive_failures >= self.failure_threshold:
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.transitions += 1
            return True
        return False

    def record_success(self) -> bool:
        """Record a successful cold start; returns True when it closes."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_in_flight = False
            self.state = BreakerState.CLOSED
            self.opened_at_ms = None
            self.transitions += 1
            return True
        return False


class ResilienceManager:
    """The platform's live recovery engine (one per run)."""

    def __init__(self, platform: "ServerlessPlatform",
                 policy: ResiliencePolicy) -> None:
        self.platform = platform
        self.policy = policy
        self.env = platform.env
        self.rng = random.Random(policy.seed)
        self.backoff = BackoffSchedule(policy)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.retries_scheduled = 0
        self.retries_exhausted = 0
        self.timeouts_fired = 0
        self.hedges_launched = 0
        self.hedges_won = 0

    # -- retry ---------------------------------------------------------------------

    def _is_retryable(self, error: BaseException) -> bool:
        if isinstance(error, (HedgeSuperseded, HedgeCancelled)):
            return False
        return self.policy.retry_all_errors \
            or isinstance(error, TransientError)

    def should_retry(self, invocation: Invocation) -> bool:
        """Platform asks: intercept this failed completion for a retry?"""
        error = invocation.error
        if error is None or not self._is_retryable(error):
            return False
        if invocation.attempts >= self.policy.max_attempts:
            self.retries_exhausted += 1
            self.platform.obs.metrics.counter(
                "resilience.retries_exhausted").inc()
            self.platform.obs.tracer.annotation(
                "retries-exhausted", self.env.now,
                invocation_id=invocation.invocation_id,
                attempts=invocation.attempts,
                error=type(error).__name__)
            return False
        return True

    def schedule_retry(self, invocation: Invocation) -> float:
        """Archive the failed attempt and re-enqueue it after backoff.

        Returns the backoff delay.  The invocation re-enters the platform's
        request queue, so the running scheduler re-batches it like any new
        arrival.
        """
        error = invocation.error
        assert error is not None
        now = self.env.now
        # Close the failed attempt's span timeline before its ids reset.
        self.platform.obs.tracer.invocation_responded(
            invocation.trace_id, now)
        delay = self.backoff.delay_ms(invocation.attempts, self.rng)
        self.retries_scheduled += 1
        self.platform.obs.metrics.counter("resilience.retries").inc()
        self.platform.obs.tracer.annotation(
            "retry-scheduled", now,
            invocation_id=invocation.invocation_id,
            failed_attempt=invocation.attempts,
            delay_ms=delay,
            error=type(error).__name__)
        self.platform.event_log.record(
            now, EventKind.INVOCATION_RETRIED,
            invocation_id=invocation.invocation_id,
            failed_attempt=invocation.attempts,
            delay_ms=delay, error=type(error).__name__)
        self.env.process(self._requeue_after(invocation, delay),
                         name=f"retry:{invocation.invocation_id}"
                              f"#a{invocation.attempts + 1}")
        return delay

    def _requeue_after(self, invocation: Invocation, delay_ms: float):
        yield self.env.timeout(delay_ms)
        invocation.reset_for_retry(self.env.now)
        self.platform.requeue(invocation)

    # -- timeout / hedging watchdogs ---------------------------------------------

    def watch(self, invocation: Invocation,
              container: "SimContainer") -> None:
        """Arm the per-attempt watchdogs for a just-dispatched invocation."""
        if self.policy.timeout_ms is not None:
            self.env.process(
                self._watchdog(invocation, container, invocation.attempts),
                name=f"timeout:{invocation.trace_id}")
        if self.policy.hedge_after_ms is not None:
            self.env.process(
                self._hedger(invocation, container, invocation.attempts),
                name=f"hedge:{invocation.trace_id}")

    def _attempt_live(self, invocation: Invocation, attempt: int) -> bool:
        return (invocation.attempts == attempt
                and invocation.completed_ms is None
                and invocation.error is None)

    def _watchdog(self, invocation: Invocation, container: "SimContainer",
                  attempt: int):
        assert self.policy.timeout_ms is not None
        yield self.env.timeout(self.policy.timeout_ms)
        if not self._attempt_live(invocation, attempt):
            return
        error = InvocationTimeout(
            f"{invocation.invocation_id} attempt {attempt} exceeded "
            f"{self.policy.timeout_ms} ms")
        if container.abort_invocation(invocation.invocation_id, error):
            self.timeouts_fired += 1
            self.platform.obs.metrics.counter("resilience.timeouts").inc()
            self.platform.obs.tracer.annotation(
                "invocation-timeout", self.env.now,
                invocation_id=invocation.invocation_id, attempt=attempt,
                timeout_ms=self.policy.timeout_ms,
                container_id=container.container_id)

    def _hedger(self, invocation: Invocation, container: "SimContainer",
                attempt: int):
        """Race a shadow copy on another container; first result wins."""
        assert self.policy.hedge_after_ms is not None
        yield self.env.timeout(self.policy.hedge_after_ms)
        if not self._attempt_live(invocation, attempt):
            return
        primary = container.inflight_process(invocation.invocation_id)
        if primary is None:
            return
        now = self.env.now
        # The shadow's arrival is stamped *before* the (possibly cold)
        # acquisition, so mark_dispatched's elapsed >= cold-start invariant
        # holds by construction.
        shadow = Invocation(
            invocation_id=f"{invocation.invocation_id}~h{attempt}",
            function=invocation.function,
            payload=invocation.payload,
            arrival_ms=now)
        self.hedges_launched += 1
        self.platform.obs.metrics.counter("resilience.hedges").inc()
        self.platform.obs.tracer.annotation(
            "hedge-launched", now,
            invocation_id=invocation.invocation_id, attempt=attempt,
            shadow_id=shadow.invocation_id)
        self.platform.event_log.record(
            now, EventKind.INVOCATION_HEDGED,
            invocation_id=invocation.invocation_id,
            shadow_id=shadow.invocation_id)
        try:
            hedge_container, cold_ms = yield from \
                self.platform.acquire_container(
                    invocation.function, concurrency_limit=None,
                    with_multiplexer=False)
        except TransientError:
            return  # no spare capacity for the hedge; primary carries on
        self.platform.obs.tracer.invocation_arrived(
            shadow.invocation_id, invocation.function.function_id,
            shadow.arrival_ms)
        shadow.mark_dispatched(self.env.now, cold_ms)
        self.platform.obs.tracer.invocation_dispatched(
            shadow.trace_id, self.env.now, cold_ms,
            hedge_container.container_id)
        shadow_proc = hedge_container.execute_invocations([shadow])[0]
        if primary.is_alive:
            winner, _value = yield self.env.any_of([primary, shadow_proc])
        else:
            winner = primary
        if winner is shadow_proc and shadow.error is None \
                and shadow.completed_ms is not None \
                and self._attempt_live(invocation, attempt):
            invocation.adopt_hedge_result(shadow)
            container.abort_invocation(
                invocation.invocation_id,
                HedgeSuperseded(
                    f"{shadow.invocation_id} beat "
                    f"{invocation.invocation_id} attempt {attempt}"))
            self.hedges_won += 1
            self.platform.obs.metrics.counter("resilience.hedge_wins").inc()
            self.platform.obs.tracer.annotation(
                "hedge-won", self.env.now,
                invocation_id=invocation.invocation_id,
                shadow_id=shadow.invocation_id)
        elif shadow_proc.is_alive:
            hedge_container.abort_invocation(
                shadow.invocation_id,
                HedgeCancelled(
                    f"{invocation.invocation_id} attempt {attempt} "
                    f"finished first"))
        if shadow_proc.is_alive:
            yield shadow_proc
        self.platform.obs.tracer.invocation_responded(
            shadow.trace_id, self.env.now)
        if hedge_container.is_idle:
            self.platform.release_container(hedge_container)

    # -- circuit breaker ----------------------------------------------------------

    def _breaker(self, function_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(function_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker_failure_threshold,
                self.policy.breaker_cooldown_ms)
            self._breakers[function_id] = breaker
        return breaker

    def breaker_state(self, function_id: str) -> BreakerState:
        return self._breaker(function_id).state

    def check_cold_start_allowed(self, function: FunctionSpec) -> None:
        """Raise :class:`ColdStartRefused` while the image is quarantined."""
        breaker = self._breakers.get(function.function_id)
        if breaker is None:
            return
        if not breaker.allow(self.env.now):
            self.platform.obs.metrics.counter(
                "resilience.breaker_refusals").inc()
            raise ColdStartRefused(
                f"circuit breaker open for {function.function_id!r}")

    def record_cold_start_failure(self, function_id: str) -> None:
        breaker = self._breaker(function_id)
        before = breaker.state
        breaker.record_failure(self.env.now)
        self._note_transition(function_id, before, breaker.state)

    def record_cold_start_success(self, function_id: str) -> None:
        breaker = self._breakers.get(function_id)
        if breaker is None:
            return  # never failed: keep the no-breaker fast path
        before = breaker.state
        breaker.record_success()
        self._note_transition(function_id, before, breaker.state)

    def _note_transition(self, function_id: str, before: BreakerState,
                         after: BreakerState) -> None:
        if before is after:
            return
        self.platform.obs.metrics.counter(
            "resilience.breaker_transitions").inc()
        self.platform.obs.tracer.annotation(
            "breaker-transition", self.env.now,
            function_id=function_id,
            from_state=before.value, to_state=after.value)
        self.platform.event_log.record(
            self.env.now, EventKind.BREAKER_TRANSITION,
            function_id=function_id,
            from_state=before.value, to_state=after.value)
