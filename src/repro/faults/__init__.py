"""Deterministic fault injection and resilience (repro.faults).

Two halves, usable independently:

* :mod:`repro.faults.plan` + :mod:`repro.faults.injector` — declarative,
  seeded :class:`FaultPlan`\\ s executed by a :class:`FaultInjector` against
  the simulated platform (container crashes, cold-start failures, straggler
  slowdowns, transient dispatch errors, OOM kills);
* :mod:`repro.faults.resilience` — the :class:`ResiliencePolicy` recovery
  layer the platform consults (bounded retries with exponential backoff and
  seeded jitter, per-invocation timeouts, hedged re-dispatch, a per-function
  circuit breaker for repeated cold-start failures).

Everything is deterministic: the same seed replays the same faults and the
same jitter.  With no plan and no policy installed, the platform behaves
bit-identically to a build without this package (the zero-overhead-off
invariant, enforced by tests).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ColdStartFailureFault,
    ContainerCrashFault,
    DispatchErrorFault,
    FaultPlan,
    OomKillFault,
    StragglerFault,
    reference_plan,
)
from repro.faults.resilience import (
    BackoffSchedule,
    BreakerState,
    CircuitBreaker,
    ResilienceManager,
    ResiliencePolicy,
)

__all__ = [
    "BackoffSchedule",
    "BreakerState",
    "CircuitBreaker",
    "ColdStartFailureFault",
    "ContainerCrashFault",
    "DispatchErrorFault",
    "FaultInjector",
    "FaultPlan",
    "OomKillFault",
    "ResilienceManager",
    "ResiliencePolicy",
    "StragglerFault",
    "reference_plan",
]
