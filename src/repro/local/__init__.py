"""Real in-process FaaSBatch runtime: threads, genuine resource multiplexing."""

from repro.local.clients import (
    DEFAULT_STORE,
    FakeBlobServiceClient,
    FakeS3Client,
    InMemoryBucketStore,
    live_client_count,
)
from repro.local.container import (
    Handler,
    InvocationContext,
    LocalContainer,
    LocalInvocation,
)
from repro.local.multiplexer import (
    MultiplexerMetrics,
    ResourceMultiplexer,
    hash_arguments,
)
from repro.local.runtime import LocalPlatform, LocalPlatformConfig

__all__ = [
    "DEFAULT_STORE",
    "FakeBlobServiceClient",
    "FakeS3Client",
    "Handler",
    "InMemoryBucketStore",
    "InvocationContext",
    "LocalContainer",
    "LocalInvocation",
    "LocalPlatform",
    "LocalPlatformConfig",
    "MultiplexerMetrics",
    "ResourceMultiplexer",
    "hash_arguments",
    "live_client_count",
]
