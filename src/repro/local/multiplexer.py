"""Resource Multiplexer — the real, threading implementation (§III-D).

This is the piece of FaaSBatch a downstream Python FaaS runtime can embed
directly: a thread-safe memoising interceptor for expensive resource
constructors (storage clients, DB connection pools, ...).  Semantics match
Fig. 8 and the simulation model in :mod:`repro.core.multiplexer`:

* the cache maps ``factory → Hash(args) → instance``;
* a **hit** returns the cached instance without calling the factory;
* concurrent first requests for the same key coordinate so that exactly
  **one** thread builds while the rest wait and then share the result
  (in-flight deduplication — the property that collapses N racing client
  creations into one);
* a failed build propagates its exception to all waiters and clears the
  reservation so a later request can retry.

Example::

    multiplexer = ResourceMultiplexer()

    @multiplexer.multiplexed
    def s3_client(access_key, secret_key):
        return ExpensiveClient(access_key, secret_key)

    client_a = s3_client("AK", "SK")   # builds
    client_b = s3_client("AK", "SK")   # cache hit: client_b is client_a
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

from repro.common.errors import MultiplexerError

T = TypeVar("T")

Key = Tuple[str, int]


def hash_arguments(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> int:
    """The paper's ``Hash(args)``: one stable hash over all creation args.

    Raises :class:`MultiplexerError` for unhashable arguments — callers
    should pass credentials/endpoints (hashable), not live objects.
    """
    try:
        return hash((args, tuple(sorted(kwargs.items()))))
    except TypeError as exc:
        raise MultiplexerError(
            f"creation arguments are not hashable: args={args!r} "
            f"kwargs={kwargs!r}") from exc


@dataclass
class MultiplexerMetrics:
    """Thread-safe counters (guarded by the multiplexer's lock)."""

    hits: int = 0
    misses: int = 0
    in_flight_waits: int = 0
    failed_builds: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.in_flight_waits

    @property
    def reuse_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.in_flight_waits) / self.lookups


@dataclass
class _Entry:
    """One cache slot: either a live instance or an in-progress build."""

    ready: threading.Event = field(default_factory=threading.Event)
    instance: Any = None
    error: Optional[BaseException] = None


class ResourceMultiplexer:
    """Thread-safe resource-args-result cache with in-flight deduplication."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cache: Dict[Key, _Entry] = {}
        self.metrics = MultiplexerMetrics()

    # -- core protocol -----------------------------------------------------------

    def get_or_create(self, factory: Callable[..., T], *args: Any,
                      **kwargs: Any) -> T:
        """Return the instance for ``factory(*args, **kwargs)``, building once.

        The factory is identified by its qualified name (matching the
        paper's ``client → Hash(args)`` keying); two distinct functions
        never share entries.
        """
        key = self._key(factory, args, kwargs)
        builder = False
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                entry = _Entry()
                self._cache[key] = entry
                self.metrics.misses += 1
                builder = True
            elif entry.ready.is_set():
                if entry.error is None:
                    self.metrics.hits += 1
                    return entry.instance
                # A previous build failed and was not cleaned (shouldn't
                # happen: failures evict), guard anyway.
                raise entry.error
            else:
                self.metrics.in_flight_waits += 1

        if builder:
            return self._build(key, entry, factory, args, kwargs)

        entry.ready.wait()
        if entry.error is not None:
            raise entry.error
        return entry.instance

    def _build(self, key: Key, entry: _Entry, factory: Callable[..., T],
               args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> T:
        try:
            instance = factory(*args, **kwargs)
        except BaseException as error:
            with self._lock:
                self.metrics.failed_builds += 1
                entry.error = error
                # Evict so a later request can retry the build.
                self._cache.pop(key, None)
            entry.ready.set()
            raise
        entry.instance = instance
        entry.ready.set()
        return instance

    # -- decorator ------------------------------------------------------------------

    def multiplexed(self, factory: Callable[..., T]) -> Callable[..., T]:
        """Wrap *factory* so every call goes through the multiplexer."""

        @functools.wraps(factory)
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return self.get_or_create(factory, *args, **kwargs)

        wrapper.__multiplexer__ = self  # type: ignore[attr-defined]
        return wrapper

    # -- management -----------------------------------------------------------------

    def invalidate(self, factory: Callable[..., Any], *args: Any,
                   **kwargs: Any) -> bool:
        """Drop one cached instance; True when something was evicted."""
        key = self._key(factory, args, kwargs)
        with self._lock:
            entry = self._cache.pop(key, None)
            if entry is not None:
                self.metrics.evictions += 1
            return entry is not None

    def clear(self) -> int:
        """Drop every cached instance; returns how many were evicted."""
        with self._lock:
            count = len(self._cache)
            self._cache.clear()
            self.metrics.evictions += count
            return count

    def cached_count(self) -> int:
        """Number of completed cache entries."""
        with self._lock:
            return sum(1 for e in self._cache.values() if e.ready.is_set()
                       and e.error is None)

    def has(self, factory: Callable[..., Any], *args: Any,
            **kwargs: Any) -> bool:
        key = self._key(factory, args, kwargs)
        with self._lock:
            entry = self._cache.get(key)
            return (entry is not None and entry.ready.is_set()
                    and entry.error is None)

    # -- internals --------------------------------------------------------------------

    @staticmethod
    def _key(factory: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Dict[str, Any]) -> Key:
        name = getattr(factory, "__qualname__", None) or repr(factory)
        return (name, hash_arguments(args, kwargs))
