"""Fake cloud-storage clients with calibrated construction costs.

Stand-ins for the boto3 / azure-storage clients of Listing 1: constructing
one burns real wall-clock time (configurable, default a scaled-down version
of the paper's 66 ms) and allocates a payload buffer standing in for the
client's resident memory, so the multiplexer's effect is *observable* in the
examples and tests — in time, in object identity and in live instances.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.common.errors import ReproError

#: Scaled-down default construction cost so tests stay fast (the paper's
#: measured cost at concurrency 1 is 66 ms).
DEFAULT_CONSTRUCTION_SECONDS = 0.01

#: Tracks live client instances (for asserting the multiplexer's savings).
_LIVE_CLIENTS = 0
_LIVE_LOCK = threading.Lock()


def live_client_count() -> int:
    """Number of fake client instances currently alive (global)."""
    with _LIVE_LOCK:
        return _LIVE_CLIENTS


class InMemoryBucketStore:
    """Shared backing store for the fake clients (one per 'cloud')."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._objects: Dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._objects[key] = data

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._objects[key]
            except KeyError:
                raise ReproError(f"no object named {key!r}") from None

    def delete(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)


#: Default shared store used when a client is built without one.
DEFAULT_STORE = InMemoryBucketStore()


class FakeS3Client:
    """A boto3-like client whose construction is deliberately expensive."""

    def __init__(self, access_key: str, secret_key: str,
                 session_token: str = "",
                 store: Optional[InMemoryBucketStore] = None,
                 construction_seconds: float = DEFAULT_CONSTRUCTION_SECONDS,
                 ) -> None:
        global _LIVE_CLIENTS
        if not access_key or not secret_key:
            raise ReproError("access_key and secret_key are required")
        # The expensive part: TLS handshakes, endpoint discovery, botocore
        # model loading... modelled as a sleep plus a buffer allocation.
        time.sleep(construction_seconds)
        self._payload = bytearray(256 * 1024)  # stands in for client RAM
        self.access_key = access_key
        self._store = store if store is not None else DEFAULT_STORE
        self.created_at = time.monotonic()
        with _LIVE_LOCK:
            _LIVE_CLIENTS += 1

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        global _LIVE_CLIENTS
        with _LIVE_LOCK:
            _LIVE_CLIENTS -= 1

    # -- the CRUD surface of Listing 1 ------------------------------------------

    def put_object(self, Bucket: str, Key: str, Body: bytes) -> None:  # noqa: N803
        self._store.put(f"{Bucket}/{Key}", Body)

    def get_object(self, Bucket: str, Key: str) -> bytes:  # noqa: N803
        return self._store.get(f"{Bucket}/{Key}")

    def delete_object(self, Bucket: str, Key: str) -> None:  # noqa: N803
        self._store.delete(f"{Bucket}/{Key}")


class FakeBlobServiceClient:
    """An azure-storage-like client; same cost model, different surface."""

    def __init__(self, account_url: str, credential: str,
                 store: Optional[InMemoryBucketStore] = None,
                 construction_seconds: float = DEFAULT_CONSTRUCTION_SECONDS,
                 ) -> None:
        global _LIVE_CLIENTS
        if not account_url:
            raise ReproError("account_url is required")
        time.sleep(construction_seconds)
        self._payload = bytearray(256 * 1024)
        self.account_url = account_url
        self._store = store if store is not None else DEFAULT_STORE
        with _LIVE_LOCK:
            _LIVE_CLIENTS += 1

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        global _LIVE_CLIENTS
        with _LIVE_LOCK:
            _LIVE_CLIENTS -= 1

    def upload_blob(self, container: str, name: str, data: bytes) -> None:
        self._store.put(f"{container}/{name}", data)

    def download_blob(self, container: str, name: str) -> bytes:
        return self._store.get(f"{container}/{name}")
